//! Outage-signal investigation (paper §4.3).
//!
//! Signals from one bin are classified by the structure of the affected
//! links:
//!
//! * **link-level** — too few distinct ASes involved (de-peering, MED
//!   change between two big networks);
//! * **AS-level** — every affected link shares one common AS (an IXP
//!   member leaving, a network-wide policy);
//! * **operator-level** — every link touches a sibling of one organization;
//! * **PoP-level** — at least three non-sibling near-end *and* three
//!   non-sibling far-end organizations: an infrastructure incident.
//!
//! PoP-level signals are then **localized**: ingress communities only name
//! the near-end PoP, but the failure may sit in any of up to four
//! facilities along the physical link. The colocation map disambiguates:
//! if ≥95% of the stable paths whose far ends are co-located in candidate
//! facility *g* are affected, *g* is the epicenter (near-end facility
//! checked first, then the far-end ASes' facilities, then common IXPs,
//! with facility↔IXP resolution escalation and city abstraction).

use crate::config::KeplerConfig;
use crate::events::{OutageScope, RouteKey, SignalClass};
use crate::monitor::{BinOutcome, OutageSignal};
use crate::remote::RemotenessMap;
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use kepler_probe::ProbeRequest;
use kepler_topology::{CityId, ColocationMap, FacilityId, IxpId, OrgMap};
use std::collections::{BTreeMap, BTreeSet};

/// A localized PoP-level incident.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizedIncident {
    /// Epicenter.
    pub scope: OutageScope,
    /// Bin where it was raised.
    pub bin_start: Timestamp,
    /// Near-end ASes affected.
    pub affected_near: BTreeSet<Asn>,
    /// Far-end ASes affected.
    pub affected_far: BTreeSet<Asn>,
    /// Deviated stable routes.
    pub affected_keys: Vec<RouteKey>,
    /// The monitored crossings to watch for restoration:
    /// (route, PoP tag, near-end AS).
    pub watch: Vec<(RouteKey, LocationTag, Asn)>,
}

/// A facility suspected from passive evidence alone: the affected
/// far-end set is (almost) contained in its membership, but its live
/// co-located members dilute the 95% coverage rule below confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacilityCandidate {
    /// The suspected building.
    pub facility: FacilityId,
    /// Fraction of the candidate's co-located stable members affected.
    pub coverage: f64,
    /// Fraction of the affected set co-located in the candidate.
    pub containment: f64,
}

/// Result of localizing one PoP-level signal group, with the passive
/// confidence signal the probing stage keys on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Localization {
    /// The passive verdict, if any.
    pub scope: Option<OutageScope>,
    /// Facility suspects, best passive score first.
    pub suspects: Vec<FacilityCandidate>,
    /// Whether the verdict is below confidence and targeted probes should
    /// disambiguate: no verdict but live suspects, a coarse city verdict
    /// over concrete building suspects, or several buildings tied at the
    /// coverage margin.
    pub needs_probe: bool,
}

/// A PoP-level group whose localization needs active-measurement help
/// (paper §4.4: targeted traceroutes toward the suspect facilities).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingIncident {
    /// The PoP tag whose signals raised it.
    pub pop: LocationTag,
    /// Bin where it was raised.
    pub bin_start: Timestamp,
    /// Facility suspects, best passive score first.
    pub candidates: Vec<FacilityCandidate>,
    /// The passive-only verdict to fall back to when no prober is
    /// attached or probing is inconclusive (`None`: the group was
    /// passively unresolvable).
    pub fallback: Option<OutageScope>,
    /// Near-end ASes affected.
    pub affected_near: BTreeSet<Asn>,
    /// Far-end ASes affected.
    pub affected_far: BTreeSet<Asn>,
    /// Deviated stable routes.
    pub affected_keys: Vec<RouteKey>,
    /// The monitored crossings to watch for restoration.
    pub watch: Vec<(RouteKey, LocationTag, Asn)>,
    /// How many cluster-level `unresolved` bookings this pending carries
    /// (summed across merges): when probes resolve it, the system
    /// reconciles the `unresolved` counter by exactly this amount.
    pub booked_unresolved: usize,
}

impl PendingIncident {
    /// The probe request this pending localization translates to.
    pub fn request(&self) -> ProbeRequest {
        ProbeRequest {
            pop: self.pop,
            bin_start: self.bin_start,
            candidates: self.candidates.iter().map(|c| c.facility).collect(),
            affected_far: self.affected_far.iter().copied().collect(),
            affected_near: self.affected_near.iter().copied().collect(),
        }
    }

    /// Materializes the incident once a scope has been settled (by a
    /// probe verdict or by falling back to the passive scope).
    pub fn to_incident(&self, scope: OutageScope) -> LocalizedIncident {
        LocalizedIncident {
            scope,
            bin_start: self.bin_start,
            affected_near: self.affected_near.clone(),
            affected_far: self.affected_far.clone(),
            affected_keys: self.affected_keys.clone(),
            watch: self.watch.clone(),
        }
    }
}

/// Outcome of investigating one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinInvestigation {
    /// Bin start.
    pub bin_start: Timestamp,
    /// Localized PoP-level incidents.
    pub incidents: Vec<LocalizedIncident>,
    /// Signal groups dismissed at lower levels (PoP tag, class).
    pub dismissed: Vec<(LocationTag, SignalClass)>,
    /// PoP-level groups that could not be localized (would need targeted
    /// traceroutes in the paper).
    pub unresolved: Vec<LocationTag>,
    /// Low-confidence localizations awaiting active-measurement
    /// disambiguation (resolved by `system::Kepler` when a prober is
    /// attached, otherwise collapsed to their fallback scopes).
    pub pending: Vec<PendingIncident>,
}

/// The investigator.
pub struct Investigator {
    config: KeplerConfig,
    colo: ColocationMap,
    orgs: OrgMap,
    /// Latency-derived remote-peering evidence ([`crate::remote`]).
    /// Empty by default — every member is then treated as colocated.
    remoteness: RemotenessMap,
}

struct Coverage {
    covered: usize,
    denom: usize,
    containment: f64,
}

impl Coverage {
    fn fraction(&self) -> f64 {
        if self.denom == 0 {
            0.0
        } else {
            self.covered as f64 / self.denom as f64
        }
    }
}

impl Investigator {
    /// Builds an investigator over the detector's colocation map and
    /// organization map.
    pub fn new(config: KeplerConfig, colo: ColocationMap, orgs: OrgMap) -> Self {
        Investigator { config, colo, orgs, remoteness: RemotenessMap::default() }
    }

    /// Attaches remote-peering evidence: far-end ASes flagged remote at
    /// an exchange no longer nominate their (distant) home facilities as
    /// epicenter candidates for signals in that exchange's metro.
    pub fn with_remoteness(mut self, remoteness: RemotenessMap) -> Self {
        self.remoteness = remoteness;
        self
    }

    /// The colocation map in use.
    pub fn colo(&self) -> &ColocationMap {
        &self.colo
    }

    /// Whether an affected far-end AS's involvement at this metro is
    /// explained by remote peering: the latency heuristic flags it as
    /// remote at an IXP located in `city`. Its own facility tenancies
    /// (in its home metro) are then not epicenter evidence.
    fn remote_at_metro(&self, a: Asn, city: Option<CityId>) -> bool {
        if self.remoteness.is_empty() {
            return false;
        }
        let Some(city) = city else { return false };
        self.colo.ixps_in_city(city).into_iter().any(|x| self.remoteness.is_remote(x, a))
    }

    /// The city a PoP tag belongs to, for cross-PoP signal correlation.
    fn pop_city(&self, pop: &LocationTag) -> Option<CityId> {
        match pop {
            LocationTag::Facility(f) => self.colo.facility(*f).map(|f| f.city),
            LocationTag::Ixp(x) => self.colo.ixp(*x).map(|x| x.city),
            LocationTag::City(c) => Some(*c),
        }
    }

    /// Investigates one bin.
    ///
    /// Signals are first grouped per PoP, then *clustered by city*: one
    /// physical incident surfaces through several tags at once (the failed
    /// building's facility communities, coarser city communities of other
    /// operators, the co-located exchange), and only their union carries
    /// enough disjoint ASes to classify as PoP-level — this is the paper's
    /// "correlate outage signals from multiple PoPs" step. Localization
    /// then runs per contributing PoP and the verdicts are merged.
    pub fn investigate(&self, outcome: &BinOutcome) -> BinInvestigation {
        let mut result = BinInvestigation { bin_start: outcome.bin_start, ..Default::default() };
        // Group signals per PoP.
        let mut groups: BTreeMap<LocationTag, Vec<&OutageSignal>> = BTreeMap::new();
        for s in &outcome.signals {
            groups.entry(s.pop).or_default().push(s);
        }
        // Cluster PoPs by city (unknown-city PoPs stay alone).
        let mut clusters: BTreeMap<(u8, u32), Vec<LocationTag>> = BTreeMap::new();
        for pop in groups.keys() {
            let key = match self.pop_city(pop) {
                Some(c) => (0u8, c.0),
                None => match pop {
                    LocationTag::Facility(f) => (1, f.0),
                    LocationTag::Ixp(x) => (2, x.0),
                    LocationTag::City(c) => (3, c.0),
                },
            };
            clusters.entry(key).or_default().push(*pop);
        }
        let mut incidents: Vec<LocalizedIncident> = Vec::new();
        for pops in clusters.values() {
            let all_signals: Vec<&OutageSignal> =
                pops.iter().flat_map(|p| groups[p].iter().copied()).collect();
            let class = self.classify(&all_signals);
            if class != SignalClass::PopLevel {
                result.dismissed.push((pops[0], class));
                continue;
            }
            let mut found_any = false;
            let pending_start = result.pending.len();
            for pop in pops {
                let signals = &groups[pop];
                let affected_near: BTreeSet<Asn> = signals.iter().map(|s| s.near).collect();
                let affected_far: BTreeSet<Asn> =
                    signals.iter().flat_map(|s| s.far_ases.iter().copied()).collect();
                // Denominators scoped to the *affected* near-end ASes: the
                // 95% co-location rule asks whether the signaling ASes lost
                // all of their co-located links — near-ends whose ports
                // survived a partial outage raise no signal and must not
                // dilute the check.
                let mut stable_fars: BTreeMap<Asn, usize> = BTreeMap::new();
                if let Some(by_near) = outcome.stable_fars.get(pop) {
                    for near in &affected_near {
                        if let Some(fars) = by_near.get(near) {
                            for (far, n) in fars {
                                *stable_fars.entry(*far).or_insert(0) += n;
                            }
                        }
                    }
                }
                let loc = self.localize_detailed(*pop, &affected_far, &stable_fars);
                let mut keys: Vec<RouteKey> = Vec::new();
                let mut watch = Vec::new();
                for s in signals {
                    for k in &s.deviated {
                        keys.push(*k);
                        watch.push((*k, s.pop, s.near));
                    }
                }
                keys.sort();
                keys.dedup();
                if loc.needs_probe {
                    // Low confidence: hand the group to the probing stage
                    // instead of committing to a passive guess. A group
                    // with a fallback scope still counts as found — it
                    // will be reported one way or the other.
                    found_any |= loc.scope.is_some();
                    result.pending.push(PendingIncident {
                        pop: *pop,
                        bin_start: outcome.bin_start,
                        candidates: loc.suspects,
                        fallback: loc.scope,
                        affected_near,
                        affected_far,
                        affected_keys: keys,
                        watch,
                        booked_unresolved: 0,
                    });
                    continue;
                }
                let Some(scope) = loc.scope else {
                    continue;
                };
                found_any = true;
                incidents.push(LocalizedIncident {
                    scope,
                    bin_start: outcome.bin_start,
                    affected_near,
                    affected_far,
                    affected_keys: keys,
                    watch,
                });
            }
            if !found_any {
                result.unresolved.push(pops[0]);
                // The cluster is booked unresolved exactly once; mark the
                // booking on its first pending (all of a bookless
                // cluster's pendings have no fallback) so the system can
                // reconcile the counter if probes later resolve it.
                if let Some(p) = result.pending.get_mut(pending_start) {
                    p.booked_unresolved = 1;
                }
            }
        }
        result.incidents = self.merge_incidents(incidents);
        result.pending = merge_pending(std::mem::take(&mut result.pending));
        result
    }

    /// Classifies one PoP's signal group.
    pub fn classify(&self, signals: &[&OutageSignal]) -> SignalClass {
        // Affected links: (near, far) pairs.
        let mut links: BTreeSet<(Asn, Asn)> = BTreeSet::new();
        for s in signals {
            for far in &s.far_ases {
                links.insert((s.near, *far));
            }
        }
        let mut all_ases: BTreeSet<Asn> = BTreeSet::new();
        for (a, b) in &links {
            all_ases.insert(*a);
            all_ases.insert(*b);
        }
        // Link-level: too few distinct ASes to be anything bigger.
        if all_ases.len() <= self.config.min_affected_ases {
            return SignalClass::LinkLevel;
        }
        // AS-level: all links share one AS.
        let first = links.iter().next().expect("non-empty");
        for candidate in [first.0, first.1] {
            if links.iter().all(|(a, b)| *a == candidate || *b == candidate) {
                return SignalClass::AsLevel;
            }
        }
        // Operator-level: all links touch one organization's siblings.
        let candidate_orgs: BTreeSet<_> =
            [first.0, first.1].iter().filter_map(|a| self.orgs.org_of(*a)).collect();
        for org in candidate_orgs {
            if links.iter().all(|(a, b)| {
                self.orgs.org_of(*a) == Some(org) || self.orgs.org_of(*b) == Some(org)
            }) {
                return SignalClass::OperatorLevel;
            }
        }
        // PoP-level requires ≥3 disjoint non-sibling orgs on each side.
        let nears: Vec<Asn> = links.iter().map(|(a, _)| *a).collect();
        let fars: Vec<Asn> = links.iter().map(|(_, b)| *b).collect();
        let near_orgs = self.orgs.distinct_orgs(nears.iter().copied());
        let far_orgs = self.orgs.distinct_orgs(fars.iter().copied());
        if near_orgs >= self.config.min_disjoint_orgs && far_orgs >= self.config.min_disjoint_orgs {
            SignalClass::PopLevel
        } else {
            SignalClass::AsLevel
        }
    }

    fn coverage(
        &self,
        affected: &BTreeSet<Asn>,
        stable: &BTreeMap<Asn, usize>,
        members: &BTreeSet<Asn>,
    ) -> Coverage {
        let covered = stable.keys().filter(|a| members.contains(a) && affected.contains(a)).count();
        let denom = stable.keys().filter(|a| members.contains(a)).count();
        let in_members = affected.iter().filter(|a| members.contains(a)).count();
        let containment =
            if affected.is_empty() { 0.0 } else { in_members as f64 / affected.len() as f64 };
        Coverage { covered, denom, containment }
    }

    /// Localizes a PoP-level signal to its epicenter (passive verdict
    /// only; see [`Investigator::localize_detailed`] for the confidence
    /// signal the probing stage consumes).
    pub fn localize(
        &self,
        pop: LocationTag,
        affected_far: &BTreeSet<Asn>,
        stable_fars: &BTreeMap<Asn, usize>,
    ) -> Option<OutageScope> {
        self.localize_detailed(pop, affected_far, stable_fars).scope
    }

    /// Localizes a PoP-level signal, reporting the passive scope, every
    /// facility suspect with its passive scores, and whether the verdict
    /// needs active-measurement disambiguation.
    pub fn localize_detailed(
        &self,
        pop: LocationTag,
        affected_far: &BTreeSet<Asn>,
        stable_fars: &BTreeMap<Asn, usize>,
    ) -> Localization {
        let margin = self.config.colo_margin;
        let confident = |scope: OutageScope| Localization {
            scope: Some(scope),
            suspects: Vec::new(),
            needs_probe: false,
        };
        match pop {
            LocationTag::Facility(f) => {
                let mut suspects: Vec<FacilityCandidate> = Vec::new();
                // 1. Near-end facility test.
                let members = self.colo.members_of_facility(f);
                let cov = self.coverage(affected_far, stable_fars, members);
                if cov.denom >= 1 && cov.fraction() >= margin {
                    return confident(OutageScope::Facility(f));
                }
                if cov.denom >= 1 && cov.containment >= margin {
                    // The near-end building contains the affected set but
                    // its surviving members dilute the coverage: a suspect.
                    suspects.push(FacilityCandidate {
                        facility: f,
                        coverage: cov.fraction(),
                        containment: cov.containment,
                    });
                }
                // 2. Far-end facilities.
                let far =
                    self.far_candidates(affected_far, stable_fars, Some(f), self.pop_city(&pop));
                let passing: Vec<FacilityCandidate> =
                    far.iter().filter(|c| c.coverage >= margin).copied().collect();
                match passing.len() {
                    1 => return confident(OutageScope::Facility(passing[0].facility)),
                    n if n >= 2 => {
                        // Several buildings clear the margin: a tie only
                        // the data plane can break (fallback: the best
                        // passive score, the historical behavior).
                        return Localization {
                            scope: Some(OutageScope::Facility(passing[0].facility)),
                            suspects: passing,
                            needs_probe: true,
                        };
                    }
                    _ => {}
                }
                // 3. IXP escalation.
                if let Some(scope) = self.best_common_ixp(affected_far, stable_fars) {
                    return confident(scope);
                }
                suspects.extend(far);
                let suspects = finalize_suspects(suspects);
                let needs_probe = !suspects.is_empty();
                Localization { scope: None, suspects, needs_probe }
            }
            LocationTag::Ixp(x) => {
                // Resolution increase: a single fabric facility whose
                // members account for (almost) all affected paths means the
                // outage is the building, not the exchange.
                let mut suspects: Vec<FacilityCandidate> = Vec::new();
                let mut best: Option<(FacilityId, f64)> = None;
                for &f in self.colo.facilities_of_ixp(x) {
                    let members = self.colo.members_of_facility(f);
                    let cov = self.coverage(affected_far, stable_fars, members);
                    if cov.denom >= 1 && cov.containment >= margin {
                        if cov.fraction() >= margin {
                            let score = cov.containment;
                            if best.map(|(_, s)| score > s).unwrap_or(true) {
                                best = Some((f, score));
                            }
                        } else {
                            suspects.push(FacilityCandidate {
                                facility: f,
                                coverage: cov.fraction(),
                                containment: cov.containment,
                            });
                        }
                    }
                }
                if let Some((f, _)) = best {
                    return confident(OutageScope::Facility(f));
                }
                // Whole-exchange test.
                let members = self.colo.members_of_ixp(x);
                let cov = self.coverage(affected_far, stable_fars, members);
                if cov.denom >= 1 && cov.fraction() >= margin {
                    return confident(OutageScope::Ixp(x));
                }
                let far = self.far_candidates(affected_far, stable_fars, None, self.pop_city(&pop));
                let passing: Vec<FacilityCandidate> =
                    far.iter().filter(|c| c.coverage >= margin).copied().collect();
                match passing.len() {
                    1 => return confident(OutageScope::Facility(passing[0].facility)),
                    n if n >= 2 => {
                        return Localization {
                            scope: Some(OutageScope::Facility(passing[0].facility)),
                            suspects: passing,
                            needs_probe: true,
                        };
                    }
                    _ => {}
                }
                suspects.extend(far);
                let suspects = finalize_suspects(suspects);
                let needs_probe = !suspects.is_empty();
                Localization { scope: None, suspects, needs_probe }
            }
            LocationTag::City(c) => {
                // Sharpen to a facility in the city, then an IXP, else stay
                // at city level. Unlike the facility-tag case, affected
                // far-ends here span every building the near-end ASes use
                // in the city, so candidates are judged by *coverage* of
                // their co-located members (are this building's tenants
                // wiped out?) rather than by containment.
                // Of the affected far-ends the city's buildings can
                // explain at all, how concentrated is each building? A
                // far-end with a port but no recorded tenancy anywhere in
                // the city (remote peering through a reseller) must not
                // break the containment test for every building at once.
                let city_facilities = self.colo.facilities_in_city(c);
                let affected_in_city = affected_far
                    .iter()
                    .filter(|a| {
                        city_facilities
                            .iter()
                            .any(|f| self.colo.members_of_facility(*f).contains(a))
                    })
                    .count();
                let mut fac_cands: Vec<(FacilityCandidate, BTreeSet<Asn>)> = Vec::new();
                let mut suspects: Vec<FacilityCandidate> = Vec::new();
                for f in &city_facilities {
                    let members = self.colo.members_of_facility(*f);
                    let cov = self.coverage(affected_far, stable_fars, members);
                    let candidate = FacilityCandidate {
                        facility: *f,
                        coverage: cov.fraction(),
                        containment: cov.containment,
                    };
                    if cov.denom >= 2 && cov.fraction() >= margin {
                        let covered: BTreeSet<Asn> = stable_fars
                            .keys()
                            .filter(|a| members.contains(a) && affected_far.contains(a))
                            .copied()
                            .collect();
                        fac_cands.push((candidate, covered));
                        continue;
                    }
                    let in_building = affected_far.iter().filter(|a| members.contains(a)).count();
                    if cov.denom >= 2
                        && affected_in_city >= 1
                        && in_building as f64 >= margin * affected_in_city as f64
                    {
                        // Concrete building suspect behind a coarse city
                        // tag — the colocation-twin shape the probe
                        // subsystem disambiguates.
                        suspects.push(candidate);
                    }
                }
                match fac_cands.len() {
                    1 => return confident(OutageScope::Facility(fac_cands[0].0.facility)),
                    n if n >= 2 => {
                        // Several buildings clear the margin. If each is
                        // backed by its *own* wiped-out tenants, several
                        // buildings really failed together: a metro
                        // event. But when the covered evidence sets are
                        // (near-)identical, the candidates are colocation
                        // twins — one piece of evidence counted twice —
                        // and only the data plane can name the building.
                        let indistinguishable = fac_cands.iter().enumerate().all(|(i, (_, a))| {
                            fac_cands.iter().skip(i + 1).all(|(_, b)| {
                                let inter = a.intersection(b).count();
                                inter as f64 >= margin * a.len().min(b.len()) as f64
                            })
                        });
                        if indistinguishable {
                            let mut twins: Vec<FacilityCandidate> =
                                fac_cands.into_iter().map(|(cand, _)| cand).collect();
                            sort_candidates(&mut twins);
                            return Localization {
                                scope: Some(OutageScope::City(c)),
                                suspects: twins,
                                needs_probe: true,
                            };
                        }
                        return confident(OutageScope::City(c)); // several buildings down: metro event
                    }
                    _ => {}
                }
                let mut ixp_cands: Vec<IxpId> = Vec::new();
                for x in self.colo.ixps_in_city(c) {
                    let members = self.colo.members_of_ixp(x);
                    let cov = self.coverage(affected_far, stable_fars, members);
                    if cov.denom >= 2 && cov.fraction() >= margin {
                        ixp_cands.push(x);
                    }
                }
                if let [only] = ixp_cands.as_slice() {
                    return confident(OutageScope::Ixp(*only));
                }
                sort_candidates(&mut suspects);
                let needs_probe = !suspects.is_empty();
                Localization { scope: Some(OutageScope::City(c)), suspects, needs_probe }
            }
        }
    }

    /// All facility suspects among those hosting the affected far-end
    /// ASes: ≥2 co-located stable members (a single-member match is no
    /// evidence of a *facility* failure) and near-complete containment of
    /// the affected set. Sorted best passive score first; entries at or
    /// above the coverage margin are the historical "passing" candidates.
    fn far_candidates(
        &self,
        affected_far: &BTreeSet<Asn>,
        stable_fars: &BTreeMap<Asn, usize>,
        exclude: Option<FacilityId>,
        signal_city: Option<CityId>,
    ) -> Vec<FacilityCandidate> {
        let margin = self.config.colo_margin;
        let mut candidates: BTreeSet<FacilityId> = BTreeSet::new();
        for a in affected_far {
            // A far end peering remotely at this metro was hit through
            // its reseller port on the fabric, not through any building
            // it is a tenant of — its home facilities are no evidence.
            if self.remote_at_metro(*a, signal_city) {
                continue;
            }
            candidates.extend(self.colo.facilities_of_as(*a));
        }
        if let Some(f) = exclude {
            candidates.remove(&f);
        }
        let mut out: Vec<FacilityCandidate> = Vec::new();
        for g in candidates {
            let members = self.colo.members_of_facility(g);
            let cov = self.coverage(affected_far, stable_fars, members);
            if cov.denom >= 2 && cov.containment >= margin {
                out.push(FacilityCandidate {
                    facility: g,
                    coverage: cov.fraction(),
                    containment: cov.containment,
                });
            }
        }
        sort_candidates(&mut out);
        out
    }

    /// Best common IXP of the affected far-end ASes.
    fn best_common_ixp(
        &self,
        affected_far: &BTreeSet<Asn>,
        stable_fars: &BTreeMap<Asn, usize>,
    ) -> Option<OutageScope> {
        let margin = self.config.colo_margin;
        let mut candidates: BTreeSet<IxpId> = BTreeSet::new();
        for a in affected_far {
            candidates.extend(self.colo.ixps_of_as(*a));
        }
        let mut best: Option<(IxpId, f64)> = None;
        for x in candidates {
            let members = self.colo.members_of_ixp(x);
            let cov = self.coverage(affected_far, stable_fars, members);
            if cov.denom >= 2
                && cov.fraction() >= margin
                && cov.containment >= margin
                && best.map(|(_, s)| cov.containment > s).unwrap_or(true)
            {
                best = Some((x, cov.containment));
            }
        }
        best.map(|(x, _)| OutageScope::Ixp(x))
    }

    /// Deduplicates incidents converging on one scope and abstracts
    /// multiple same-city epicenters to a city-level incident.
    fn merge_incidents(&self, incidents: Vec<LocalizedIncident>) -> Vec<LocalizedIncident> {
        // 1. Merge identical scopes.
        let mut by_scope: BTreeMap<OutageScope, LocalizedIncident> = BTreeMap::new();
        for inc in incidents {
            match by_scope.get_mut(&inc.scope) {
                None => {
                    by_scope.insert(inc.scope, inc);
                }
                Some(existing) => {
                    existing.affected_near.extend(inc.affected_near.iter().copied());
                    existing.affected_far.extend(inc.affected_far.iter().copied());
                    existing.affected_keys.extend(inc.affected_keys.iter().copied());
                    existing.affected_keys.sort();
                    existing.affected_keys.dedup();
                    existing.watch.extend(inc.watch.iter().cloned());
                }
            }
        }
        // 2. City abstraction: ≥2 distinct physical scopes in one city
        // (including a city-level verdict corroborating a sharper one).
        let mut by_city: BTreeMap<CityId, Vec<OutageScope>> = BTreeMap::new();
        for scope in by_scope.keys() {
            let city = match scope {
                OutageScope::Facility(f) => self.colo.facility(*f).map(|f| f.city),
                OutageScope::Ixp(x) => self.colo.ixp(*x).map(|x| x.city),
                OutageScope::City(c) => Some(*c),
            };
            if let Some(c) = city {
                by_city.entry(c).or_default().push(*scope);
            }
        }
        let mut out: Vec<LocalizedIncident> = Vec::new();
        let mut absorbed: BTreeSet<OutageScope> = BTreeSet::new();
        for (city, scopes) in by_city {
            if scopes.len() < 2 {
                continue;
            }
            // A city-level verdict next to exactly one sharper verdict
            // merely corroborates it: merge *into* the sharp scope. Two or
            // more distinct physical scopes abstract to the city.
            let sharp: Vec<OutageScope> =
                scopes.iter().filter(|s| !matches!(s, OutageScope::City(_))).copied().collect();
            let target = match sharp.as_slice() {
                [only] => *only,
                _ => OutageScope::City(city),
            };
            let mut merged: Option<LocalizedIncident> = None;
            for s in &scopes {
                let inc = by_scope.get(s).expect("scope present").clone();
                absorbed.insert(*s);
                match &mut merged {
                    None => {
                        let mut m = inc;
                        m.scope = target;
                        merged = Some(m);
                    }
                    Some(m) => {
                        m.affected_near.extend(inc.affected_near);
                        m.affected_far.extend(inc.affected_far);
                        m.affected_keys.extend(inc.affected_keys);
                        m.affected_keys.sort();
                        m.affected_keys.dedup();
                        m.watch.extend(inc.watch);
                    }
                }
            }
            out.push(merged.expect("at least one scope"));
        }
        for (scope, inc) in by_scope {
            if !absorbed.contains(&scope) {
                out.push(inc);
            }
        }
        out.sort_by_key(|i| i.scope);
        out
    }
}

/// Sorts candidates best passive score first: containment, then
/// coverage, descending. The sort is stable, and candidates arrive in
/// facility-id order, so equal scores keep the lowest id first — the
/// historical tie-break of the best-candidate selection.
fn sort_candidates(candidates: &mut [FacilityCandidate]) {
    candidates.sort_by(|a, b| {
        (b.containment, b.coverage)
            .partial_cmp(&(a.containment, a.coverage))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// Sorts suspects best-first and drops duplicate facilities (a building
/// can qualify through several collection paths — e.g. an IXP's fabric
/// loop *and* the far-end facility scan — and a duplicated candidate
/// would be probed twice and defeat the unique-confirmation rule).
fn finalize_suspects(mut suspects: Vec<FacilityCandidate>) -> Vec<FacilityCandidate> {
    sort_candidates(&mut suspects);
    let mut seen: BTreeSet<FacilityId> = BTreeSet::new();
    suspects.retain(|c| seen.insert(c.facility));
    suspects
}

/// Merges pending localizations that name the same candidate set: one
/// physical incident surfaces through several tags at once (the city
/// tag, each bystander building's tag), and probing it once is enough.
fn merge_pending(pending: Vec<PendingIncident>) -> Vec<PendingIncident> {
    let mut by_cands: BTreeMap<Vec<u32>, PendingIncident> = BTreeMap::new();
    for p in pending {
        let mut key: Vec<u32> = p.candidates.iter().map(|c| c.facility.0).collect();
        key.sort_unstable();
        key.dedup();
        match by_cands.get_mut(&key) {
            None => {
                by_cands.insert(key, p);
            }
            Some(existing) => {
                existing.affected_near.extend(p.affected_near);
                existing.affected_far.extend(p.affected_far);
                existing.affected_keys.extend(p.affected_keys);
                existing.affected_keys.sort();
                existing.affected_keys.dedup();
                existing.watch.extend(p.watch);
                existing.booked_unresolved += p.booked_unresolved;
                if existing.fallback.is_none() {
                    existing.fallback = p.fallback;
                }
            }
        }
    }
    by_cands.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_topology::entities::{Facility, Ixp};
    use kepler_topology::{Continent, GeoPoint};

    fn facility(id: u32, city: u32) -> Facility {
        Facility {
            id: FacilityId(id),
            name: format!("F{id}"),
            address: String::new(),
            postcode: format!("P{id}"),
            country: "GB".into(),
            city: CityId(city),
            continent: Continent::Europe,
            point: GeoPoint::new(51.5, 0.0),
            operator: "Op".into(),
        }
    }

    /// World: facility 0 ("TH East", near end, signal source), facility 1
    /// ("TC HEX", hosts fars 201..205) — both in city 0 — and facility 2
    /// (hosts fars 301..305) in another city.
    fn build() -> Investigator {
        let mut colo = ColocationMap::new();
        colo.add_facility(facility(0, 0));
        colo.add_facility(facility(1, 0));
        colo.add_facility(facility(2, 1));
        colo.add_ixp(Ixp {
            id: IxpId(0),
            name: "LINX".into(),
            url: "linx.net".into(),
            city: CityId(0),
            continent: Continent::Europe,
            route_server_asn: None,
        });
        for a in 201..=205u32 {
            colo.add_fac_member(FacilityId(1), Asn(a));
            colo.add_fac_member(FacilityId(0), Asn(a));
        }
        for a in 301..=305u32 {
            colo.add_fac_member(FacilityId(2), Asn(a));
            colo.add_fac_member(FacilityId(0), Asn(a));
        }
        for a in (201..=205).chain(301..=305) {
            colo.add_ixp_member(IxpId(0), Asn(a));
        }
        colo.link_ixp_facility(IxpId(0), FacilityId(0));
        Investigator::new(KeplerConfig::default(), colo, OrgMap::new())
    }

    fn signal(pop: LocationTag, near: u32, fars: &[u32]) -> OutageSignal {
        OutageSignal {
            pop,
            near: Asn(near),
            bin_start: 0,
            deviated: vec![],
            stable_total: fars.len().max(1),
            far_ases: fars.iter().map(|&f| Asn(f)).collect(),
            fraction: 1.0,
        }
    }

    fn stable_all() -> BTreeMap<Asn, usize> {
        (201..=205).chain(301..=305).map(|a| (Asn(a), 2)).collect()
    }

    #[test]
    fn classify_link_level() {
        let inv = build();
        let s = signal(LocationTag::Facility(FacilityId(0)), 1, &[2]);
        assert_eq!(inv.classify(&[&s]), SignalClass::LinkLevel);
    }

    #[test]
    fn classify_as_level_common_near() {
        let inv = build();
        let s = signal(LocationTag::Facility(FacilityId(0)), 1, &[2, 3, 4, 5]);
        assert_eq!(inv.classify(&[&s]), SignalClass::AsLevel);
    }

    #[test]
    fn classify_as_level_common_far() {
        let inv = build();
        let s1 = signal(LocationTag::Facility(FacilityId(0)), 1, &[9]);
        let s2 = signal(LocationTag::Facility(FacilityId(0)), 2, &[9]);
        let s3 = signal(LocationTag::Facility(FacilityId(0)), 3, &[9]);
        assert_eq!(inv.classify(&[&s1, &s2, &s3]), SignalClass::AsLevel);
    }

    #[test]
    fn classify_operator_level() {
        let mut inv = build();
        let org = inv.orgs.add_org("Bell");
        for a in [11u32, 12, 13] {
            inv.orgs.assign(Asn(a), org);
        }
        let s1 = signal(LocationTag::Facility(FacilityId(0)), 1, &[11]);
        let s2 = signal(LocationTag::Facility(FacilityId(0)), 2, &[12]);
        let s3 = signal(LocationTag::Facility(FacilityId(0)), 3, &[13]);
        assert_eq!(inv.classify(&[&s1, &s2, &s3]), SignalClass::OperatorLevel);
    }

    #[test]
    fn classify_pop_level() {
        let inv = build();
        let s1 = signal(LocationTag::Facility(FacilityId(0)), 1, &[201, 202]);
        let s2 = signal(LocationTag::Facility(FacilityId(0)), 2, &[203, 204]);
        let s3 = signal(LocationTag::Facility(FacilityId(0)), 3, &[205, 201]);
        assert_eq!(inv.classify(&[&s1, &s2, &s3]), SignalClass::PopLevel);
    }

    #[test]
    fn siblings_do_not_count_as_disjoint() {
        let mut inv = build();
        let org = inv.orgs.add_org("One");
        for a in [1u32, 2, 3] {
            inv.orgs.assign(Asn(a), org);
        }
        // Near-ends 1,2,3 are siblings: only 1 near-side org.
        let s1 = signal(LocationTag::Facility(FacilityId(0)), 1, &[201, 202]);
        let s2 = signal(LocationTag::Facility(FacilityId(0)), 2, &[203, 204]);
        let s3 = signal(LocationTag::Facility(FacilityId(0)), 3, &[205, 202]);
        assert_ne!(inv.classify(&[&s1, &s2, &s3]), SignalClass::PopLevel);
    }

    #[test]
    fn near_end_facility_localization() {
        let inv = build();
        // All far-end members of facility 0 are affected.
        let affected: BTreeSet<Asn> = (201..=205).chain(301..=305).map(Asn).collect();
        let scope = inv.localize(LocationTag::Facility(FacilityId(0)), &affected, &stable_all());
        assert_eq!(scope, Some(OutageScope::Facility(FacilityId(0))));
    }

    #[test]
    fn far_end_facility_disambiguation() {
        let inv = build();
        // Only the fars at facility 1 are affected: epicenter must be
        // facility 1, not the near-end facility 0 (the London case).
        let affected: BTreeSet<Asn> = (201..=205).map(Asn).collect();
        let scope = inv.localize(LocationTag::Facility(FacilityId(0)), &affected, &stable_all());
        assert_eq!(scope, Some(OutageScope::Facility(FacilityId(1))));
    }

    #[test]
    fn ixp_signal_resolves_to_whole_exchange() {
        let inv = build();
        let affected: BTreeSet<Asn> = (201..=205).chain(301..=305).map(Asn).collect();
        // Facility 0 hosts the fabric and all those fars are members of
        // facility 0 too, so the facility test fires first — which is the
        // desired "outage is the building, not the IXP" resolution.
        let scope = inv.localize(LocationTag::Ixp(IxpId(0)), &affected, &stable_all());
        assert_eq!(scope, Some(OutageScope::Facility(FacilityId(0))));
    }

    #[test]
    fn ixp_signal_with_spread_members_stays_ixp() {
        let mut colo = ColocationMap::new();
        colo.add_facility(facility(0, 0));
        colo.add_facility(facility(1, 0));
        colo.add_ixp(Ixp {
            id: IxpId(0),
            name: "IX".into(),
            url: "ix.net".into(),
            city: CityId(0),
            continent: Continent::Europe,
            route_server_asn: None,
        });
        // Members split across two fabric facilities.
        for a in 1..=4u32 {
            colo.add_fac_member(FacilityId(0), Asn(a));
            colo.add_ixp_member(IxpId(0), Asn(a));
        }
        for a in 5..=8u32 {
            colo.add_fac_member(FacilityId(1), Asn(a));
            colo.add_ixp_member(IxpId(0), Asn(a));
        }
        colo.link_ixp_facility(IxpId(0), FacilityId(0));
        colo.link_ixp_facility(IxpId(0), FacilityId(1));
        let inv = Investigator::new(KeplerConfig::default(), colo, OrgMap::new());
        let affected: BTreeSet<Asn> = (1..=8).map(Asn).collect();
        let stable: BTreeMap<Asn, usize> = (1..=8).map(|a| (Asn(a), 1)).collect();
        let scope = inv.localize(LocationTag::Ixp(IxpId(0)), &affected, &stable);
        assert_eq!(scope, Some(OutageScope::Ixp(IxpId(0))));
        // Only facility 0's members affected -> the building, not the IXP.
        let affected0: BTreeSet<Asn> = (1..=4).map(Asn).collect();
        let scope0 = inv.localize(LocationTag::Ixp(IxpId(0)), &affected0, &stable);
        assert_eq!(scope0, Some(OutageScope::Facility(FacilityId(0))));
    }

    #[test]
    fn city_signal_sharpen_and_fallback() {
        let inv = build();
        // All members of facility 1 affected: city tag sharpens to it.
        let affected: BTreeSet<Asn> = (201..=205).map(Asn).collect();
        let scope = inv.localize(LocationTag::City(CityId(0)), &affected, &stable_all());
        assert_eq!(scope, Some(OutageScope::Facility(FacilityId(1))));
        // Mixed affected set that matches nothing cleanly stays city-wide.
        let mixed: BTreeSet<Asn> = [201u32, 301, 999].iter().map(|&a| Asn(a)).collect();
        let scope2 = inv.localize(LocationTag::City(CityId(0)), &mixed, &stable_all());
        assert_eq!(scope2, Some(OutageScope::City(CityId(0))));
    }

    /// Colocation twins: facilities 1 and 2 both list fars 201..=210, but
    /// only 201..=205 (the ports that physically sit in facility 1) are
    /// affected. Facility 0 is the near-end bystander whose tag carries
    /// the signals.
    fn build_twins() -> Investigator {
        let mut colo = ColocationMap::new();
        colo.add_facility(facility(0, 0));
        colo.add_facility(facility(1, 0));
        colo.add_facility(facility(2, 0));
        for a in 201..=210u32 {
            colo.add_fac_member(FacilityId(1), Asn(a));
            colo.add_fac_member(FacilityId(2), Asn(a));
        }
        Investigator::new(KeplerConfig::default(), colo, OrgMap::new())
    }

    fn stable_twins() -> BTreeMap<Asn, usize> {
        (201..=210).map(|a| (Asn(a), 2)).collect()
    }

    #[test]
    fn twin_facilities_defeat_passive_localization_and_need_probes() {
        let inv = build_twins();
        let affected: BTreeSet<Asn> = (201..=205).map(Asn).collect();
        // Through the bystander facility tag: no verdict, two suspects.
        let loc =
            inv.localize_detailed(LocationTag::Facility(FacilityId(0)), &affected, &stable_twins());
        assert_eq!(loc.scope, None);
        assert!(loc.needs_probe);
        let named: Vec<FacilityId> = loc.suspects.iter().map(|c| c.facility).collect();
        assert_eq!(named, vec![FacilityId(1), FacilityId(2)]);
        assert!((loc.suspects[0].containment - 1.0).abs() < 1e-9);
        assert!(loc.suspects[0].coverage < 0.95, "live twin ports dilute coverage");
        // Through the city tag: coarse city verdict over the same suspects.
        let loc = inv.localize_detailed(LocationTag::City(CityId(0)), &affected, &stable_twins());
        assert_eq!(loc.scope, Some(OutageScope::City(CityId(0))));
        assert!(loc.needs_probe);
        assert_eq!(loc.suspects.len(), 2);
    }

    #[test]
    fn tied_passing_candidates_need_probes_with_best_fallback() {
        let inv = build_twins();
        // Both buildings fully wiped: two candidates clear the margin.
        let affected: BTreeSet<Asn> = (201..=210).map(Asn).collect();
        let loc =
            inv.localize_detailed(LocationTag::Facility(FacilityId(0)), &affected, &stable_twins());
        assert_eq!(loc.scope, Some(OutageScope::Facility(FacilityId(1))), "historical best");
        assert!(loc.needs_probe, "a tie is not confidence");
        assert_eq!(loc.suspects.len(), 2);
        // The wrapper keeps the historical passive behavior.
        assert_eq!(
            inv.localize(LocationTag::Facility(FacilityId(0)), &affected, &stable_twins()),
            Some(OutageScope::Facility(FacilityId(1)))
        );
    }

    #[test]
    fn ixp_tag_suspects_are_deduplicated() {
        // Facility 1 qualifies as a suspect both through the IXP's fabric
        // loop and through the far-end facility scan; the candidate list
        // must still name it once (a duplicate would be probed twice and
        // defeat the unique-confirmation rule).
        let mut colo = ColocationMap::new();
        colo.add_facility(facility(0, 0));
        colo.add_facility(facility(1, 0));
        colo.add_facility(facility(2, 0));
        colo.add_ixp(Ixp {
            id: IxpId(0),
            name: "IX".into(),
            url: "ix.net".into(),
            city: CityId(0),
            continent: Continent::Europe,
            route_server_asn: None,
        });
        for a in 201..=210u32 {
            colo.add_fac_member(FacilityId(1), Asn(a));
            colo.add_fac_member(FacilityId(2), Asn(a));
            colo.add_ixp_member(IxpId(0), Asn(a));
        }
        colo.link_ixp_facility(IxpId(0), FacilityId(1));
        let inv = Investigator::new(KeplerConfig::default(), colo, OrgMap::new());
        let affected: BTreeSet<Asn> = (201..=205).map(Asn).collect();
        let stable: BTreeMap<Asn, usize> = (201..=210).map(|a| (Asn(a), 2)).collect();
        let loc = inv.localize_detailed(LocationTag::Ixp(IxpId(0)), &affected, &stable);
        assert_eq!(loc.scope, None);
        assert!(loc.needs_probe);
        let named: Vec<FacilityId> = loc.suspects.iter().map(|c| c.facility).collect();
        let unique: BTreeSet<FacilityId> = named.iter().copied().collect();
        assert_eq!(named.len(), unique.len(), "duplicate suspects: {named:?}");
        assert!(unique.contains(&FacilityId(1)) && unique.contains(&FacilityId(2)));
    }

    #[test]
    fn investigation_merges_pendings_across_tags() {
        let inv = build_twins();
        let mut outcome = BinOutcome { bin_start: 600, ..Default::default() };
        // The same physical incident seen through the bystander facility
        // tag and the city tag.
        for (near, fars) in [(1u32, [201u32, 202]), (2, [203, 204]), (3, [205, 201])] {
            outcome.signals.push(signal(LocationTag::Facility(FacilityId(0)), near, &fars));
            outcome.signals.push(signal(LocationTag::City(CityId(0)), near, &fars));
        }
        let by_near: BTreeMap<Asn, BTreeMap<Asn, usize>> =
            [(Asn(1), stable_twins()), (Asn(2), stable_twins()), (Asn(3), stable_twins())].into();
        outcome.stable_fars.insert(LocationTag::Facility(FacilityId(0)), by_near.clone());
        outcome.stable_fars.insert(LocationTag::City(CityId(0)), by_near);
        let result = inv.investigate(&outcome);
        assert!(result.incidents.is_empty(), "nothing is confidently localized");
        assert_eq!(result.pending.len(), 1, "same candidate set probes once: {result:?}");
        let p = &result.pending[0];
        assert_eq!(p.fallback, Some(OutageScope::City(CityId(0))));
        assert_eq!(p.candidates.len(), 2);
        assert_eq!(p.affected_near.len(), 3);
        let req = p.request();
        assert_eq!(req.candidates, vec![FacilityId(1), FacilityId(2)]);
        assert_eq!(req.affected_far.len(), 5);
        // Materializing with a settled scope carries everything over.
        let inc = p.to_incident(OutageScope::Facility(FacilityId(1)));
        assert_eq!(inc.scope, OutageScope::Facility(FacilityId(1)));
        assert_eq!(inc.affected_near, p.affected_near);
    }

    #[test]
    fn full_investigation_dismisses_and_localizes() {
        let inv = build();
        let mut outcome = BinOutcome { bin_start: 600, ..Default::default() };
        // PoP-level group at facility 0.
        outcome.signals.push(signal(LocationTag::Facility(FacilityId(0)), 1, &[201, 202]));
        outcome.signals.push(signal(LocationTag::Facility(FacilityId(0)), 2, &[203, 204]));
        outcome.signals.push(signal(LocationTag::Facility(FacilityId(0)), 3, &[205]));
        // Link-level group at facility 2.
        outcome.signals.push(signal(LocationTag::Facility(FacilityId(2)), 7, &[8]));
        // Every signaling near-end (1, 2, 3) sees the full far set.
        let by_near: BTreeMap<Asn, BTreeMap<Asn, usize>> =
            [(Asn(1), stable_all()), (Asn(2), stable_all()), (Asn(3), stable_all())].into();
        outcome.stable_fars.insert(LocationTag::Facility(FacilityId(0)), by_near);
        outcome.stable_fars.insert(LocationTag::Facility(FacilityId(2)), BTreeMap::new());
        let result = inv.investigate(&outcome);
        assert_eq!(result.incidents.len(), 1);
        assert_eq!(result.incidents[0].scope, OutageScope::Facility(FacilityId(1)));
        assert_eq!(
            result.dismissed,
            vec![(LocationTag::Facility(FacilityId(2)), SignalClass::LinkLevel)]
        );
    }
}

//! Outage lifecycle tracking (paper §4.3–4.4).
//!
//! An incident opens when the investigator localizes it; it closes when
//! more than `restore_fraction` of its affected paths carry their original
//! (PoP, near-end) tag again — or, when a restoration prober is attached,
//! when **re-probes of the epicenter observe baseline paths crossing it
//! again** (the data plane reconverges well before BGP, Figure 10a vs
//! 10b). Two outages of the same scope separated by less than
//! `merge_window_secs` are one oscillating incident whose downtime is the
//! sum of the individual outage durations.
//!
//! The tracker is also the system's **evidence ledger**: judged
//! (vantage, target, facility) hop-evidence pairs from consecutive bins
//! accumulate on the open incident (deduplicated, fresh measurement
//! wins), and a probe-confirmed verdict carries a confidence score that
//! decays with the configured half-life. While the decayed confidence
//! stays above `evidence_reuse_confidence`, later bins of the same
//! incident reuse the accumulated verdict instead of re-probing from
//! scratch ([`Tracker::accumulated_confirmation`]).
//!
//! Lifecycle states surface as [`IncidentState`] — `Open` while the
//! epicenter is dark, `Recovering` once restoration has been observed but
//! the oscillation window is still live, `Closed` when final.

use crate::config::KeplerConfig;
use crate::events::{IncidentState, OutageReport, OutageScope, RouteKey, ValidationStatus};
use crate::intern::{AsnId, Interner, PopId, RouteId};
use crate::investigate::LocalizedIncident;
use crate::shard::AnyMonitor;
use crate::signal::{SignalKind, SourceContribution};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_probe::{Backoff, Epicenter, HopEvidence, RestorationProber, RestorationVerdict};
use kepler_topology::{CityId, ColocationMap, FacilityId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Validation metadata recorded alongside one localized incident: the
/// passive data-plane confirmation (paper §4.4 baseline re-probe) and the
/// targeted-probe verdict with its hop-level evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentMeta {
    /// Baseline data-plane confirmation, when a backend was attached.
    pub dataplane: Option<bool>,
    /// Targeted-probe verdict for the incident's epicenter.
    pub validation: ValidationStatus,
    /// Hop-level evidence behind the verdict.
    pub evidence: Vec<HopEvidence>,
    /// Whether the verdict was settled from accumulated evidence instead
    /// of fresh measurements. A reused confirmation must not re-anchor
    /// the confidence clock — only re-measured evidence resets decay,
    /// otherwise recurring deviations could pin an epicenter forever on
    /// evidence measured once.
    pub reused: bool,
    /// Campaign completeness behind the verdict (completed measurement
    /// pairs over planned; `1.0` when no probing ran). The incident keeps
    /// the minimum across its bins.
    pub completeness: f64,
    /// Detection sources behind this bin's localization. Empty means the
    /// plain deviation test (the tracker synthesizes a
    /// [`SignalKind::Deviation`] contribution at full confidence), so
    /// pre-fusion callers are untouched.
    pub sources: Vec<SourceContribution>,
}

impl Default for IncidentMeta {
    fn default() -> Self {
        IncidentMeta {
            dataplane: None,
            validation: ValidationStatus::default(),
            evidence: Vec::new(),
            reused: false,
            completeness: 1.0,
            sources: Vec::new(),
        }
    }
}

/// Merges per-source contributions: per kind, the peak confidence and
/// earliest first-fire bin win; the result stays sorted by wire tag so
/// exports are deterministic.
fn merge_sources(acc: &mut Vec<SourceContribution>, add: &[SourceContribution]) {
    for c in add {
        match acc.iter_mut().find(|s| s.kind == c.kind) {
            Some(s) => {
                s.confidence = s.confidence.max(c.confidence);
                s.first_bin = s.first_bin.min(c.first_bin);
            }
            None => acc.push(*c),
        }
    }
    acc.sort_by_key(|s| s.kind.tag());
}

/// Dedup key of one judged measurement pair: (vantage, target, facility).
type EvidenceKey = (u32, u32, u32);

fn evidence_key(e: &HopEvidence) -> EvidenceKey {
    (e.vantage.0, e.target.0, e.facility.0)
}

#[derive(Debug)]
struct Ongoing {
    scope: OutageScope,
    started: Timestamp,
    /// Duration accumulated by earlier oscillation segments.
    prior_duration: u64,
    segment_start: Timestamp,
    oscillations: usize,
    affected_near: BTreeSet<Asn>,
    affected_far: BTreeSet<Asn>,
    affected_keys: BTreeSet<RouteKey>,
    /// Crossings to watch for restoration, in dense-id space — restoration
    /// checks run every bin, so they must not touch fat keys.
    watch: Vec<(RouteId, PopId, AsnId)>,
    dataplane_confirmed: Option<bool>,
    validation: ValidationStatus,
    /// Accumulated judged pairs, deduplicated by (vantage, target,
    /// facility); a fresh measurement of the same pair replaces the stale
    /// one. `BTreeMap` so reports render evidence in a stable order.
    evidence: BTreeMap<EvidenceKey, HopEvidence>,
    /// Worst campaign completeness observed across the incident's bins.
    completeness: f64,
    /// Confidence of the accumulated probe verdict at `confidence_at`
    /// (1.0 = freshly probe-confirmed, decays with the configured
    /// half-life; 0.0 = nothing reusable).
    confidence: f64,
    confidence_at: Timestamp,
    /// When the next restoration re-probe is due.
    next_probe: Timestamp,
    /// Current re-probe backoff delay.
    probe_backoff: u64,
    /// First `Restored` verdict of the current streak — the close time if
    /// the next check confirms (`None` once a `StillDown` interrupts).
    probe_restored_at: Option<Timestamp>,
    /// Consecutive BGP restoration checks above `restore_fraction`
    /// (closing hysteresis; resets on any non-restored check or new
    /// deviation signals).
    restored_streak: usize,
    /// First check of the current restored streak — the close anchor
    /// once the streak reaches `close_after_consecutive`.
    restored_first: Option<Timestamp>,
    /// Per-source detection contributions (tag-sorted; see
    /// [`merge_sources`]).
    sources: Vec<SourceContribution>,
}

impl Ongoing {
    fn merge_evidence(&mut self, fresh: &[HopEvidence]) {
        for e in fresh {
            self.evidence.insert(evidence_key(e), *e);
        }
    }

    fn evidence_vec(&self) -> Vec<HopEvidence> {
        self.evidence.values().copied().collect()
    }

    fn live_state(&self) -> IncidentState {
        if self.probe_restored_at.is_some() || self.restored_streak > 0 {
            IncidentState::Recovering
        } else {
            IncidentState::Open
        }
    }
}

/// Tracks ongoing and closed outages.
#[derive(Debug, Default)]
pub struct Tracker {
    config: KeplerConfig,
    ongoing: HashMap<OutageScope, Ongoing>,
    /// Closed segments waiting for possible oscillation-reopen: scope →
    /// (closed report, end time).
    cooling: HashMap<OutageScope, (OutageReport, u64 /* accumulated duration */)>,
    finished: Vec<OutageReport>,
    /// Facility → city, for cross-scope incident reconciliation.
    fac_city: HashMap<u32, CityId>,
    /// IXP → city.
    ixp_city: HashMap<u32, CityId>,
    /// Opening hysteresis state: scope → (consecutive signal bins so
    /// far, last bin seen, first bin of the streak). Only populated when
    /// `open_after_consecutive > 1`.
    warming: HashMap<OutageScope, (usize, Timestamp, Timestamp)>,
}

impl Tracker {
    /// A tracker with the given configuration.
    pub fn new(config: KeplerConfig) -> Self {
        Tracker { config, ..Default::default() }
    }

    /// Loads facility/IXP geography so that shadows of one incident seen
    /// through different PoP tags (the facility, its IXP, its city) merge
    /// into one report instead of three.
    pub fn set_geography(&mut self, colo: &ColocationMap) {
        for f in colo.facilities() {
            self.fac_city.insert(f.id.0, f.city);
        }
        for x in colo.ixps() {
            self.ixp_city.insert(x.id.0, x.city);
        }
    }

    fn city_of(&self, scope: &OutageScope) -> Option<CityId> {
        match scope {
            OutageScope::Facility(f) => self.fac_city.get(&f.0).copied(),
            OutageScope::Ixp(x) => self.ixp_city.get(&x.0).copied(),
            OutageScope::City(c) => Some(*c),
        }
    }

    /// Whether two scopes plausibly describe the same physical incident.
    fn related(&self, a: &OutageScope, b: &OutageScope) -> bool {
        if a == b {
            return true;
        }
        match (self.city_of(a), self.city_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The scope to keep when merging two related scopes: identical scopes
    /// stay; a city-level scope corroborating a sharper one is absorbed
    /// into the sharp scope; two distinct physical scopes abstract to
    /// their city.
    fn merged_scope(&self, a: OutageScope, b: OutageScope) -> OutageScope {
        if a == b {
            return a;
        }
        match (a, b) {
            (OutageScope::City(_), sharp) => sharp,
            (sharp, OutageScope::City(_)) => sharp,
            _ => match self.city_of(&a) {
                Some(c) => OutageScope::City(c),
                None => a,
            },
        }
    }

    /// The backoff schedule restoration re-probes follow.
    fn backoff(&self) -> Backoff {
        Backoff {
            initial_secs: self.config.restore_probe_initial_secs,
            max_secs: self.config.restore_probe_max_secs,
        }
    }

    /// The accumulated confidence of `on`'s probe verdict at `now`,
    /// decayed by the configured half-life.
    fn decayed_confidence(&self, on: &Ongoing, now: Timestamp) -> f64 {
        if on.confidence <= 0.0 {
            return 0.0;
        }
        let half_life = self.config.evidence_half_life_secs;
        if half_life == 0 {
            return 0.0;
        }
        let age = now.saturating_sub(on.confidence_at) as f64;
        on.confidence * 0.5_f64.powf(age / half_life as f64)
    }

    /// Cross-bin evidence reuse: if an *open* incident whose epicenter is
    /// one of `candidates` already carries a probe-confirmed verdict
    /// whose decayed confidence still clears
    /// `evidence_reuse_confidence`, returns that facility and the
    /// accumulated hop evidence — the caller can settle the new bin's
    /// pending localization without re-probing from scratch.
    pub fn accumulated_confirmation(
        &self,
        candidates: &[FacilityId],
        now: Timestamp,
    ) -> Option<(FacilityId, Vec<HopEvidence>)> {
        let mut best: Option<(f64, FacilityId, Vec<HopEvidence>)> = None;
        // Candidate order (best passive score first) breaks confidence
        // ties, so attribution never depends on map iteration order.
        for &f in candidates {
            let Some(on) = self.ongoing.get(&OutageScope::Facility(f)) else { continue };
            if on.validation != ValidationStatus::Confirmed {
                continue;
            }
            let c = self.decayed_confidence(on, now);
            if c < self.config.evidence_reuse_confidence {
                continue;
            }
            if best.as_ref().map(|(b, ..)| c > *b).unwrap_or(true) {
                best = Some((c, f, on.evidence_vec()));
            }
        }
        best.map(|(_, f, ev)| (f, ev))
    }

    /// Records this bin's localized incidents. The incidents' display-typed
    /// watch crossings are interned once here; every later restoration
    /// check runs dense.
    pub fn record(
        &mut self,
        incidents: &[LocalizedIncident],
        meta: &[IncidentMeta],
        interner: &mut Interner,
    ) {
        let backoff = self.backoff();
        for (inc, meta) in incidents.iter().zip(meta.iter()) {
            let dense_watch: Vec<(RouteId, PopId, AsnId)> = inc
                .watch
                .iter()
                .map(|(k, pop, near)| {
                    (interner.route_id(k), interner.pop_id(*pop), interner.asn_id(*near))
                })
                .collect();
            // Attribution: an empty meta source list means the plain
            // deviation test found this bin.
            let contribs = if meta.sources.is_empty() {
                vec![SourceContribution {
                    kind: SignalKind::Deviation,
                    confidence: 1.0,
                    first_bin: inc.bin_start,
                }]
            } else {
                meta.sources.clone()
            };
            // Merge target among ongoing outages: exact scope first, then
            // any related scope (same city).
            let target = if self.ongoing.contains_key(&inc.scope) {
                Some(inc.scope)
            } else {
                self.ongoing.keys().find(|s| self.related(s, &inc.scope)).copied()
            };
            if let Some(key) = target {
                let mut on = self.ongoing.remove(&key).expect("target present");
                on.affected_near.extend(inc.affected_near.iter().copied());
                on.affected_far.extend(inc.affected_far.iter().copied());
                on.affected_keys.extend(inc.affected_keys.iter().copied());
                on.watch.extend(dense_watch.iter().copied());
                if on.dataplane_confirmed.is_none() {
                    on.dataplane_confirmed = meta.dataplane;
                }
                if on.validation == ValidationStatus::Unvalidated {
                    on.validation = meta.validation;
                }
                on.completeness = on.completeness.min(meta.completeness);
                on.merge_evidence(&meta.evidence);
                merge_sources(&mut on.sources, &contribs);
                if meta.validation == ValidationStatus::Confirmed && !meta.reused {
                    // Freshly *measured* confirmation: the verdict is
                    // current again. (A reused verdict keeps its original
                    // decay clock — it adds no new measurement.)
                    on.validation = ValidationStatus::Confirmed;
                    on.confidence = 1.0;
                    on.confidence_at = inc.bin_start;
                }
                // New signals mean the epicenter is still (or again)
                // misbehaving: any in-flight restoration streak is stale.
                on.probe_restored_at = None;
                on.restored_streak = 0;
                on.restored_first = None;
                on.scope = self.merged_scope(key, inc.scope);
                // A previously separate ongoing entry under the merged
                // scope is the same incident too.
                if let Some(other) = self.ongoing.remove(&on.scope) {
                    if self.decayed_confidence(&other, inc.bin_start)
                        > self.decayed_confidence(&on, inc.bin_start)
                    {
                        on.confidence = other.confidence;
                        on.confidence_at = other.confidence_at;
                    }
                    on.next_probe = on.next_probe.min(other.next_probe);
                    on.started = on.started.min(other.started);
                    on.segment_start = on.segment_start.min(other.segment_start);
                    on.prior_duration = on.prior_duration.max(other.prior_duration);
                    on.oscillations = on.oscillations.max(other.oscillations);
                    on.affected_near.extend(other.affected_near);
                    on.affected_far.extend(other.affected_far);
                    on.affected_keys.extend(other.affected_keys);
                    on.watch.extend(other.watch);
                    if on.validation == ValidationStatus::Unvalidated {
                        on.validation = other.validation;
                    }
                    on.completeness = on.completeness.min(other.completeness);
                    for (k, e) in other.evidence {
                        on.evidence.entry(k).or_insert(e);
                    }
                    merge_sources(&mut on.sources, &other.sources);
                }
                self.ongoing.insert(on.scope, on);
                continue;
            }
            // Oscillation? Reopen a recently closed incident of a related
            // scope.
            let ckey = if self.cooling.contains_key(&inc.scope) {
                Some(inc.scope)
            } else {
                self.cooling.keys().find(|s| self.related(s, &inc.scope)).copied()
            };
            if let Some(key) = ckey {
                let (report, acc) = self.cooling.remove(&key).expect("cooling present");
                let gap_ok = report
                    .end
                    .map(|e| inc.bin_start.saturating_sub(e) < self.config.merge_window_secs)
                    .unwrap_or(false);
                if gap_ok {
                    let scope = self.merged_scope(key, inc.scope);
                    let mut on = Ongoing {
                        scope,
                        started: report.start,
                        prior_duration: acc,
                        segment_start: inc.bin_start,
                        oscillations: report.oscillations + 1,
                        affected_near: report.affected_near.clone(),
                        affected_far: report.affected_far.clone(),
                        affected_keys: BTreeSet::new(),
                        watch: dense_watch.clone(),
                        dataplane_confirmed: report.dataplane_confirmed,
                        validation: report.validation,
                        evidence: report
                            .probe_evidence
                            .iter()
                            .map(|e| (evidence_key(e), *e))
                            .collect(),
                        completeness: report.probe_completeness.min(meta.completeness),
                        // The earlier segment's confirmation spoke about the
                        // earlier failure: a reopened incident must re-earn
                        // its confidence before any verdict reuse.
                        confidence: 0.0,
                        confidence_at: inc.bin_start,
                        next_probe: inc.bin_start.saturating_add(backoff.first()),
                        probe_backoff: backoff.first(),
                        probe_restored_at: None,
                        restored_streak: 0,
                        restored_first: None,
                        sources: report.sources.clone(),
                    };
                    merge_sources(&mut on.sources, &contribs);
                    on.affected_near.extend(inc.affected_near.iter().copied());
                    on.affected_far.extend(inc.affected_far.iter().copied());
                    on.affected_keys.extend(inc.affected_keys.iter().copied());
                    if on.dataplane_confirmed.is_none() {
                        on.dataplane_confirmed = meta.dataplane;
                    }
                    if on.validation == ValidationStatus::Unvalidated {
                        on.validation = meta.validation;
                    }
                    on.merge_evidence(&meta.evidence);
                    if meta.validation == ValidationStatus::Confirmed && !meta.reused {
                        on.validation = ValidationStatus::Confirmed;
                        on.confidence = 1.0;
                    }
                    self.ongoing.insert(on.scope, on);
                    continue;
                }
                // Too old: the cooled incident is final.
                self.finish_report(report);
            }
            // Opening hysteresis: a brand-new incident only opens once
            // the signal has recurred in `open_after_consecutive`
            // consecutive bins (record() is only called for bins that
            // carry signals, so "consecutive" is a bounded gap between
            // signal bins). The start backdates to the streak's first
            // bin. With the default threshold of 1 this is a no-op.
            let mut started = inc.bin_start;
            if self.config.open_after_consecutive > 1 {
                let max_gap = 2 * self.config.bin_secs;
                let (streak, first) = match self.warming.get(&inc.scope) {
                    // Same bin re-localized: no double counting.
                    Some(&(streak, last, first)) if inc.bin_start == last => (streak, first),
                    Some(&(streak, last, first))
                        if inc.bin_start > last && inc.bin_start - last <= max_gap =>
                    {
                        (streak + 1, first)
                    }
                    _ => (1, inc.bin_start),
                };
                if streak < self.config.open_after_consecutive {
                    self.warming.insert(inc.scope, (streak, inc.bin_start, first));
                    continue;
                }
                self.warming.remove(&inc.scope);
                started = first;
            }
            self.ongoing.insert(
                inc.scope,
                Ongoing {
                    scope: inc.scope,
                    started,
                    prior_duration: 0,
                    segment_start: started,
                    oscillations: 1,
                    affected_near: inc.affected_near.clone(),
                    affected_far: inc.affected_far.clone(),
                    affected_keys: inc.affected_keys.iter().copied().collect(),
                    watch: dense_watch,
                    dataplane_confirmed: meta.dataplane,
                    validation: meta.validation,
                    evidence: meta.evidence.iter().map(|e| (evidence_key(e), *e)).collect(),
                    completeness: meta.completeness,
                    confidence: if meta.validation == ValidationStatus::Confirmed && !meta.reused {
                        1.0
                    } else {
                        0.0
                    },
                    confidence_at: inc.bin_start,
                    next_probe: inc.bin_start.saturating_add(backoff.first()),
                    probe_backoff: backoff.first(),
                    probe_restored_at: None,
                    restored_streak: 0,
                    restored_first: None,
                    sources: {
                        let mut s = Vec::new();
                        merge_sources(&mut s, &contribs);
                        s
                    },
                },
            );
        }
    }

    /// Merges an auxiliary source's contribution into an already-ongoing
    /// incident of the same (or related) scope. Returns whether a live
    /// incident absorbed it — a `false` leaves the decision of whether
    /// the signal can open an incident on its own to the fusion layer.
    pub fn corroborate(&mut self, scope: OutageScope, contrib: SourceContribution) -> bool {
        let target = if self.ongoing.contains_key(&scope) {
            Some(scope)
        } else {
            self.ongoing.keys().find(|s| self.related(s, &scope)).copied()
        };
        match target {
            Some(key) => {
                let on = self.ongoing.get_mut(&key).expect("target present");
                merge_sources(&mut on.sources, &[contrib]);
                true
            }
            None => false,
        }
    }

    fn close_report(&self, on: Ongoing, end: Timestamp) -> (OutageReport, u64) {
        let seg = end.saturating_sub(on.segment_start);
        let report = OutageReport {
            scope: on.scope,
            start: on.started,
            end: Some(end),
            affected_near: on.affected_near,
            affected_far: on.affected_far,
            affected_paths: on.affected_keys.len(),
            oscillations: on.oscillations,
            dataplane_confirmed: on.dataplane_confirmed,
            validation: on.validation,
            probe_evidence: on.evidence.into_values().collect(),
            probe_completeness: on.completeness,
            state: IncidentState::Recovering,
            sources: on.sources,
        };
        (report, on.prior_duration + seg)
    }

    fn finish_report(&mut self, mut report: OutageReport) {
        report.state = IncidentState::Closed;
        self.finished.push(report);
    }

    /// Runs due restoration re-probes against ongoing incidents
    /// (exponential backoff per incident, starting at
    /// `restore_probe_initial_secs`). Every scope is probed at its own
    /// granularity — a facility epicenter directly, an IXP via its
    /// fabric, a city via any facility or fabric located there
    /// ([`kepler_probe::Epicenter`]). A first `Restored` verdict marks
    /// the incident [`IncidentState::Recovering`] and schedules a quick
    /// confirming check; a **second consecutive** `Restored` closes it
    /// with the first verdict's timestamp as the end — typically well
    /// before the BGP watch list recovers. `StillDown` resets the streak
    /// and doubles the backoff; `Inconclusive` only backs off. Returns
    /// how many incidents were closed by probes.
    pub fn probe_restorations(
        &mut self,
        now: Timestamp,
        prober: &mut dyn RestorationProber,
    ) -> usize {
        let backoff = self.backoff();
        let mut due: Vec<OutageScope> =
            self.ongoing.iter().filter(|(_, on)| now >= on.next_probe).map(|(s, _)| *s).collect();
        due.sort(); // deterministic probe order
        let mut closed = 0usize;
        for scope in due {
            let verdict = {
                let on = &self.ongoing[&scope];
                let epicenter = match scope {
                    OutageScope::Facility(f) => Epicenter::Facility(f),
                    OutageScope::Ixp(x) => Epicenter::Ixp(x),
                    OutageScope::City(c) => Epicenter::City(c),
                };
                let targets: Vec<Asn> = on.affected_far.iter().copied().collect();
                prober.check(epicenter, &targets, on.started, now).verdict
            };
            let streak_start = self.ongoing.get(&scope).and_then(|o| o.probe_restored_at);
            if verdict == RestorationVerdict::Restored {
                if let Some(first) = streak_start {
                    // Second consecutive confirmation: the outage ended
                    // when the streak began.
                    let on = self.ongoing.remove(&scope).expect("present");
                    let entry = self.close_report(on, first);
                    self.cooling.insert(scope, entry);
                    closed += 1;
                    continue;
                }
            }
            let on = self.ongoing.get_mut(&scope).expect("present");
            match verdict {
                RestorationVerdict::Restored => {
                    // Observe once, confirm quickly: the streak resets
                    // the backoff to its floor.
                    on.probe_restored_at = Some(now);
                    on.probe_backoff = backoff.first();
                    on.next_probe = now.saturating_add(on.probe_backoff);
                }
                RestorationVerdict::StillDown | RestorationVerdict::Inconclusive => {
                    // "Two consecutive Restored" is literal: an
                    // Inconclusive check (starved budget, thin baseline)
                    // also breaks the streak — otherwise a close could
                    // stamp an end time observed hours before the second
                    // Restored, erasing real downtime in between.
                    on.probe_restored_at = None;
                    on.probe_backoff = backoff.next(on.probe_backoff);
                    on.next_probe = now.saturating_add(on.probe_backoff);
                }
            }
        }
        closed
    }

    /// Checks ongoing outages for restoration at the close of a bin. The
    /// per-scope watch lists are queried in bulk (one round-trip per shard
    /// on a sharded monitor).
    pub fn check_restorations(&mut self, now: Timestamp, monitor: &mut AnyMonitor) {
        let scopes: Vec<OutageScope> = self.ongoing.keys().copied().collect();
        for scope in scopes {
            let restored = {
                let on = &self.ongoing[&scope];
                if on.watch.is_empty() {
                    false
                } else {
                    let present = monitor.crossings_present(&on.watch);
                    let returned = present.iter().filter(|&&b| b).count();
                    returned as f64 / on.watch.len() as f64 > self.config.restore_fraction
                }
            };
            if !restored {
                // A non-restored check breaks the closing streak: the
                // watch list dipped back below `restore_fraction`.
                let on = self.ongoing.get_mut(&scope).expect("present");
                on.restored_streak = 0;
                on.restored_first = None;
                continue;
            }
            {
                // Closing hysteresis: the watch list must stay restored
                // for `close_after_consecutive` checks before the close
                // fires (threshold 1 = close immediately, the paper's
                // behavior). A flapping epicenter keeps breaking the
                // streak and stays one Open↔Recovering incident.
                let on = self.ongoing.get_mut(&scope).expect("present");
                on.restored_streak += 1;
                if on.restored_first.is_none() {
                    on.restored_first = Some(now);
                }
                if on.restored_streak < self.config.close_after_consecutive {
                    continue;
                }
            }
            let on = self.ongoing.remove(&scope).expect("present");
            // The close anchors at the *first* restored check of the
            // streak — the later checks only confirmed it.
            let anchor = on.restored_first.unwrap_or(now).min(now);
            // If probes recently observed the data plane restored, the
            // outage ended then — BGP reconvergence lag is not downtime.
            // A single Restored verdict does not close on its own, but
            // the control plane crossing `restore_fraction` corroborates
            // it; the backdate is bounded to one initial-backoff window
            // (a streak older than that would already have faced — and
            // failed — its confirming re-probe, so it must be stale
            // state from a caller that skips `probe_restorations`).
            let fresh_window = self.backoff().first().saturating_add(self.config.bin_secs);
            let end = on
                .probe_restored_at
                .filter(|&t| anchor.saturating_sub(t) <= fresh_window)
                .unwrap_or(anchor)
                .min(anchor);
            let entry = self.close_report(on, end);
            self.cooling.insert(scope, entry);
        }
        // Promote cooled incidents older than the merge window to final.
        let expired: Vec<OutageScope> = self
            .cooling
            .iter()
            .filter(|(_, (r, _))| {
                r.end
                    .map(|e| now.saturating_sub(e) >= self.config.merge_window_secs)
                    .unwrap_or(true)
            })
            .map(|(s, _)| *s)
            .collect();
        for s in expired {
            let (report, _) = self.cooling.remove(&s).expect("present");
            self.finish_report(report);
        }
    }

    /// Total downtime of a scope's report, accounting for oscillations.
    pub fn downtime_of(report: &OutageReport) -> Option<u64> {
        report.duration()
    }

    /// Lifecycle states of the incidents the tracker is still holding
    /// (sorted by scope): `Open`/`Recovering` for ongoing ones,
    /// `Recovering` for restored incidents inside the oscillation window.
    pub fn live_states(&self) -> Vec<(OutageScope, IncidentState)> {
        let mut out: Vec<(OutageScope, IncidentState)> = self
            .ongoing
            .iter()
            .map(|(s, on)| (*s, on.live_state()))
            .chain(self.cooling.keys().map(|s| (*s, IncidentState::Recovering)))
            .collect();
        out.sort();
        out
    }

    /// Ends the run: ongoing outages close as ongoing (`end = None`),
    /// cooled ones become final. Leaves the tracker empty but usable for
    /// post-run inspection.
    pub fn finish(&mut self) -> Vec<OutageReport> {
        let cooled: Vec<OutageReport> =
            self.cooling.drain().map(|(_, (report, _))| report).collect();
        for report in cooled {
            self.finish_report(report);
        }
        let open: Vec<Ongoing> = self.ongoing.drain().map(|(_, on)| on).collect();
        for on in open {
            let state = on.live_state();
            self.finished.push(OutageReport {
                scope: on.scope,
                start: on.started,
                end: None,
                affected_near: on.affected_near,
                affected_far: on.affected_far,
                affected_paths: on.affected_keys.len(),
                oscillations: on.oscillations,
                dataplane_confirmed: on.dataplane_confirmed,
                validation: on.validation,
                probe_evidence: on.evidence.into_values().collect(),
                probe_completeness: on.completeness,
                state,
                sources: on.sources,
            });
        }
        self.finished.sort_by_key(|r| (r.start, r.scope));
        std::mem::take(&mut self.finished)
    }

    /// Finalized reports so far (not including ongoing/cooling).
    pub fn finished(&self) -> &[OutageReport] {
        &self.finished
    }

    /// Number of currently ongoing outages.
    pub fn ongoing_count(&self) -> usize {
        self.ongoing.len()
    }

    /// Exports the tracker's full lifecycle state in display space.
    ///
    /// Dense watch-list ids are resolved through `interner` so the image
    /// survives a process restart: a fresh interner re-mints different
    /// ids, but display keys are stable. Entries are sorted by scope, so
    /// two trackers holding the same incidents export byte-identical
    /// state regardless of hash-map iteration order — the property the
    /// serve layer's WAL/snapshot recovery tests rely on.
    pub fn export(&self, interner: &Interner) -> TrackerState {
        let mut ongoing: Vec<OngoingExport> = self
            .ongoing
            .values()
            .map(|on| OngoingExport {
                scope: on.scope,
                started: on.started,
                prior_duration: on.prior_duration,
                segment_start: on.segment_start,
                oscillations: on.oscillations,
                affected_near: on.affected_near.iter().copied().collect(),
                affected_far: on.affected_far.iter().copied().collect(),
                affected_keys: on.affected_keys.iter().copied().collect(),
                watch: on
                    .watch
                    .iter()
                    .map(|&(r, p, a)| (interner.route_key(r), interner.pop_tag(p), interner.asn(a)))
                    .collect(),
                dataplane_confirmed: on.dataplane_confirmed,
                validation: on.validation,
                evidence: on.evidence.values().copied().collect(),
                completeness: on.completeness,
                confidence: on.confidence,
                confidence_at: on.confidence_at,
                next_probe: on.next_probe,
                probe_backoff: on.probe_backoff,
                probe_restored_at: on.probe_restored_at,
                restored_streak: on.restored_streak,
                restored_first: on.restored_first,
                sources: on.sources.clone(),
            })
            .collect();
        ongoing.sort_by_key(|e| e.scope);
        let mut cooling: Vec<(OutageScope, OutageReport, u64)> =
            self.cooling.iter().map(|(s, (r, acc))| (*s, r.clone(), *acc)).collect();
        cooling.sort_by_key(|(s, ..)| *s);
        let mut warming: Vec<(OutageScope, usize, Timestamp, Timestamp)> =
            self.warming.iter().map(|(s, &(n, last, first))| (*s, n, last, first)).collect();
        warming.sort_by_key(|(s, ..)| *s);
        TrackerState { ongoing, cooling, warming, finished: self.finished.clone() }
    }

    /// Replaces the tracker's lifecycle state with an exported image,
    /// re-interning display keys into `interner` (geography and config
    /// are not part of the image — configure the tracker first). The
    /// round trip `export → import → export` is exact.
    pub fn import(&mut self, state: &TrackerState, interner: &mut Interner) {
        self.ongoing = state
            .ongoing
            .iter()
            .map(|e| {
                let on = Ongoing {
                    scope: e.scope,
                    started: e.started,
                    prior_duration: e.prior_duration,
                    segment_start: e.segment_start,
                    oscillations: e.oscillations,
                    affected_near: e.affected_near.iter().copied().collect(),
                    affected_far: e.affected_far.iter().copied().collect(),
                    affected_keys: e.affected_keys.iter().copied().collect(),
                    watch: e
                        .watch
                        .iter()
                        .map(|(k, pop, near)| {
                            (interner.route_id(k), interner.pop_id(*pop), interner.asn_id(*near))
                        })
                        .collect(),
                    dataplane_confirmed: e.dataplane_confirmed,
                    validation: e.validation,
                    evidence: e.evidence.iter().map(|h| (evidence_key(h), *h)).collect(),
                    completeness: e.completeness,
                    confidence: e.confidence,
                    confidence_at: e.confidence_at,
                    next_probe: e.next_probe,
                    probe_backoff: e.probe_backoff,
                    probe_restored_at: e.probe_restored_at,
                    restored_streak: e.restored_streak,
                    restored_first: e.restored_first,
                    sources: e.sources.clone(),
                };
                (e.scope, on)
            })
            .collect();
        self.cooling = state.cooling.iter().map(|(s, r, acc)| (*s, (r.clone(), *acc))).collect();
        self.warming =
            state.warming.iter().map(|&(s, n, last, first)| (s, (n, last, first))).collect();
        self.finished = state.finished.clone();
    }
}

/// Display-space image of one ongoing incident: everything the tracker
/// holds for it, with dense watch-list ids resolved to stable keys. Part
/// of [`TrackerState`].
#[derive(Debug, Clone, PartialEq)]
pub struct OngoingExport {
    /// Localized epicenter.
    pub scope: OutageScope,
    /// When the incident opened (first segment).
    pub started: Timestamp,
    /// Duration accumulated by earlier oscillation segments.
    pub prior_duration: u64,
    /// Start of the current segment.
    pub segment_start: Timestamp,
    /// Oscillation segments so far (1 = never closed).
    pub oscillations: usize,
    /// Near-end ASes affected (sorted).
    pub affected_near: Vec<Asn>,
    /// Far-end ASes affected (sorted).
    pub affected_far: Vec<Asn>,
    /// Affected route keys (sorted).
    pub affected_keys: Vec<RouteKey>,
    /// Restoration watch crossings, display-typed.
    pub watch: Vec<(RouteKey, kepler_docmine::LocationTag, Asn)>,
    /// Baseline data-plane confirmation, if a backend ran.
    pub dataplane_confirmed: Option<bool>,
    /// Targeted-probe verdict.
    pub validation: ValidationStatus,
    /// Accumulated judged measurement pairs (evidence-key order).
    pub evidence: Vec<HopEvidence>,
    /// Worst campaign completeness observed.
    pub completeness: f64,
    /// Probe-verdict confidence at `confidence_at`.
    pub confidence: f64,
    /// Anchor of the confidence decay clock.
    pub confidence_at: Timestamp,
    /// When the next restoration re-probe is due.
    pub next_probe: Timestamp,
    /// Current re-probe backoff delay.
    pub probe_backoff: u64,
    /// First `Restored` verdict of the current streak.
    pub probe_restored_at: Option<Timestamp>,
    /// Consecutive restored control-plane checks.
    pub restored_streak: usize,
    /// First check of the current restored streak.
    pub restored_first: Option<Timestamp>,
    /// Per-source detection contributions (tag-sorted).
    pub sources: Vec<SourceContribution>,
}

/// Exportable image of a [`Tracker`]'s full lifecycle state — ongoing
/// incidents, cooling (recently closed) segments, opening-hysteresis
/// streaks and finalized reports — in display space and deterministic
/// (scope-sorted) order. [`Tracker::export`] / [`Tracker::import`] round
/// this through a fresh process bit-identically; the `kepler-serve`
/// durable store persists exactly this image.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrackerState {
    /// Open/recovering incidents, sorted by scope.
    pub ongoing: Vec<OngoingExport>,
    /// Cooling segments: (scope, closed report, accumulated duration).
    pub cooling: Vec<(OutageScope, OutageReport, u64)>,
    /// Opening-hysteresis streaks: (scope, streak, last bin, first bin).
    pub warming: Vec<(OutageScope, usize, Timestamp, Timestamp)>,
    /// Finalized reports so far.
    pub finished: Vec<OutageReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{PopCrossing, RouteEvent};
    use crate::monitor::Monitor;
    use kepler_bgp::Prefix;
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_docmine::LocationTag;
    use kepler_probe::{PostState, RestorationReport};
    use kepler_topology::FacilityId;

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(1), addr: "10.0.0.1".parse().unwrap() },
            prefix: Prefix::v4(20, i, 0, 0, 16),
        }
    }

    fn incident(t: u64, keys: &[u8]) -> LocalizedIncident {
        LocalizedIncident {
            scope: OutageScope::Facility(FacilityId(1)),
            bin_start: t,
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6)].into(),
            affected_keys: keys.iter().map(|&i| key(i)).collect(),
            watch: keys
                .iter()
                .map(|&i| (key(i), LocationTag::Facility(FacilityId(1)), Asn(5)))
                .collect(),
        }
    }

    fn hop_evidence(vantage: u32, target: u32) -> HopEvidence {
        HopEvidence {
            vantage: Asn(vantage),
            target: Asn(target),
            facility: FacilityId(1),
            pre_hop: 2,
            post: PostState::Detoured,
        }
    }

    fn confirmed_meta(evidence: Vec<HopEvidence>) -> IncidentMeta {
        IncidentMeta {
            validation: ValidationStatus::Confirmed,
            evidence,
            ..IncidentMeta::default()
        }
    }

    /// Monitor whose `current` holds crossings for the given keys.
    fn monitor_with(interner: &mut Interner, keys_present: &[u8]) -> AnyMonitor {
        let mut m = Monitor::new(KeplerConfig::default());
        for &i in keys_present {
            let ev = interner.intern_event(&RouteEvent::Update {
                key: key(i),
                crossings: vec![PopCrossing {
                    pop: LocationTag::Facility(FacilityId(1)),
                    near: Asn(5),
                    far: Asn(6),
                }],
                hops: vec![],
            });
            m.observe(1000, &ev);
        }
        AnyMonitor::Single(m)
    }

    /// A restoration prober answering from a fixed script of verdicts.
    struct ScriptedRestoration {
        script: Vec<RestorationVerdict>,
        calls: Vec<Timestamp>,
    }

    impl ScriptedRestoration {
        fn new(script: Vec<RestorationVerdict>) -> Self {
            ScriptedRestoration { script, calls: Vec::new() }
        }
    }

    impl RestorationProber for ScriptedRestoration {
        fn check(
            &mut self,
            _epicenter: Epicenter,
            _targets: &[Asn],
            _incident_start: Timestamp,
            now: Timestamp,
        ) -> RestorationReport {
            let verdict =
                self.script.get(self.calls.len()).copied().unwrap_or(RestorationVerdict::StillDown);
            self.calls.push(now);
            RestorationReport {
                verdict,
                watched: 4,
                crossing: if verdict == RestorationVerdict::Restored { 4 } else { 0 },
                probes_sent: 8,
                rate_limited: 0,
            }
        }
    }

    #[test]
    fn open_then_restore() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(&[incident(1000, &[0, 1, 2, 3])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Open)]
        );
        // 2 of 4 back: exactly 50%, not >50% — still ongoing.
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 1);
        // 3 of 4 back: restored.
        t.check_restorations(3000, &mut monitor_with(&mut interner, &[0, 1, 2]));
        assert_eq!(t.ongoing_count(), 0);
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Recovering)]
        );
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].start, 1000);
        assert_eq!(reports[0].end, Some(3000));
        assert_eq!(reports[0].oscillations, 1);
        assert_eq!(reports[0].state, IncidentState::Closed);
    }

    #[test]
    fn oscillations_merge_within_window() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(&[incident(1000, &[0, 1, 2, 3])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        assert_eq!(t.ongoing_count(), 0);
        // Re-fails 1h later (< 12h window): same incident.
        t.record(&[incident(2000 + 3600, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        t.check_restorations(2000 + 7200, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        let reports = t.finish();
        assert_eq!(reports.len(), 1, "one merged incident");
        assert_eq!(reports[0].oscillations, 2);
        assert_eq!(reports[0].start, 1000);
    }

    #[test]
    fn separate_outages_beyond_window() {
        let cfg = KeplerConfig::default();
        let w = cfg.merge_window_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(cfg);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        // Second outage far beyond the merge window.
        t.record(&[incident(2000 + w + 100, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000 + w + 200, &mut monitor_with(&mut interner, &[0, 1]));
        let reports = t.finish();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.oscillations == 1));
    }

    #[test]
    fn unrestored_outage_finishes_open() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(
            &[incident(1000, &[0, 1])],
            &[IncidentMeta {
                dataplane: Some(true),
                validation: ValidationStatus::Confirmed,
                ..IncidentMeta::default()
            }],
            &mut interner,
        );
        t.check_restorations(5000, &mut monitor_with(&mut interner, &[]));
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].end, None);
        assert_eq!(reports[0].dataplane_confirmed, Some(true));
        assert_eq!(reports[0].state, IncidentState::Open);
    }

    #[test]
    fn evidence_accumulates_and_dedupes_across_bins() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(
            &[incident(1000, &[0, 1])],
            &[confirmed_meta(vec![hop_evidence(900, 20), hop_evidence(901, 21)])],
            &mut interner,
        );
        // A later bin re-measures pair (900, 20) — now StillCrossing — and
        // adds a new pair: the ledger keeps 3 entries, fresh wins.
        let remeasured =
            HopEvidence { post: PostState::StillCrossing { hop: 1 }, ..hop_evidence(900, 20) };
        t.record(
            &[incident(1060, &[2])],
            &[confirmed_meta(vec![remeasured, hop_evidence(902, 22)])],
            &mut interner,
        );
        assert_eq!(t.ongoing_count(), 1);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].probe_evidence.len(), 3, "{:?}", reports[0].probe_evidence);
        let pair = reports[0]
            .probe_evidence
            .iter()
            .find(|e| e.vantage == Asn(900) && e.target == Asn(20))
            .expect("accumulated pair");
        assert_eq!(pair.post, PostState::StillCrossing { hop: 1 }, "fresh measurement wins");
    }

    #[test]
    fn accumulated_confirmation_reuses_then_decays() {
        let config = KeplerConfig::default();
        let half_life = config.evidence_half_life_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(
            &[incident(1000, &[0, 1])],
            &[confirmed_meta(vec![hop_evidence(900, 20)])],
            &mut interner,
        );
        let candidates = [FacilityId(1), FacilityId(2)];
        // Fresh: reusable, and carries the ledger's evidence.
        let (fac, ev) = t.accumulated_confirmation(&candidates, 1000).expect("fresh");
        assert_eq!(fac, FacilityId(1));
        assert_eq!(ev.len(), 1);
        // Just under one half-life: still reusable (>= threshold 0.5).
        assert!(t.accumulated_confirmation(&candidates, 1000 + half_life - 60).is_some());
        // Past one half-life: decayed below the reuse threshold.
        assert!(t.accumulated_confirmation(&candidates, 1000 + half_life + 60).is_none());
        // Wrong candidates never match.
        assert!(t.accumulated_confirmation(&[FacilityId(7)], 1000).is_none());
        // An unconfirmed incident is never reusable.
        let mut t2 = Tracker::new(KeplerConfig::default());
        t2.record(&[incident(1000, &[0])], &[IncidentMeta::default()], &mut interner);
        assert!(t2.accumulated_confirmation(&candidates, 1000).is_none());
    }

    #[test]
    fn fresh_confirmation_refreshes_decayed_confidence() {
        let config = KeplerConfig::default();
        let half_life = config.evidence_half_life_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(
            &[incident(1000, &[0])],
            &[confirmed_meta(vec![hop_evidence(900, 20)])],
            &mut interner,
        );
        let late = 1000 + 2 * half_life;
        assert!(t.accumulated_confirmation(&[FacilityId(1)], late).is_none(), "decayed");
        // A new probe-confirmed bin re-anchors the confidence clock.
        t.record(
            &[incident(late, &[1])],
            &[confirmed_meta(vec![hop_evidence(901, 21)])],
            &mut interner,
        );
        let (_, ev) = t.accumulated_confirmation(&[FacilityId(1)], late).expect("refreshed");
        assert_eq!(ev.len(), 2, "ledger kept both bins' pairs");
    }

    #[test]
    fn reused_confirmations_do_not_refresh_the_decay_clock() {
        let config = KeplerConfig::default();
        let half_life = config.evidence_half_life_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(
            &[incident(1000, &[0])],
            &[confirmed_meta(vec![hop_evidence(900, 20)])],
            &mut interner,
        );
        // Recurring deviations settled *by reuse* keep arriving well
        // inside the half-life — they must not re-anchor the clock.
        let step = half_life / 3;
        for k in 1..=2u64 {
            let now = 1000 + k * step;
            let (fac, ev) =
                t.accumulated_confirmation(&[FacilityId(1)], now).expect("still reusable");
            assert_eq!(fac, FacilityId(1));
            t.record(
                &[incident(now, &[k as u8])],
                &[IncidentMeta {
                    validation: ValidationStatus::Confirmed,
                    evidence: ev,
                    reused: true,
                    ..IncidentMeta::default()
                }],
                &mut interner,
            );
        }
        // Measured once at t=1000; two half-lives later the verdict has
        // expired despite the reuses in between.
        assert!(
            t.accumulated_confirmation(&[FacilityId(1)], 1000 + 2 * half_life + 60).is_none(),
            "reuse must not keep stale evidence alive forever"
        );
    }

    #[test]
    fn accumulated_confirmation_breaks_ties_by_candidate_order() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        // Two distinct cities so the incidents stay separate (related()
        // merges same-city facility scopes).
        t.set_geography(&{
            let mut colo = ColocationMap::new();
            for (id, city) in [(0u32, 0u32), (1, 1), (2, 2)] {
                colo.add_facility(kepler_topology::entities::Facility {
                    id: FacilityId(id),
                    name: format!("F{id}"),
                    address: String::new(),
                    postcode: format!("P{id}"),
                    country: "GB".into(),
                    city: kepler_topology::CityId(city),
                    continent: kepler_topology::Continent::Europe,
                    point: kepler_topology::GeoPoint::new(51.5, 0.0),
                    operator: "Op".into(),
                });
            }
            colo
        });
        let mut inc2 = incident(1000, &[2, 3]);
        inc2.scope = OutageScope::Facility(FacilityId(2));
        t.record(
            &[incident(1000, &[0, 1]), inc2],
            &[
                confirmed_meta(vec![hop_evidence(900, 20)]),
                confirmed_meta(vec![hop_evidence(901, 21)]),
            ],
            &mut interner,
        );
        // Both candidates carry confidence 1.0: the tie resolves to the
        // *first* candidate (best passive score), deterministically.
        let (fac, _) =
            t.accumulated_confirmation(&[FacilityId(2), FacilityId(1)], 1000).expect("hit");
        assert_eq!(fac, FacilityId(2));
        let (fac, _) =
            t.accumulated_confirmation(&[FacilityId(1), FacilityId(2)], 1000).expect("hit");
        assert_eq!(fac, FacilityId(1));
    }

    #[test]
    fn probe_restoration_closes_after_two_confirms() {
        let config = KeplerConfig::default();
        let first_delay = config.restore_probe_initial_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![
            RestorationVerdict::Restored,
            RestorationVerdict::Restored,
        ]);
        // Before the first backoff elapses nothing is probed.
        assert_eq!(t.probe_restorations(1000 + first_delay - 1, &mut prober), 0);
        assert!(prober.calls.is_empty());
        // First due check: Restored — marks Recovering, does not close.
        let t1 = 1000 + first_delay;
        assert_eq!(t.probe_restorations(t1, &mut prober), 0);
        assert_eq!(prober.calls, vec![t1]);
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Recovering)]
        );
        // Confirming check closes with the *first* verdict's timestamp.
        let t2 = t1 + first_delay;
        assert_eq!(t.probe_restorations(t2, &mut prober), 1);
        assert_eq!(t.ongoing_count(), 0);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].end, Some(t1), "closed at the first Restored observation");
    }

    #[test]
    fn still_down_verdicts_never_close_and_back_off_exponentially() {
        let config = KeplerConfig::default();
        let initial = config.restore_probe_initial_secs;
        let max = config.restore_probe_max_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![]); // always StillDown
                                                           // Sweep a day of wall clock in 1-minute steps: the incident must
                                                           // stay open and the probe cadence must follow 2x backoff.
        for now in (1000..1000 + 86_400).step_by(60) {
            assert_eq!(t.probe_restorations(now, &mut prober), 0);
        }
        assert_eq!(t.ongoing_count(), 1, "a still-down facility is never closed");
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Open)]
        );
        // Gaps between checks: initial, 2x, 4x ... capped at max.
        let gaps: Vec<u64> = prober.calls.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.len() >= 4, "{gaps:?}");
        let mut expect = initial;
        for g in &gaps {
            expect = (expect * 2).min(max);
            // Checks run on the next 60 s sweep tick at/after the due time.
            assert!(*g >= expect && *g < expect + 60, "gap {g} vs backoff {expect}: {gaps:?}");
        }
    }

    #[test]
    fn restored_streak_is_reset_by_still_down() {
        let config = KeplerConfig::default();
        let initial = config.restore_probe_initial_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        // Restored, then StillDown (a transient flap), then the real
        // restoration: the close time must come from the *second* streak.
        let mut prober = ScriptedRestoration::new(vec![
            RestorationVerdict::Restored,
            RestorationVerdict::StillDown,
            RestorationVerdict::Inconclusive,
            RestorationVerdict::Restored,
            RestorationVerdict::Restored,
        ]);
        let mut closed = 0;
        let mut now = 1000;
        while closed == 0 && now < 1000 + 86_400 {
            now += 60;
            closed = t.probe_restorations(now, &mut prober);
        }
        assert_eq!(closed, 1);
        assert_eq!(prober.calls.len(), 5);
        let reports = t.finish();
        // End = the 4th call (first Restored of the surviving streak).
        assert_eq!(reports[0].end, Some(prober.calls[3]));
        assert!(prober.calls[3] > prober.calls[0] + initial);
    }

    #[test]
    fn fresh_probe_verdicts_backdate_bgp_closes_but_stale_ones_do_not() {
        let config = KeplerConfig::default();
        let first = config.restore_probe_initial_secs;
        let mut interner = Interner::new();
        // Fresh: BGP crossing restore_fraction right after a Restored
        // verdict corroborates it — the close backdates to the verdict.
        let mut t = Tracker::new(config.clone());
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![RestorationVerdict::Restored]);
        let t1 = 1000 + first;
        assert_eq!(t.probe_restorations(t1, &mut prober), 0);
        t.check_restorations(t1 + 60, &mut monitor_with(&mut interner, &[0, 1]));
        let reports = t.finish();
        assert_eq!(reports[0].end, Some(t1), "corroborated verdict stamps the earlier end");
        // Stale: a single unconfirmed verdict whose confirming check
        // never ran must not backdate a much later BGP close.
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![RestorationVerdict::Restored]);
        assert_eq!(t.probe_restorations(t1, &mut prober), 0);
        let late = t1 + 10_000;
        t.check_restorations(late, &mut monitor_with(&mut interner, &[0, 1]));
        let reports = t.finish();
        assert_eq!(reports[0].end, Some(late), "stale streaks cannot erase downtime");
    }

    #[test]
    fn new_signals_reset_a_restoration_streak() {
        let config = KeplerConfig::default();
        let first_delay = config.restore_probe_initial_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(config);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![
            RestorationVerdict::Restored,
            RestorationVerdict::Restored,
        ]);
        let t1 = 1000 + first_delay;
        assert_eq!(t.probe_restorations(t1, &mut prober), 0);
        // Fresh deviation signals arrive before the confirming check: the
        // epicenter is clearly not stable — the streak must not survive.
        t.record(&[incident(t1 + 30, &[2, 3])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.probe_restorations(t1 + first_delay, &mut prober), 0, "streak was reset");
        assert_eq!(t.ongoing_count(), 1);
    }

    #[test]
    fn ixp_scoped_incidents_are_probe_checked_and_closed() {
        use kepler_topology::IxpId;
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        let inc = LocalizedIncident {
            scope: OutageScope::Ixp(IxpId(3)),
            bin_start: 1000,
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6)].into(),
            affected_keys: vec![key(0)],
            watch: vec![(key(0), LocationTag::Ixp(IxpId(3)), Asn(5))],
        };
        t.record(&[inc], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![RestorationVerdict::Restored; 8]);
        let mut closed = 0;
        for now in (1000..30_000).step_by(300) {
            closed += t.probe_restorations(now, &mut prober);
        }
        // Non-facility epicenters also close on probe evidence: two
        // consecutive Restored verdicts end the IXP incident.
        assert!(!prober.calls.is_empty(), "IXP epicenters are re-probed too");
        assert_eq!(closed, 1);
        assert_eq!(t.ongoing_count(), 0);
    }

    #[test]
    fn probe_schedule_survives_timestamp_extremes() {
        // A multi-year replay jumping to u64::MAX must not overflow the
        // re-probe schedule arithmetic.
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(&[incident(u64::MAX - 10, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        let mut prober = ScriptedRestoration::new(vec![]); // always StillDown
        t.probe_restorations(u64::MAX, &mut prober);
        t.probe_restorations(u64::MAX, &mut prober);
        t.check_restorations(u64::MAX, &mut monitor_with(&mut interner, &[]));
        assert_eq!(t.ongoing_count(), 1, "incident survives without panicking");
    }

    #[test]
    fn closing_hysteresis_holds_until_the_streak_and_backdates_the_close() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(1, 3));
        t.record(&[incident(1000, &[0, 1, 2, 3])], &[IncidentMeta::default()], &mut interner);
        // First two restored checks: Recovering, not closed.
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1, 2]));
        assert_eq!(t.ongoing_count(), 1);
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Recovering)]
        );
        t.check_restorations(2060, &mut monitor_with(&mut interner, &[0, 1, 2]));
        assert_eq!(t.ongoing_count(), 1);
        // Third consecutive restored check closes, backdated to the
        // streak's first check.
        t.check_restorations(2120, &mut monitor_with(&mut interner, &[0, 1, 2]));
        assert_eq!(t.ongoing_count(), 0);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].end, Some(2000), "close anchors at the streak's first check");
    }

    #[test]
    fn closing_hysteresis_exactly_at_threshold() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(1, 2));
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        // One restored check: one short of the threshold.
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 1, "streak of 1 < threshold 2 must not close");
        // Exactly at the threshold: closes.
        t.check_restorations(2060, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 0, "streak of 2 == threshold 2 closes");
        assert_eq!(t.finish()[0].end, Some(2000));
    }

    #[test]
    fn a_dip_resets_the_closing_streak() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(1, 2));
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        // The watch list dips below restore_fraction: streak resets.
        t.check_restorations(2060, &mut monitor_with(&mut interner, &[]));
        assert_eq!(
            t.live_states(),
            vec![(OutageScope::Facility(FacilityId(1)), IncidentState::Open)],
            "a broken streak is Open again, not Recovering"
        );
        t.check_restorations(2120, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 1, "post-dip streak restarts at 1");
        t.check_restorations(2180, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 0);
        assert_eq!(t.finish()[0].end, Some(2120), "close anchors after the dip");
    }

    #[test]
    fn new_signals_reset_the_closing_streak() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(1, 2));
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        // Fresh deviation signals between restored checks: the epicenter
        // is flapping, the streak must not survive.
        t.record(&[incident(2030, &[2, 3])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2060, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        assert_eq!(t.ongoing_count(), 1, "streak restarted after new signals");
        t.check_restorations(2120, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        assert_eq!(t.ongoing_count(), 0);
        assert_eq!(t.finish()[0].end, Some(2060));
    }

    #[test]
    fn opening_hysteresis_defers_then_backdates_the_start() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(3, 1));
        // Two consecutive signal bins: one short of the threshold — no
        // incident yet.
        t.record(&[incident(1000, &[0])], &[IncidentMeta::default()], &mut interner);
        t.record(&[incident(1060, &[1])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 0, "below the opening threshold");
        assert!(t.live_states().is_empty());
        // Exactly at the threshold: opens, start backdated to the first
        // bin of the streak.
        t.record(&[incident(1120, &[2])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].start, 1000, "start backdates to the streak's first bin");
    }

    #[test]
    fn opening_hysteresis_gap_resets_the_streak() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(2, 1));
        t.record(&[incident(1000, &[0])], &[IncidentMeta::default()], &mut interner);
        // Next signal bin arrives beyond the 2-bin consecutiveness gap:
        // the streak restarts instead of opening.
        t.record(&[incident(1300, &[1])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 0, "non-consecutive bins do not accumulate");
        // A genuinely consecutive follow-up opens, backdated to 1300.
        t.record(&[incident(1360, &[2])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        assert_eq!(t.finish()[0].start, 1300);
    }

    #[test]
    fn single_bin_flap_never_opens_under_opening_hysteresis() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(2, 1));
        // Isolated single-bin blips, each far from the next: none opens.
        for k in 0..5u64 {
            t.record(
                &[incident(1000 + k * 1000, &[k as u8])],
                &[IncidentMeta::default()],
                &mut interner,
            );
        }
        assert_eq!(t.ongoing_count(), 0);
        assert!(t.finish().is_empty(), "no incident, no report");
    }

    #[test]
    fn completeness_is_minimized_across_bins() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(
            &[incident(1000, &[0, 1])],
            &[IncidentMeta { completeness: 0.75, ..IncidentMeta::default() }],
            &mut interner,
        );
        // A later, more degraded bin lowers the floor; a later clean bin
        // does not raise it back.
        t.record(
            &[incident(1060, &[2])],
            &[IncidentMeta { completeness: 0.5, ..IncidentMeta::default() }],
            &mut interner,
        );
        t.record(&[incident(1120, &[3])], &[IncidentMeta::default()], &mut interner);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].probe_completeness, 0.5);
    }

    #[test]
    fn export_import_round_trips_through_a_fresh_interner() {
        // Build a tracker holding every kind of state at once: an open
        // incident with evidence, a cooling segment, a warming streak and
        // a finished report.
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default().with_hysteresis(1, 1));
        t.record(
            &[incident(1000, &[0, 1])],
            &[IncidentMeta {
                validation: ValidationStatus::Confirmed,
                evidence: vec![hop_evidence(900, 6)],
                completeness: 0.9,
                ..IncidentMeta::default()
            }],
            &mut interner,
        );
        let mut other = incident(2000, &[2]);
        other.scope = OutageScope::Facility(FacilityId(7));
        t.record(&[other], &[IncidentMeta::default()], &mut interner);
        t.finish_report(OutageReport {
            scope: OutageScope::Facility(FacilityId(9)),
            start: 10,
            end: Some(20),
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6)].into(),
            affected_paths: 1,
            oscillations: 1,
            dataplane_confirmed: Some(true),
            validation: ValidationStatus::Confirmed,
            probe_evidence: vec![hop_evidence(900, 6)],
            probe_completeness: 1.0,
            state: IncidentState::Closed,
            sources: vec![SourceContribution {
                kind: SignalKind::Deviation,
                confidence: 1.0,
                first_bin: 10,
            }],
        });
        let exported = t.export(&interner);
        assert_eq!(exported.ongoing.len(), 2);
        assert_eq!(exported.finished.len(), 1);

        // Import into a fresh tracker + fresh interner: the interner
        // mints different dense ids, but the display-space export must be
        // bit-identical — and the imported tracker must keep working
        // (evidence reuse reads the re-interned state).
        let mut interner2 = Interner::new();
        // Skew the id space so dense ids cannot accidentally line up.
        interner2.asn_id(Asn(424242));
        let mut t2 = Tracker::new(KeplerConfig::default().with_hysteresis(1, 1));
        t2.import(&exported, &mut interner2);
        assert_eq!(t2.export(&interner2), exported);
        assert_eq!(t2.ongoing_count(), t.ongoing_count());
        assert_eq!(t2.live_states(), t.live_states());
        assert_eq!(
            t2.accumulated_confirmation(&[FacilityId(1)], 1100).map(|(f, _)| f),
            Some(FacilityId(1)),
            "imported evidence ledger stays usable"
        );
    }
}

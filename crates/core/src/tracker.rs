//! Outage lifecycle tracking (paper §4.3–4.4).
//!
//! An incident opens when the investigator localizes it; it closes when
//! more than `restore_fraction` of its affected paths carry their original
//! (PoP, near-end) tag again. Two outages of the same scope separated by
//! less than `merge_window_secs` are one oscillating incident whose
//! downtime is the sum of the individual outage durations.

use crate::config::KeplerConfig;
use crate::events::{OutageReport, OutageScope, RouteKey, ValidationStatus};
use crate::intern::{AsnId, Interner, PopId, RouteId};
use crate::investigate::LocalizedIncident;
use crate::shard::AnyMonitor;
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_probe::HopEvidence;
use kepler_topology::{CityId, ColocationMap};
use std::collections::{BTreeSet, HashMap};

/// Validation metadata recorded alongside one localized incident: the
/// passive data-plane confirmation (paper §4.4 baseline re-probe) and the
/// targeted-probe verdict with its hop-level evidence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentMeta {
    /// Baseline data-plane confirmation, when a backend was attached.
    pub dataplane: Option<bool>,
    /// Targeted-probe verdict for the incident's epicenter.
    pub validation: ValidationStatus,
    /// Hop-level evidence behind the verdict.
    pub evidence: Vec<HopEvidence>,
}

#[derive(Debug)]
struct Ongoing {
    scope: OutageScope,
    started: Timestamp,
    /// Duration accumulated by earlier oscillation segments.
    prior_duration: u64,
    segment_start: Timestamp,
    oscillations: usize,
    affected_near: BTreeSet<Asn>,
    affected_far: BTreeSet<Asn>,
    affected_keys: BTreeSet<RouteKey>,
    /// Crossings to watch for restoration, in dense-id space — restoration
    /// checks run every bin, so they must not touch fat keys.
    watch: Vec<(RouteId, PopId, AsnId)>,
    dataplane_confirmed: Option<bool>,
    validation: ValidationStatus,
    probe_evidence: Vec<HopEvidence>,
}

/// Tracks ongoing and closed outages.
#[derive(Debug, Default)]
pub struct Tracker {
    config: KeplerConfig,
    ongoing: HashMap<OutageScope, Ongoing>,
    /// Closed segments waiting for possible oscillation-reopen: scope →
    /// (closed report, end time).
    cooling: HashMap<OutageScope, (OutageReport, u64 /* accumulated duration */)>,
    finished: Vec<OutageReport>,
    /// Facility → city, for cross-scope incident reconciliation.
    fac_city: HashMap<u32, CityId>,
    /// IXP → city.
    ixp_city: HashMap<u32, CityId>,
}

impl Tracker {
    /// A tracker with the given configuration.
    pub fn new(config: KeplerConfig) -> Self {
        Tracker { config, ..Default::default() }
    }

    /// Loads facility/IXP geography so that shadows of one incident seen
    /// through different PoP tags (the facility, its IXP, its city) merge
    /// into one report instead of three.
    pub fn set_geography(&mut self, colo: &ColocationMap) {
        for f in colo.facilities() {
            self.fac_city.insert(f.id.0, f.city);
        }
        for x in colo.ixps() {
            self.ixp_city.insert(x.id.0, x.city);
        }
    }

    fn city_of(&self, scope: &OutageScope) -> Option<CityId> {
        match scope {
            OutageScope::Facility(f) => self.fac_city.get(&f.0).copied(),
            OutageScope::Ixp(x) => self.ixp_city.get(&x.0).copied(),
            OutageScope::City(c) => Some(*c),
        }
    }

    /// Whether two scopes plausibly describe the same physical incident.
    fn related(&self, a: &OutageScope, b: &OutageScope) -> bool {
        if a == b {
            return true;
        }
        match (self.city_of(a), self.city_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The scope to keep when merging two related scopes: identical scopes
    /// stay; a city-level scope corroborating a sharper one is absorbed
    /// into the sharp scope; two distinct physical scopes abstract to
    /// their city.
    fn merged_scope(&self, a: OutageScope, b: OutageScope) -> OutageScope {
        if a == b {
            return a;
        }
        match (a, b) {
            (OutageScope::City(_), sharp) => sharp,
            (sharp, OutageScope::City(_)) => sharp,
            _ => match self.city_of(&a) {
                Some(c) => OutageScope::City(c),
                None => a,
            },
        }
    }

    /// Records this bin's localized incidents. The incidents' display-typed
    /// watch crossings are interned once here; every later restoration
    /// check runs dense.
    pub fn record(
        &mut self,
        incidents: &[LocalizedIncident],
        meta: &[IncidentMeta],
        interner: &mut Interner,
    ) {
        for (inc, meta) in incidents.iter().zip(meta.iter()) {
            let dense_watch: Vec<(RouteId, PopId, AsnId)> = inc
                .watch
                .iter()
                .map(|(k, pop, near)| {
                    (interner.route_id(k), interner.pop_id(*pop), interner.asn_id(*near))
                })
                .collect();
            // Merge target among ongoing outages: exact scope first, then
            // any related scope (same city).
            let target = if self.ongoing.contains_key(&inc.scope) {
                Some(inc.scope)
            } else {
                self.ongoing.keys().find(|s| self.related(s, &inc.scope)).copied()
            };
            if let Some(key) = target {
                let mut on = self.ongoing.remove(&key).expect("target present");
                on.affected_near.extend(inc.affected_near.iter().copied());
                on.affected_far.extend(inc.affected_far.iter().copied());
                on.affected_keys.extend(inc.affected_keys.iter().copied());
                on.watch.extend(dense_watch.iter().copied());
                if on.dataplane_confirmed.is_none() {
                    on.dataplane_confirmed = meta.dataplane;
                }
                if on.validation == ValidationStatus::Unvalidated {
                    on.validation = meta.validation;
                }
                on.probe_evidence.extend(meta.evidence.iter().copied());
                on.scope = self.merged_scope(key, inc.scope);
                // A previously separate ongoing entry under the merged
                // scope is the same incident too.
                if let Some(other) = self.ongoing.remove(&on.scope) {
                    on.started = on.started.min(other.started);
                    on.segment_start = on.segment_start.min(other.segment_start);
                    on.prior_duration = on.prior_duration.max(other.prior_duration);
                    on.oscillations = on.oscillations.max(other.oscillations);
                    on.affected_near.extend(other.affected_near);
                    on.affected_far.extend(other.affected_far);
                    on.affected_keys.extend(other.affected_keys);
                    on.watch.extend(other.watch);
                    if on.validation == ValidationStatus::Unvalidated {
                        on.validation = other.validation;
                    }
                    on.probe_evidence.extend(other.probe_evidence);
                }
                self.ongoing.insert(on.scope, on);
                continue;
            }
            // Oscillation? Reopen a recently closed incident of a related
            // scope.
            let ckey = if self.cooling.contains_key(&inc.scope) {
                Some(inc.scope)
            } else {
                self.cooling.keys().find(|s| self.related(s, &inc.scope)).copied()
            };
            if let Some(key) = ckey {
                let (report, acc) = self.cooling.remove(&key).expect("cooling present");
                let gap_ok = report
                    .end
                    .map(|e| inc.bin_start.saturating_sub(e) < self.config.merge_window_secs)
                    .unwrap_or(false);
                if gap_ok {
                    let scope = self.merged_scope(key, inc.scope);
                    let mut on = Ongoing {
                        scope,
                        started: report.start,
                        prior_duration: acc,
                        segment_start: inc.bin_start,
                        oscillations: report.oscillations + 1,
                        affected_near: report.affected_near.clone(),
                        affected_far: report.affected_far.clone(),
                        affected_keys: BTreeSet::new(),
                        watch: dense_watch.clone(),
                        dataplane_confirmed: report.dataplane_confirmed,
                        validation: report.validation,
                        probe_evidence: report.probe_evidence.clone(),
                    };
                    on.affected_near.extend(inc.affected_near.iter().copied());
                    on.affected_far.extend(inc.affected_far.iter().copied());
                    on.affected_keys.extend(inc.affected_keys.iter().copied());
                    if on.dataplane_confirmed.is_none() {
                        on.dataplane_confirmed = meta.dataplane;
                    }
                    if on.validation == ValidationStatus::Unvalidated {
                        on.validation = meta.validation;
                    }
                    on.probe_evidence.extend(meta.evidence.iter().copied());
                    self.ongoing.insert(on.scope, on);
                    continue;
                }
                // Too old: the cooled incident is final.
                self.finished.push(report);
            }
            self.ongoing.insert(
                inc.scope,
                Ongoing {
                    scope: inc.scope,
                    started: inc.bin_start,
                    prior_duration: 0,
                    segment_start: inc.bin_start,
                    oscillations: 1,
                    affected_near: inc.affected_near.clone(),
                    affected_far: inc.affected_far.clone(),
                    affected_keys: inc.affected_keys.iter().copied().collect(),
                    watch: dense_watch,
                    dataplane_confirmed: meta.dataplane,
                    validation: meta.validation,
                    probe_evidence: meta.evidence.clone(),
                },
            );
        }
    }

    /// Checks ongoing outages for restoration at the close of a bin. The
    /// per-scope watch lists are queried in bulk (one round-trip per shard
    /// on a sharded monitor).
    pub fn check_restorations(&mut self, now: Timestamp, monitor: &mut AnyMonitor) {
        let scopes: Vec<OutageScope> = self.ongoing.keys().copied().collect();
        for scope in scopes {
            let restored = {
                let on = &self.ongoing[&scope];
                if on.watch.is_empty() {
                    false
                } else {
                    let present = monitor.crossings_present(&on.watch);
                    let returned = present.iter().filter(|&&b| b).count();
                    returned as f64 / on.watch.len() as f64 > self.config.restore_fraction
                }
            };
            if !restored {
                continue;
            }
            let on = self.ongoing.remove(&scope).expect("present");
            let seg = now.saturating_sub(on.segment_start);
            let report = OutageReport {
                scope: on.scope,
                start: on.started,
                end: Some(now),
                affected_near: on.affected_near,
                affected_far: on.affected_far,
                affected_paths: on.affected_keys.len(),
                oscillations: on.oscillations,
                dataplane_confirmed: on.dataplane_confirmed,
                validation: on.validation,
                probe_evidence: on.probe_evidence,
            };
            self.cooling.insert(scope, (report, on.prior_duration + seg));
        }
        // Promote cooled incidents older than the merge window to final.
        let expired: Vec<OutageScope> = self
            .cooling
            .iter()
            .filter(|(_, (r, _))| {
                r.end
                    .map(|e| now.saturating_sub(e) >= self.config.merge_window_secs)
                    .unwrap_or(true)
            })
            .map(|(s, _)| *s)
            .collect();
        for s in expired {
            let (report, _) = self.cooling.remove(&s).expect("present");
            self.finished.push(report);
        }
    }

    /// Total downtime of a scope's report, accounting for oscillations.
    pub fn downtime_of(report: &OutageReport) -> Option<u64> {
        report.duration()
    }

    /// Ends the run: ongoing outages close as ongoing (`end = None`),
    /// cooled ones become final.
    pub fn finish(mut self) -> Vec<OutageReport> {
        for (_, (report, _)) in self.cooling.drain() {
            self.finished.push(report);
        }
        for (_, on) in self.ongoing.drain() {
            self.finished.push(OutageReport {
                scope: on.scope,
                start: on.started,
                end: None,
                affected_near: on.affected_near,
                affected_far: on.affected_far,
                affected_paths: on.affected_keys.len(),
                oscillations: on.oscillations,
                dataplane_confirmed: on.dataplane_confirmed,
                validation: on.validation,
                probe_evidence: on.probe_evidence,
            });
        }
        self.finished.sort_by_key(|r| (r.start, r.scope));
        self.finished
    }

    /// Finalized reports so far (not including ongoing/cooling).
    pub fn finished(&self) -> &[OutageReport] {
        &self.finished
    }

    /// Number of currently ongoing outages.
    pub fn ongoing_count(&self) -> usize {
        self.ongoing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{PopCrossing, RouteEvent};
    use crate::monitor::Monitor;
    use kepler_bgp::Prefix;
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_docmine::LocationTag;
    use kepler_topology::FacilityId;

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(1), addr: "10.0.0.1".parse().unwrap() },
            prefix: Prefix::v4(20, i, 0, 0, 16),
        }
    }

    fn incident(t: u64, keys: &[u8]) -> LocalizedIncident {
        LocalizedIncident {
            scope: OutageScope::Facility(FacilityId(1)),
            bin_start: t,
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6)].into(),
            affected_keys: keys.iter().map(|&i| key(i)).collect(),
            watch: keys
                .iter()
                .map(|&i| (key(i), LocationTag::Facility(FacilityId(1)), Asn(5)))
                .collect(),
        }
    }

    /// Monitor whose `current` holds crossings for the given keys.
    fn monitor_with(interner: &mut Interner, keys_present: &[u8]) -> AnyMonitor {
        let mut m = Monitor::new(KeplerConfig::default());
        for &i in keys_present {
            let ev = interner.intern_event(&RouteEvent::Update {
                key: key(i),
                crossings: vec![PopCrossing {
                    pop: LocationTag::Facility(FacilityId(1)),
                    near: Asn(5),
                    far: Asn(6),
                }],
                hops: vec![],
            });
            m.observe(1000, &ev);
        }
        AnyMonitor::Single(m)
    }

    #[test]
    fn open_then_restore() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(&[incident(1000, &[0, 1, 2, 3])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        // 2 of 4 back: exactly 50%, not >50% — still ongoing.
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        assert_eq!(t.ongoing_count(), 1);
        // 3 of 4 back: restored.
        t.check_restorations(3000, &mut monitor_with(&mut interner, &[0, 1, 2]));
        assert_eq!(t.ongoing_count(), 0);
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].start, 1000);
        assert_eq!(reports[0].end, Some(3000));
        assert_eq!(reports[0].oscillations, 1);
    }

    #[test]
    fn oscillations_merge_within_window() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(&[incident(1000, &[0, 1, 2, 3])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        assert_eq!(t.ongoing_count(), 0);
        // Re-fails 1h later (< 12h window): same incident.
        t.record(&[incident(2000 + 3600, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        assert_eq!(t.ongoing_count(), 1);
        t.check_restorations(2000 + 7200, &mut monitor_with(&mut interner, &[0, 1, 2, 3]));
        let reports = t.finish();
        assert_eq!(reports.len(), 1, "one merged incident");
        assert_eq!(reports[0].oscillations, 2);
        assert_eq!(reports[0].start, 1000);
    }

    #[test]
    fn separate_outages_beyond_window() {
        let cfg = KeplerConfig::default();
        let w = cfg.merge_window_secs;
        let mut interner = Interner::new();
        let mut t = Tracker::new(cfg);
        t.record(&[incident(1000, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000, &mut monitor_with(&mut interner, &[0, 1]));
        // Second outage far beyond the merge window.
        t.record(&[incident(2000 + w + 100, &[0, 1])], &[IncidentMeta::default()], &mut interner);
        t.check_restorations(2000 + w + 200, &mut monitor_with(&mut interner, &[0, 1]));
        let reports = t.finish();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.oscillations == 1));
    }

    #[test]
    fn unrestored_outage_finishes_open() {
        let mut interner = Interner::new();
        let mut t = Tracker::new(KeplerConfig::default());
        t.record(
            &[incident(1000, &[0, 1])],
            &[IncidentMeta {
                dataplane: Some(true),
                validation: ValidationStatus::Confirmed,
                evidence: Vec::new(),
            }],
            &mut interner,
        );
        t.check_restorations(5000, &mut monitor_with(&mut interner, &[]));
        let reports = t.finish();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].end, None);
        assert_eq!(reports[0].dataplane_confirmed, Some(true));
    }
}

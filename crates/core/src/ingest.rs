//! Staged parallel ingest: sharded decode → intern → remap → merge.
//!
//! PR 1 parallelized the monitor, but record decode, input mapping and
//! interning stayed serial and dominate end-to-end throughput (the
//! `pipeline_1m` breakdown: ~60% of per-record cost is the decode+intern
//! stage). This module converts that stage into the same dense/sharded
//! architecture as the monitor:
//!
//! * **Dispatch.** Records are routed to worker threads by collector
//!   session (`kepler_bgpstream::batch`): every `(collector, peer)` feed
//!   is pinned to one worker, so each route's event order (a route is a
//!   `(collector, peer, prefix)` triple) is preserved inside one worker
//!   and the per-session gap tracker stays worker-local.
//! * **Decode.** Each worker owns an [`InputModule`] and a **local
//!   [`Interner`]** and runs sanitize + community→PoP mapping + interning
//!   on whole records ([`InputModule::process_record_dense`]) — no
//!   per-prefix `BgpElem` explosion, no per-event allocations. Events
//!   leave the worker in *local* dense-id space as flat batches.
//! * **Remap.** The coordinator unifies id spaces. Along with its events,
//!   every batch carries the worker's **intern delta**: the display keys
//!   minted since the previous batch, in local-id order
//!   ([`Interner::route_keys_since`] and friends). Because local ids are
//!   dense and append-only, and global ids are minted in absorption order,
//!   long stretches of consecutive local ids map to consecutive global
//!   ids. The per-worker remap table exploits this: it is a
//!   **delta-compressed run table** (`DeltaTable` — a sorted list of
//!   `(local_start, global_start, len)` runs). Absorbing a delta appends
//!   `global_id = global_interner.intern(key)` for each new local id,
//!   extending the trailing run when the mapping stays contiguous (for
//!   route ids it always does — routes embed the collector session and
//!   never collide across workers, so one delta absorbs into exactly one
//!   run). Remapping an event is a cursor-cached run lookup, O(1) on the
//!   hot path. Identities seen by several workers (the same ASN or PoP
//!   tag crossing many collectors) collapse to one global id, which is
//!   what keeps `(PoP, near-AS)` deviation groups — and the monitor's
//!   merge — exact.
//! * **Merge.** The coordinator reassembles the *original stream order*
//!   (a per-record worker queue recorded at dispatch time) before handing
//!   events to the monitor, so the parallel pipeline is bit-identical to
//!   the serial path — property-tested in `tests/ingest_differential.rs`
//!   for 1/2/8 ingest shards. Remapped crossing lists are deduplicated
//!   through a crossing-set cache (`Arc<[DenseCrossing]>` per distinct
//!   set), so re-announcements share one allocation.
//!
//! The global [`Interner`] is owned by the caller (the
//! [`Kepler`](crate::system::Kepler) system), so display resolution at
//! report time works identically in serial and parallel modes.

use crate::fx::FxHashMap;
use crate::input::{DenseElem, InputModule, InputStats};
use crate::intern::{AsnId, DenseCrossing, DenseRouteEvent, Interner, PopId, RouteId};
use kepler_bgp::Asn;
use kepler_bgpstream::{BgpRecord, GapTracker, RecordBatcher, Timestamp};
use kepler_docmine::LocationTag;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records accumulated per worker before a batch is shipped.
const INGEST_BATCH: usize = 512;

/// In-flight record high-water mark: beyond this the coordinator flushes
/// partial batches and drains blockingly, bounding memory.
const MAX_INFLIGHT: usize = 64 * 1024;

/// One decoded element in worker-local id space.
#[derive(Debug, Clone, Copy)]
struct LocalEvent {
    /// Local route id (dense in the worker's interner).
    route: u32,
    /// Offset into the batch's flat crossing buffer, or `u32::MAX` for a
    /// withdrawal.
    start: u32,
    /// Crossings consumed from the flat buffer.
    len: u32,
}

const WITHDRAW: u32 = u32::MAX;

/// One processed batch leaving a worker.
#[derive(Debug, Default)]
struct BatchOut {
    /// Per input record, in batch order: arrival time + events produced.
    records: Vec<(Timestamp, u32)>,
    /// Flattened events of all records, in order.
    events: Vec<LocalEvent>,
    /// Flat crossing buffer the events' ranges point into (local ids).
    crossings: Vec<DenseCrossing>,
    /// Intern delta: route keys minted by this batch, in local-id order.
    new_routes: Vec<crate::events::RouteKey>,
    /// Intern delta: PoP tags minted by this batch.
    new_pops: Vec<LocationTag>,
    /// Intern delta: ASNs minted by this batch.
    new_asns: Vec<Asn>,
    /// Input statistics accumulated by this batch alone.
    stats: InputStats,
}

fn stats_delta(now: &InputStats, prev: &InputStats) -> InputStats {
    InputStats {
        elems: now.elems - prev.elems,
        located: now.located - prev.located,
        unlocated: now.unlocated - prev.unlocated,
        rejected: now.rejected - prev.rejected,
    }
}

fn add_stats(acc: &mut InputStats, d: &InputStats) {
    acc.elems += d.elems;
    acc.located += d.located;
    acc.unlocated += d.unlocated;
    acc.rejected += d.rejected;
}

fn worker_loop(
    mut input: InputModule,
    quarantine_secs: u64,
    rx: Receiver<Vec<BgpRecord>>,
    tx: Sender<BatchOut>,
) {
    let mut interner = Interner::new();
    let mut gap = GapTracker::new(quarantine_secs);
    let mut seen_routes = 0usize;
    let mut seen_pops = 0usize;
    let mut seen_asns = 0usize;
    let mut prev_stats = InputStats::default();
    while let Ok(batch) = rx.recv() {
        let mut out = BatchOut { records: Vec::with_capacity(batch.len()), ..BatchOut::default() };
        for rec in &batch {
            gap.observe(rec);
            let before = out.events.len();
            if gap.is_usable(rec.collector, rec.peer, rec.time) {
                let events = &mut out.events;
                let flat = &mut out.crossings;
                input.process_record_dense(rec, &mut interner, |elem| match elem {
                    DenseElem::Withdraw { route } => {
                        events.push(LocalEvent { route: route.0, start: WITHDRAW, len: 0 });
                    }
                    DenseElem::Update { route, crossings } => {
                        let start = u32::try_from(flat.len()).expect("crossing buffer overflow");
                        flat.extend_from_slice(crossings);
                        events.push(LocalEvent {
                            route: route.0,
                            start,
                            len: crossings.len() as u32,
                        });
                    }
                });
            }
            out.records.push((rec.time, (out.events.len() - before) as u32));
        }
        out.new_routes = interner.route_keys_since(seen_routes).to_vec();
        out.new_pops = interner.pop_tags_since(seen_pops).to_vec();
        out.new_asns = interner.asns_since(seen_asns).to_vec();
        seen_routes = interner.routes_len();
        seen_pops = interner.pops_len();
        seen_asns = interner.asns_len();
        out.stats = stats_delta(input.stats(), &prev_stats);
        prev_stats = input.stats().clone();
        if tx.send(out).is_err() {
            return;
        }
    }
}

/// One run of a [`DeltaTable`]: local ids `local_start..local_start+len`
/// map to global ids `global_start..global_start+len`.
#[derive(Debug, Clone, Copy)]
struct Run {
    local_start: u32,
    global_start: u32,
    len: u32,
}

/// Delta-compressed local→global id table.
///
/// Local ids are dense (`0, 1, 2, …` in mint order) and global ids are
/// assigned in absorption order, so the mapping is a small number of
/// arithmetic runs — ideally one per intern delta, fewer when deltas
/// chain contiguously. [`push`](Self::push) appends the mapping for the
/// next local id, merging into the trailing run when contiguous;
/// [`get`](Self::get) resolves a local id via a one-entry cursor cache
/// (hit on the hot path: events reference recently minted or clustered
/// ids) falling back to binary search over the runs.
#[derive(Debug, Default)]
struct DeltaTable {
    /// Runs sorted by `local_start`; consecutive and gap-free (run `i+1`
    /// starts where run `i` ends).
    runs: Vec<Run>,
    /// Number of local ids mapped (== next local id to be pushed).
    len: u32,
    /// Index of the run that satisfied the last lookup.
    cursor: Cell<u32>,
}

impl DeltaTable {
    /// Records that the next local id maps to `global`.
    fn push(&mut self, global: u32) {
        let local = self.len;
        self.len += 1;
        if let Some(last) = self.runs.last_mut() {
            if last.global_start + last.len == global {
                // `local` is contiguous by construction (dense ids).
                last.len += 1;
                return;
            }
        }
        self.runs.push(Run { local_start: local, global_start: global, len: 1 });
    }

    /// Resolves a local id. Panics (via debug assert / index) on ids never
    /// pushed.
    fn get(&self, local: u32) -> u32 {
        let cached = self.cursor.get() as usize;
        if let Some(run) = self.runs.get(cached) {
            if local.wrapping_sub(run.local_start) < run.len {
                return run.global_start + (local - run.local_start);
            }
        }
        debug_assert!(local < self.len, "remap of unmapped local id");
        let idx = self.runs.partition_point(|r| r.local_start <= local) - 1;
        self.cursor.set(idx as u32);
        let run = self.runs[idx];
        run.global_start + (local - run.local_start)
    }

    /// Number of runs currently held (compression diagnostics / tests).
    #[cfg(test)]
    fn runs_len(&self) -> usize {
        self.runs.len()
    }
}

/// Per-worker local→global id tables, one [`DeltaTable`] per id space.
/// Append-only, extended by each batch's intern delta.
#[derive(Debug, Default)]
struct Remap {
    routes: DeltaTable,
    pops: DeltaTable,
    asns: DeltaTable,
}

/// A received batch being consumed record by record.
#[derive(Debug)]
struct Pending {
    batch: BatchOut,
    /// Next record index within `batch.records`.
    rec: usize,
    /// Next event index within `batch.events`.
    ev: usize,
}

/// The staged parallel ingest pipeline (see the module docs).
///
/// Records are dispatched to per-collector-session decode workers and
/// merged back in **exact stream order** with per-worker ids remapped
/// into the caller's global [`Interner`] — resolved outcomes are
/// bit-identical to serial ingest (property-tested in
/// `tests/ingest_differential.rs`).
///
/// ```
/// use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
/// use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload};
/// use kepler_core::ingest::ParallelIngest;
/// use kepler_core::input::InputModule;
/// use kepler_core::intern::Interner;
/// use kepler_docmine::{CommunityDictionary, LocationTag};
/// use kepler_topology::{ColocationMap, FacilityId};
///
/// // A dictionary locating community 13030:51000 at facility 9.
/// let mut dictionary = CommunityDictionary::new();
/// dictionary.insert(Community::new(13030, 51_000), LocationTag::Facility(FacilityId(9)));
/// let template = InputModule::new(dictionary, ColocationMap::new());
///
/// let mut ingest = ParallelIngest::new(&template, 600, 2);
/// let mut interner = Interner::new();
/// let mut events = Vec::new();
/// for i in 0..16u8 {
///     let attrs = PathAttributes::with_path_and_communities(
///         AsPath::from_sequence([3356, 13030, 20940]),
///         vec![Community::new(13030, 51_000)],
///     );
///     ingest.push_owned(BgpRecord {
///         time: 1_400_000_000 + u64::from(i),
///         collector: CollectorId(u16::from(i % 2)),
///         peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
///         payload: RecordPayload::Update(BgpUpdate::announce(
///             vec![Prefix::v4(20, i, 0, 0, 16)],
///             attrs,
///         )),
///     });
///     ingest.drain_ready(&mut interner, &mut events); // non-blocking
/// }
/// ingest.finish(&mut interner, &mut events); // drain to empty
/// assert_eq!(events.len(), 16);
/// // Exact stream order survives the 2-way decode fan-out.
/// assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
/// assert_eq!(ingest.stats().located, 16, "every announcement was locatable");
/// ```
pub struct ParallelIngest {
    txs: Vec<Sender<Vec<BgpRecord>>>,
    rxs: Vec<Receiver<BatchOut>>,
    handles: Vec<JoinHandle<()>>,
    batcher: RecordBatcher,
    /// Worker index of every dispatched-but-not-yet-merged record, in
    /// original stream order — the reassembly script.
    order: VecDeque<u8>,
    /// Records shipped to each worker and not yet merged back.
    in_flight: Vec<usize>,
    pending: Vec<VecDeque<Pending>>,
    remap: Vec<Remap>,
    /// Distinct remapped crossing sets share one allocation.
    cross_cache: FxHashMap<Vec<DenseCrossing>, Arc<[DenseCrossing]>>,
    cross_scratch: Vec<DenseCrossing>,
    stats: InputStats,
}

impl ParallelIngest {
    /// Builds the pipeline with `workers` decode shards. Each worker gets
    /// a clone of `template`'s dictionary and colocation map plus its own
    /// gap tracker with the given quarantine.
    pub fn new(template: &InputModule, quarantine_secs: u64, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one ingest worker");
        // The reassembly order queue stores worker indices as u8.
        assert!(workers <= 256, "at most 256 ingest workers");
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, worker_rx) = channel::<Vec<BgpRecord>>();
            let (worker_tx, rx) = channel::<BatchOut>();
            let input = InputModule::new(template.dictionary().clone(), template.colo().clone());
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kepler-ingest-{i}"))
                    .spawn(move || worker_loop(input, quarantine_secs, worker_rx, worker_tx))
                    .expect("spawn ingest worker"),
            );
            txs.push(tx);
            rxs.push(rx);
        }
        ParallelIngest {
            txs,
            rxs,
            handles,
            batcher: RecordBatcher::new(workers, INGEST_BATCH),
            order: VecDeque::new(),
            in_flight: vec![0; workers],
            pending: (0..workers).map(|_| VecDeque::new()).collect(),
            remap: (0..workers).map(|_| Remap::default()).collect(),
            cross_cache: FxHashMap::default(),
            cross_scratch: Vec::new(),
            stats: InputStats::default(),
        }
    }

    /// Number of decode workers.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Input statistics merged from every worker, complete up to the last
    /// batch merged back (after [`finish`](Self::finish): the whole run).
    pub fn stats(&self) -> &InputStats {
        &self.stats
    }

    /// Dispatches one record to its collector session's worker.
    pub fn push(&mut self, rec: &BgpRecord) {
        self.push_owned(rec.clone());
    }

    /// [`push`](Self::push) without the defensive clone, for callers that
    /// own their records (the bench drivers and [`run`-style
    /// loops](crate::system::Kepler::run)).
    pub fn push_owned(&mut self, rec: BgpRecord) {
        let shard = self.batcher.shard_of(&rec);
        self.order.push_back(shard as u8);
        if let Some(batch) = self.batcher.push(shard, rec) {
            self.in_flight[shard] += batch.len();
            self.txs[shard].send(batch).expect("ingest worker alive");
        }
    }

    /// Appends every event whose record has completed decode to `out`, in
    /// exact stream order, remapped to global ids. Non-blocking unless the
    /// in-flight high-water mark forces backpressure.
    pub fn drain_ready(
        &mut self,
        interner: &mut Interner,
        out: &mut Vec<(Timestamp, DenseRouteEvent)>,
    ) {
        self.drain(interner, out, false);
        if self.order.len() > MAX_INFLIGHT {
            self.flush_partials();
            while self.order.len() > MAX_INFLIGHT / 2 {
                self.drain_front_blocking(interner, out);
            }
        }
    }

    /// Flushes every buffered record and drains the pipeline to empty.
    /// After this call the merged [`stats`](Self::stats) cover every
    /// pushed record. The pipeline remains usable for further pushes.
    pub fn finish(&mut self, interner: &mut Interner, out: &mut Vec<(Timestamp, DenseRouteEvent)>) {
        self.flush_partials();
        while !self.order.is_empty() {
            self.drain_front_blocking(interner, out);
        }
    }

    fn flush_partials(&mut self) {
        for shard in 0..self.txs.len() {
            if self.batcher.buffered(shard) > 0 {
                let batch = self.batcher.take(shard);
                self.in_flight[shard] += batch.len();
                self.txs[shard].send(batch).expect("ingest worker alive");
            }
        }
    }

    /// Merges ready batches and emits completed records until the next
    /// record in stream order is not decoded yet (`block == false`) or
    /// until the order queue empties (`block == true` drains exactly one
    /// front record, receiving as needed).
    fn drain(
        &mut self,
        interner: &mut Interner,
        out: &mut Vec<(Timestamp, DenseRouteEvent)>,
        block: bool,
    ) {
        while let Some(&w) = self.order.front() {
            let w = w as usize;
            if !self.ensure_front_record(w, interner, block) {
                return;
            }
            self.emit_front_record(w, out);
            if block {
                return;
            }
        }
    }

    fn drain_front_blocking(
        &mut self,
        interner: &mut Interner,
        out: &mut Vec<(Timestamp, DenseRouteEvent)>,
    ) {
        self.drain(interner, out, true);
    }

    /// Makes sure worker `w`'s pending queue fronts a batch with an
    /// unconsumed record, receiving more batches if needed. Returns false
    /// if none is available without violating `block == false`.
    fn ensure_front_record(&mut self, w: usize, interner: &mut Interner, block: bool) -> bool {
        loop {
            while let Some(front) = self.pending[w].front() {
                if front.rec < front.batch.records.len() {
                    return true;
                }
                self.pending[w].pop_front();
            }
            if self.in_flight[w] == 0 {
                // The front record still sits in an unsent partial batch.
                if !block {
                    return false;
                }
                let batch = self.batcher.take(w);
                assert!(!batch.is_empty(), "order queue references an unbuffered record");
                self.in_flight[w] += batch.len();
                self.txs[w].send(batch).expect("ingest worker alive");
            }
            let batch = if block {
                match self.rxs[w].recv() {
                    Ok(b) => b,
                    Err(_) => panic!("ingest worker died with records in flight"),
                }
            } else {
                match self.rxs[w].try_recv() {
                    Ok(b) => b,
                    Err(TryRecvError::Empty) => return false,
                    Err(TryRecvError::Disconnected) => {
                        panic!("ingest worker died with records in flight")
                    }
                }
            };
            self.absorb(w, interner, batch);
        }
    }

    /// Applies a batch's intern delta to worker `w`'s remap tables and
    /// queues its records for consumption.
    fn absorb(&mut self, w: usize, interner: &mut Interner, batch: BatchOut) {
        let remap = &mut self.remap[w];
        for key in &batch.new_routes {
            remap.routes.push(interner.route_id(key).0);
        }
        for tag in &batch.new_pops {
            remap.pops.push(interner.pop_id(*tag).0);
        }
        for asn in &batch.new_asns {
            remap.asns.push(interner.asn_id(*asn).0);
        }
        add_stats(&mut self.stats, &batch.stats);
        self.in_flight[w] -= batch.records.len();
        self.pending[w].push_back(Pending { batch, rec: 0, ev: 0 });
    }

    /// Emits the front pending record of worker `w` (which must exist)
    /// and advances the order queue.
    fn emit_front_record(&mut self, w: usize, out: &mut Vec<(Timestamp, DenseRouteEvent)>) {
        self.order.pop_front();
        let pending = self.pending[w].front_mut().expect("front record ensured");
        let (time, n_events) = pending.batch.records[pending.rec];
        pending.rec += 1;
        let start = pending.ev;
        pending.ev += n_events as usize;
        for i in start..pending.ev {
            let ev = pending.batch.events[i];
            let remap = &self.remap[w];
            let route = RouteId(remap.routes.get(ev.route));
            let event = if ev.start == WITHDRAW {
                DenseRouteEvent::Withdraw { route }
            } else {
                let slice =
                    &pending.batch.crossings[ev.start as usize..(ev.start + ev.len) as usize];
                self.cross_scratch.clear();
                self.cross_scratch.extend(slice.iter().map(|c| DenseCrossing {
                    pop: PopId(remap.pops.get(c.pop.0)),
                    near: AsnId(remap.asns.get(c.near.0)),
                    far: AsnId(remap.asns.get(c.far.0)),
                }));
                let crossings = match self.cross_cache.get(self.cross_scratch.as_slice()) {
                    Some(arc) => Arc::clone(arc),
                    None => {
                        let arc: Arc<[DenseCrossing]> = Arc::from(self.cross_scratch.as_slice());
                        self.cross_cache.insert(self.cross_scratch.clone(), Arc::clone(&arc));
                        arc
                    }
                };
                DenseRouteEvent::Update { route, crossings }
            };
            out.push((time, event));
        }
    }
}

impl Drop for ParallelIngest {
    fn drop(&mut self) {
        // Hang up the dispatch channels; workers exit their recv loops.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Either ingest path behind one dispatching surface, so
/// [`Kepler`](crate::system::Kepler) drives serial and parallel decode
/// identically.
#[allow(clippy::large_enum_variant)] // one long-lived instance per system
pub enum AnyIngest {
    /// In-thread decode: whole-record dense mapping
    /// ([`InputModule::process_record_events`]) — no per-prefix
    /// `BgpElem` explosion.
    Serial {
        /// The input module.
        input: InputModule,
        /// Collector-session gap tracking.
        gap: GapTracker,
    },
    /// Sharded decode on worker threads with id remapping at merge.
    Parallel(ParallelIngest),
}

impl AnyIngest {
    /// Feeds one record; completed events land in `out` (for the serial
    /// path: this record's events; for the parallel path: every event
    /// whose record has finished decode), in exact stream order.
    pub fn process_record(
        &mut self,
        rec: &BgpRecord,
        interner: &mut Interner,
        out: &mut Vec<(Timestamp, DenseRouteEvent)>,
    ) {
        match self {
            AnyIngest::Serial { input, gap } => {
                gap.observe(rec);
                if !gap.is_usable(rec.collector, rec.peer, rec.time) {
                    return;
                }
                input.process_record_events(rec, interner, |event| out.push((rec.time, event)));
            }
            AnyIngest::Parallel(p) => {
                p.push(rec);
                p.drain_ready(interner, out);
            }
        }
    }

    /// [`process_record`](Self::process_record) taking ownership, so the
    /// parallel path dispatches without a per-record deep clone.
    pub fn process_record_owned(
        &mut self,
        rec: BgpRecord,
        interner: &mut Interner,
        out: &mut Vec<(Timestamp, DenseRouteEvent)>,
    ) {
        if let AnyIngest::Parallel(p) = self {
            p.push_owned(rec);
            p.drain_ready(interner, out);
        } else {
            self.process_record(&rec, interner, out);
        }
    }

    /// Drains whatever the pipeline still holds (no-op for serial).
    pub fn finish(&mut self, interner: &mut Interner, out: &mut Vec<(Timestamp, DenseRouteEvent)>) {
        if let AnyIngest::Parallel(p) = self {
            p.finish(interner, out);
        }
    }

    /// Input statistics. Serial: live counters; parallel: merged from
    /// every worker, complete once [`finish`](Self::finish) has run.
    pub fn stats(&self) -> &InputStats {
        match self {
            AnyIngest::Serial { input, .. } => input.stats(),
            AnyIngest::Parallel(p) => p.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::DeltaTable;

    #[test]
    fn delta_table_merges_contiguous_pushes_into_one_run() {
        let mut t = DeltaTable::default();
        for g in 100..100 + 1000 {
            t.push(g);
        }
        assert_eq!(t.runs_len(), 1, "one arithmetic run");
        for l in 0..1000u32 {
            assert_eq!(t.get(l), 100 + l);
        }
    }

    #[test]
    fn delta_table_breaks_runs_on_global_gaps() {
        let mut t = DeltaTable::default();
        // Three deltas whose global ids collide with other workers:
        // 0..4 → 10..14, 4..6 → 20..22, 6..9 → 14..17.
        for g in [10, 11, 12, 13, 20, 21, 14, 15, 16] {
            t.push(g);
        }
        assert_eq!(t.runs_len(), 3);
        let expect = [10, 11, 12, 13, 20, 21, 14, 15, 16];
        for (l, g) in expect.iter().enumerate() {
            assert_eq!(t.get(l as u32), *g, "local {l}");
        }
    }

    #[test]
    fn delta_table_cursor_survives_random_access_order() {
        let mut t = DeltaTable::default();
        // Alternate singleton runs so every other id breaks the run.
        for l in 0..64u32 {
            t.push(if l % 2 == 0 { l } else { 1000 + l });
        }
        assert_eq!(t.runs_len(), 64);
        // Zig-zag lookups defeat the cursor cache on every access.
        for l in (0..64u32).rev() {
            let want = if l % 2 == 0 { l } else { 1000 + l };
            assert_eq!(t.get(l), want);
            assert_eq!(t.get(63 - l), if (63 - l) % 2 == 0 { 63 - l } else { 1000 + 63 - l });
        }
    }

    #[test]
    fn delta_table_singleton_and_duplicate_globals() {
        let mut t = DeltaTable::default();
        // The table doesn't assume the mapping is injective — repeated
        // globals must still resolve per-local.
        t.push(5);
        t.push(5);
        assert_eq!(t.runs_len(), 2);
        assert_eq!(t.get(0), 5);
        assert_eq!(t.get(1), 5);
    }
}

//! Monitoring module (paper §4.2), rebuilt on dense interned identities.
//!
//! Maintains the stable-path baseline and bins route events at
//! `bin_secs`. A route is *stable* once its located crossings have been
//! unchanged for `stable_secs` (default 2 days). Within each bin, any
//! stable route that loses a (PoP, near-end AS) crossing — by explicit
//! withdrawal, by moving to a path without the PoP, or by an announcement
//! with a different community (*implicit withdrawal*) — counts as a
//! deviation for that group. At bin close, groups whose deviation fraction
//! exceeds `T_fail` raise outage signals; changed paths leave the stable
//! set. Grouping per near-end AS avoids the Tier-1 bias the paper warns
//! about: an aggregate fraction would hide partial outages that spare one
//! huge AS.
//!
//! # Hot-path layout
//!
//! All per-event state is keyed by dense ids from [`crate::intern`]:
//! `current` and `baseline` are flat `Vec`s indexed by [`RouteId`] (so the
//! per-event lookups are array indexing, not hashing), deviation groups
//! are small-int maps keyed by packed `(PopId, AsnId)` words, and crossing
//! lists are shared `Arc<[DenseCrossing]>` snapshots. The split between
//! [`MonitorCore`] (pure event/baseline state machine) and [`Monitor`]
//! (bin clock + watches) exists so [`crate::shard::ShardedMonitor`] can
//! drive many cores in lockstep and merge their per-bin group counts
//! exactly.

use crate::config::KeplerConfig;
use crate::events::RouteKey;
use crate::fx::{FxHashMap, FxHashSet};
use crate::intern::{
    pack_group, unpack_group, AsnId, DenseCrossing, DenseRouteEvent, GroupKey, Interner, PopId,
    RouteId,
};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

/// One (PoP, near-end AS) group whose stable paths deviated beyond
/// `T_fail` within a bin — display form, produced by
/// [`DenseBinOutcome::resolve`] at report time.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSignal {
    /// The PoP the paths left.
    pub pop: LocationTag,
    /// The near-end AS group.
    pub near: Asn,
    /// Bin start time.
    pub bin_start: Timestamp,
    /// The deviated stable routes.
    pub deviated: Vec<RouteKey>,
    /// Stable routes in the group before the bin.
    pub stable_total: usize,
    /// Far-end ASes of the deviated crossings.
    pub far_ases: BTreeSet<Asn>,
    /// Deviation fraction.
    pub fraction: f64,
}

/// Everything a closed bin hands to the investigator — display form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinOutcome {
    /// Bin start time.
    pub bin_start: Timestamp,
    /// Raised signals.
    pub signals: Vec<OutageSignal>,
    /// For each signaled PoP: stable far-end ASes with path counts, broken
    /// down by near-end AS (denominators for the colocation coverage
    /// checks — the paper scopes them to the *affected* near-ends).
    /// Snapshotted before stable-set pruning.
    pub stable_fars: HashMap<LocationTag, BTreeMap<Asn, BTreeMap<Asn, usize>>>,
    /// For each signaled PoP: stable near-end ASes with path counts.
    pub stable_nears: HashMap<LocationTag, BTreeMap<Asn, usize>>,
}

/// An outage signal in dense-id space.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseOutageSignal {
    /// The PoP the paths left.
    pub pop: PopId,
    /// The near-end AS group.
    pub near: AsnId,
    /// Bin start time.
    pub bin_start: Timestamp,
    /// The deviated stable routes (unsorted; display order is established
    /// at resolve time).
    pub deviated: Vec<RouteId>,
    /// Stable routes in the group before the bin.
    pub stable_total: usize,
    /// Far-end ASes of the deviated crossings (deduplicated, unsorted).
    pub far_ases: Vec<AsnId>,
    /// Deviation fraction.
    pub fraction: f64,
}

/// A closed bin in dense-id space. Field order inside the vectors is
/// unspecified; [`resolve`](DenseBinOutcome::resolve) produces the
/// deterministic display form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseBinOutcome {
    /// Bin start time.
    pub bin_start: Timestamp,
    /// Raised signals.
    pub signals: Vec<DenseOutageSignal>,
    /// Per signaled PoP: near-end → (far-end → stable path count).
    pub stable_fars: Vec<(PopId, PopFars)>,
    /// Per signaled PoP: near-end → stable path count.
    pub stable_nears: Vec<(PopId, PopNears)>,
    /// Per presence-watched PoP: crossings on currently announced routes
    /// at bin close (the forecast detector's input series). Empty unless
    /// presence watches are registered, so plain runs are unchanged.
    pub watch_presence: Vec<(PopId, u64)>,
}

/// Stable far-end ASes of one PoP with path counts, grouped by near-end.
pub type PopFars = Vec<(AsnId, Vec<(AsnId, usize)>)>;

/// Stable near-end ASes of one PoP with path counts.
pub type PopNears = Vec<(AsnId, usize)>;

impl DenseBinOutcome {
    /// Resolves dense ids back to display types, restoring the canonical
    /// ordering (signals by PoP kind/id then near-end ASN, route lists by
    /// `RouteKey`). This is the only place the per-bin path touches fat
    /// keys, and it runs once per *closed bin*, not per event.
    pub fn resolve(&self, interner: &Interner) -> BinOutcome {
        let mut out = BinOutcome { bin_start: self.bin_start, ..Default::default() };
        for s in &self.signals {
            let mut deviated: Vec<RouteKey> =
                s.deviated.iter().map(|&r| interner.route_key(r)).collect();
            deviated.sort();
            out.signals.push(OutageSignal {
                pop: interner.pop_tag(s.pop),
                near: interner.asn(s.near),
                bin_start: s.bin_start,
                deviated,
                stable_total: s.stable_total,
                far_ases: s.far_ases.iter().map(|&a| interner.asn(a)).collect(),
                fraction: s.fraction,
            });
        }
        out.signals.sort_by_key(|s| (pop_order(&s.pop), s.near));
        for (pop, by_near) in &self.stable_fars {
            let entry = out.stable_fars.entry(interner.pop_tag(*pop)).or_default();
            for (near, fars) in by_near {
                let near_entry = entry.entry(interner.asn(*near)).or_default();
                for (far, n) in fars {
                    *near_entry.entry(interner.asn(*far)).or_insert(0) += n;
                }
            }
        }
        for (pop, nears) in &self.stable_nears {
            let entry = out.stable_nears.entry(interner.pop_tag(*pop)).or_default();
            for (near, n) in nears {
                *entry.entry(interner.asn(*near)).or_insert(0) += n;
            }
        }
        out
    }
}

/// Per-group deviation statistics at bin close, before thresholding.
/// Numerators and denominators are additive across shards, which is what
/// makes the sharded merge exact.
#[derive(Debug, Clone)]
pub struct GroupStat {
    /// Packed `(PopId, AsnId)` group key.
    pub key: GroupKey,
    /// Deviated stable routes of the group.
    pub deviated: Vec<RouteId>,
    /// Stable routes of the group before the bin (local denominator).
    pub stable_total: usize,
    /// Far-end ASes of the deviated crossings.
    pub fars: Vec<AsnId>,
}

#[derive(Debug, Clone)]
struct CurrentRoute {
    crossings: Arc<[DenseCrossing]>,
    since: Timestamp,
}

/// Pre-finish state captured during an eager bin close
/// ([`MonitorCore::close_bin_eager`]): for every group key and PoP the
/// finish *touched* (pruned from or promoted into), the denominator and
/// snapshot as they stood at the bin boundary. Untouched keys/PoPs are
/// answered from live state — `apply` never mutates the stable index, so
/// live equals pre-finish for them even after later-bin events have been
/// applied. This is what lets [`crate::shard::ShardedMonitor`] close bins
/// with one in-stream marker instead of lockstep collect/snapshot/finish
/// round-trips.
#[derive(Debug, Default)]
pub struct BinPreState {
    totals: FxHashMap<GroupKey, usize>,
    snaps: FxHashMap<PopId, SnapshotPair>,
}

/// Everything an eager bin close returns to the shard loop.
#[derive(Debug)]
pub struct EagerClose {
    /// The bin's per-group deviation statistics (pre-threshold).
    pub groups: Vec<GroupStat>,
    /// Pre-finish stable counts of the watched PoPs, in argument order.
    pub watch_stables: Vec<usize>,
    /// This shard's presence counts of the presence-watched PoPs, in
    /// argument order (additive across shards).
    pub presence: Vec<u64>,
    /// Captured pre-finish state for deferred denominator queries.
    pub pre: BinPreState,
}

/// The event/baseline state machine: everything the monitor does *except*
/// bin bookkeeping. One instance per shard.
///
/// `stride` is the total shard count: a core only ever sees routes with
/// `id % stride == shard`, so it stores them densely at `id / stride`.
pub struct MonitorCore {
    config: KeplerConfig,
    stride: u32,
    current: Vec<Option<CurrentRoute>>,
    baseline: Vec<Option<Arc<[DenseCrossing]>>>,
    baseline_len: usize,
    /// Group → stable routes crossing it.
    pop_index: FxHashMap<GroupKey, FxHashSet<RouteId>>,
    /// PoP → near-end ASes with a live group (secondary index over
    /// `pop_index` for per-PoP queries).
    pop_groups: FxHashMap<PopId, FxHashSet<AsnId>>,
    promotions: BinaryHeap<Reverse<(Timestamp, RouteId)>>,
    deviations: FxHashMap<GroupKey, FxHashSet<RouteId>>,
    deviation_fars: FxHashMap<GroupKey, FxHashSet<AsnId>>,
    /// High-water coverage per PoP: every near/far AS ever seen in a
    /// *stable* crossing. Determines which PoPs are trackable (the paper's
    /// ≥3 near-end + ≥3 far-end rule).
    coverage: FxHashMap<PopId, (FxHashSet<AsnId>, FxHashSet<AsnId>)>,
    /// Per-PoP count of crossings on *currently announced* routes — the
    /// forecast detector's presence series. Maintained unconditionally
    /// (shards cannot know the watch set before the first bin close);
    /// pure extra state that never feeds the deviation path.
    presence: FxHashMap<PopId, u64>,
    /// Active pre-finish capture (only during
    /// [`close_bin_eager`](Self::close_bin_eager)).
    pre: Option<BinPreState>,
}

impl MonitorCore {
    /// A core for one shard out of `stride`.
    pub fn new(config: KeplerConfig, stride: u32) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        MonitorCore {
            config,
            stride,
            current: Vec::new(),
            baseline: Vec::new(),
            baseline_len: 0,
            pop_index: FxHashMap::default(),
            pop_groups: FxHashMap::default(),
            promotions: BinaryHeap::new(),
            deviations: FxHashMap::default(),
            deviation_fars: FxHashMap::default(),
            coverage: FxHashMap::default(),
            presence: FxHashMap::default(),
            pre: None,
        }
    }

    #[inline]
    fn slot(&self, route: RouteId) -> usize {
        (route.0 / self.stride) as usize
    }

    /// Applies one event (no bin logic). The caller drives bin closes via
    /// [`bin_groups`](Self::bin_groups) / [`finish_bin`](Self::finish_bin).
    pub fn apply(&mut self, t: Timestamp, event: &DenseRouteEvent) {
        match event {
            DenseRouteEvent::Withdraw { route } => {
                let slot = self.slot(*route);
                if let Some(Some(base)) = self.baseline.get(slot) {
                    let base = Arc::clone(base);
                    for c in base.iter() {
                        self.mark_deviation(c, *route);
                    }
                }
                if slot < self.current.len() {
                    if let Some(cur) = self.current[slot].take() {
                        for c in cur.crossings.iter() {
                            self.dec_presence(c.pop);
                        }
                    }
                }
            }
            DenseRouteEvent::Update { route, crossings } => {
                let slot = self.slot(*route);
                if let Some(Some(base)) = self.baseline.get(slot) {
                    let base = Arc::clone(base);
                    for c in base.iter() {
                        let still_there =
                            crossings.iter().any(|n| n.pop == c.pop && n.near == c.near);
                        if !still_there {
                            self.mark_deviation(c, *route);
                        }
                    }
                }
                if slot >= self.current.len() {
                    self.current.resize_with(slot + 1, || None);
                }
                match &self.current[slot] {
                    Some(cur) if cur.crossings[..] == crossings[..] => {
                        // Same located route: stability clock keeps running.
                    }
                    _ => {
                        if let Some(cur) = self.current[slot].take() {
                            for c in cur.crossings.iter() {
                                self.dec_presence(c.pop);
                            }
                        }
                        for c in crossings.iter() {
                            *self.presence.entry(c.pop).or_insert(0) += 1;
                        }
                        self.current[slot] =
                            Some(CurrentRoute { crossings: Arc::clone(crossings), since: t });
                        // A stability deadline past the end of the `u64`
                        // clock can never arrive; don't enqueue it.
                        if let Some(due) = t.checked_add(self.config.stable_secs) {
                            self.promotions.push(Reverse((due, *route)));
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn mark_deviation(&mut self, c: &DenseCrossing, route: RouteId) {
        let key = c.group();
        self.deviations.entry(key).or_default().insert(route);
        self.deviation_fars.entry(key).or_default().insert(c.far);
    }

    #[inline]
    fn dec_presence(&mut self, pop: PopId) {
        if let Some(n) = self.presence.get_mut(&pop) {
            *n = n.saturating_sub(1);
        }
    }

    /// Current per-PoP presence: crossings on currently announced routes,
    /// in argument order. Additive across shards (each route lives on
    /// exactly one).
    pub fn presence_counts(&self, pops: &[PopId]) -> Vec<u64> {
        pops.iter().map(|p| self.presence.get(p).copied().unwrap_or(0)).collect()
    }

    /// Whether any deviation was marked since the last
    /// [`finish_bin`](Self::finish_bin).
    pub fn has_deviations(&self) -> bool {
        !self.deviations.is_empty()
    }

    /// This bin's per-group deviation statistics (pre-threshold,
    /// pre-pruning). Order is unspecified.
    pub fn bin_groups(&self) -> Vec<GroupStat> {
        self.deviations
            .iter()
            .map(|(key, routes)| GroupStat {
                key: *key,
                deviated: routes.iter().copied().collect(),
                stable_total: self.pop_index.get(key).map(FxHashSet::len).unwrap_or(0),
                fars: self
                    .deviation_fars
                    .get(key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// Stable-route counts for the given groups (denominator lookups for
    /// the sharded merge: every shard holds part of a group's stable set,
    /// including shards that saw no deviation for it this bin).
    pub fn group_totals(&self, keys: &[GroupKey]) -> Vec<usize> {
        keys.iter().map(|key| self.pop_index.get(key).map(FxHashSet::len).unwrap_or(0)).collect()
    }

    /// Number of this bin's deviated stable routes crossing `pop`.
    pub fn deviation_count(&self, pop: PopId) -> usize {
        self.deviations
            .iter()
            .filter(|(key, _)| unpack_group(**key).0 == pop)
            .map(|(_, routes)| routes.len())
            .sum()
    }

    /// Eagerly closes one bin in a single step: reports the bin's group
    /// statistics and watched stable counts (both pre-finish), captures
    /// the pre-finish state the coordinator may still query
    /// ([`group_totals_pre`](Self::group_totals_pre),
    /// [`snapshot_pre`](Self::snapshot_pre)), then prunes + promotes
    /// immediately — at the exact stream position the serial path would,
    /// so later-bin events may be applied right away.
    pub fn close_bin_eager(
        &mut self,
        bin_end: Timestamp,
        watched: &[PopId],
        presence_watched: &[PopId],
    ) -> EagerClose {
        let groups = self.bin_groups();
        let watch_stables = watched.iter().map(|&p| self.stable_count(p)).collect();
        // Sampled at the exact stream position of the marker; `finish_bin`
        // never touches `current`, so before/after the finish is identical.
        let presence = self.presence_counts(presence_watched);
        self.pre = Some(BinPreState::default());
        self.finish_bin(bin_end);
        let pre = self.pre.take().expect("pre-state capture active");
        EagerClose { groups, watch_stables, presence, pre }
    }

    /// Pre-finish stable-route counts for the given groups, answered from
    /// the captured state where the finish touched a key and from live
    /// state otherwise (equivalent, because `apply` never mutates the
    /// stable index).
    pub fn group_totals_pre(&self, pre: &BinPreState, keys: &[GroupKey]) -> Vec<usize> {
        keys.iter()
            .map(|key| match pre.totals.get(key) {
                Some(&n) => n,
                None => self.pop_index.get(key).map(FxHashSet::len).unwrap_or(0),
            })
            .collect()
    }

    /// Pre-finish `(stable_fars, stable_nears)` snapshot of one PoP.
    pub fn snapshot_pre(&self, pre: &BinPreState, pop: PopId) -> SnapshotPair {
        match pre.snaps.get(&pop) {
            Some(snap) => snap.clone(),
            None => (self.stable_fars(pop), self.stable_nears(pop)),
        }
    }

    /// First-touch capture of a group's denominator and its PoP's
    /// snapshot, called before any mutation of that key/PoP during an
    /// eagerly-finished bin. No-op outside [`close_bin_eager`].
    fn record_pre(&mut self, key: GroupKey, pop: PopId) {
        let Some(pre) = &self.pre else { return };
        if !pre.totals.contains_key(&key) {
            let n = self.pop_index.get(&key).map(FxHashSet::len).unwrap_or(0);
            self.pre.as_mut().expect("pre active").totals.insert(key, n);
        }
        if !self.pre.as_ref().expect("pre active").snaps.contains_key(&pop) {
            let snap = (self.stable_fars(pop), self.stable_nears(pop));
            self.pre.as_mut().expect("pre active").snaps.insert(pop, snap);
        }
    }

    /// Closes the bin's bookkeeping: prunes every deviated path from the
    /// stable set, clears deviation state, and promotes routes that became
    /// stable by `now`.
    pub fn finish_bin(&mut self, now: Timestamp) {
        let changed: Vec<RouteId> =
            self.deviations.values().flat_map(|s| s.iter().copied()).collect();
        for route in changed {
            self.remove_from_baseline(route);
        }
        self.deviations.clear();
        self.deviation_fars.clear();
        self.run_promotions(now);
    }

    /// Promotes routes whose crossings have been unchanged for the
    /// stability window as of `now`.
    pub fn run_promotions(&mut self, now: Timestamp) {
        while let Some(Reverse((due, route))) = self.promotions.peek().copied() {
            if due > now {
                break;
            }
            self.promotions.pop();
            let slot = self.slot(route);
            let Some(Some(cur)) = self.current.get(slot) else { continue };
            // Checked: a route (re-)announced near the top of the clock
            // has an unreachable stability deadline, never a wrapped one.
            if cur.since.checked_add(self.config.stable_secs).is_none_or(|d| d > now) {
                continue; // changed again since scheduling
            }
            if cur.crossings.is_empty() {
                continue; // nothing locatable to monitor
            }
            let crossings = Arc::clone(&cur.crossings);
            if self
                .baseline
                .get(slot)
                .and_then(Option::as_ref)
                .map(|b| Arc::ptr_eq(b, &crossings) || b[..] == crossings[..])
                .unwrap_or(false)
            {
                continue;
            }
            if self.pre.is_some() {
                for c in Arc::clone(&crossings).iter() {
                    self.record_pre(c.group(), c.pop);
                }
            }
            self.remove_from_baseline(route);
            for c in crossings.iter() {
                self.pop_index.entry(c.group()).or_default().insert(route);
                self.pop_groups.entry(c.pop).or_default().insert(c.near);
                let cov = self.coverage.entry(c.pop).or_default();
                cov.0.insert(c.near);
                cov.1.insert(c.far);
            }
            if slot >= self.baseline.len() {
                self.baseline.resize_with(slot + 1, || None);
            }
            if self.baseline[slot].is_none() {
                self.baseline_len += 1;
            }
            self.baseline[slot] = Some(crossings);
        }
    }

    fn remove_from_baseline(&mut self, route: RouteId) {
        let slot = self.slot(route);
        if self.pre.is_some() {
            let base = self.baseline.get(slot).and_then(|o| o.as_ref().map(Arc::clone));
            if let Some(base) = base {
                for c in base.iter() {
                    self.record_pre(c.group(), c.pop);
                }
            }
        }
        let Some(opt) = self.baseline.get_mut(slot) else { return };
        let Some(base) = opt.take() else { return };
        self.baseline_len -= 1;
        for c in base.iter() {
            let key = c.group();
            if let Some(set) = self.pop_index.get_mut(&key) {
                set.remove(&route);
                if set.is_empty() {
                    self.pop_index.remove(&key);
                    if let Some(nears) = self.pop_groups.get_mut(&c.pop) {
                        nears.remove(&c.near);
                        if nears.is_empty() {
                            self.pop_groups.remove(&c.pop);
                        }
                    }
                }
            }
        }
    }

    /// Number of stable routes currently indexed at `pop`.
    pub fn stable_count(&self, pop: PopId) -> usize {
        self.pop_groups
            .get(&pop)
            .map(|nears| {
                nears
                    .iter()
                    .map(|&near| {
                        self.pop_index.get(&pack_group(pop, near)).map(FxHashSet::len).unwrap_or(0)
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total stable routes.
    pub fn baseline_size(&self) -> usize {
        self.baseline_len
    }

    /// Whether the current route of `route` still crosses `pop` at `near`.
    pub fn route_has_crossing(&self, route: RouteId, pop: PopId, near: AsnId) -> bool {
        self.current
            .get(self.slot(route))
            .and_then(Option::as_ref)
            .map(|c| c.crossings.iter().any(|x| x.pop == pop && x.near == near))
            .unwrap_or(false)
    }

    /// Far-end ASes (with stable path counts) of the baseline routes
    /// crossing `pop`, grouped by the near-end AS of the crossing.
    pub fn stable_fars(&self, pop: PopId) -> PopFars {
        let Some(nears) = self.pop_groups.get(&pop) else { return Vec::new() };
        let mut out = Vec::with_capacity(nears.len());
        for &near in nears {
            let Some(routes) = self.pop_index.get(&pack_group(pop, near)) else { continue };
            let mut by_far: FxHashMap<AsnId, usize> = FxHashMap::default();
            for &route in routes {
                if let Some(Some(base)) = self.baseline.get(self.slot(route)) {
                    for c in base.iter().filter(|c| c.pop == pop && c.near == near) {
                        *by_far.entry(c.far).or_insert(0) += 1;
                    }
                }
            }
            out.push((near, by_far.into_iter().collect()));
        }
        out
    }

    /// Near-end ASes (with stable path counts) of the baseline routes
    /// crossing `pop`.
    pub fn stable_nears(&self, pop: PopId) -> PopNears {
        let Some(nears) = self.pop_groups.get(&pop) else { return Vec::new() };
        nears
            .iter()
            .map(|&near| {
                (near, self.pop_index.get(&pack_group(pop, near)).map(FxHashSet::len).unwrap_or(0))
            })
            .collect()
    }

    /// High-water observability of a PoP: distinct near-end and far-end
    /// ASes ever located there through stable paths.
    pub fn pop_coverage(&self, pop: PopId) -> (usize, usize) {
        self.coverage.get(&pop).map(|(n, f)| (n.len(), f.len())).unwrap_or((0, 0))
    }

    /// The raw coverage sets of a PoP (for cross-shard unioning).
    pub fn coverage_sets(&self, pop: PopId) -> (Vec<AsnId>, Vec<AsnId>) {
        self.coverage
            .get(&pop)
            .map(|(n, f)| (n.iter().copied().collect(), f.iter().copied().collect()))
            .unwrap_or_default()
    }

    /// All PoPs with any recorded coverage.
    pub fn covered_pops(&self) -> Vec<PopId> {
        self.coverage.keys().copied().collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> &KeplerConfig {
        &self.config
    }
}

/// The single-threaded monitoring module: one [`MonitorCore`] plus the bin
/// clock and watch series.
pub struct Monitor {
    core: MonitorCore,
    bin_start: Option<Timestamp>,
    watches: FxHashMap<PopId, Vec<(Timestamp, f64)>>,
    presence_watch: Vec<PopId>,
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(config: KeplerConfig) -> Self {
        Monitor {
            core: MonitorCore::new(config, 1),
            bin_start: None,
            watches: FxHashMap::default(),
            presence_watch: Vec::new(),
        }
    }

    /// Registers a PoP whose presence count (crossings on currently
    /// announced routes) is sampled into every closed bin's
    /// [`DenseBinOutcome::watch_presence`] — the forecast detector's
    /// input. Registering any presence watch disables the empty-stretch
    /// bin-skip so the series has one sample per bin.
    pub fn watch_presence(&mut self, pop: PopId) {
        if !self.presence_watch.contains(&pop) {
            self.presence_watch.push(pop);
            self.presence_watch.sort_unstable();
        }
    }

    /// All presence-watched PoPs, sorted.
    pub fn presence_watched(&self) -> &[PopId] {
        &self.presence_watch
    }

    /// Registers a PoP whose per-bin aggregate change fraction should be
    /// recorded (for the paper's time-series figures).
    pub fn watch(&mut self, pop: PopId) {
        self.watches.entry(pop).or_default();
    }

    /// The recorded (bin start, change fraction) series of a watched PoP.
    pub fn watch_series(&self, pop: PopId) -> Option<&[(Timestamp, f64)]> {
        self.watches.get(&pop).map(Vec::as_slice)
    }

    /// All registered watch PoPs.
    pub fn watched_pops(&self) -> Vec<PopId> {
        self.watches.keys().copied().collect()
    }

    /// Number of stable routes currently indexed at `pop`.
    pub fn stable_count(&self, pop: PopId) -> usize {
        self.core.stable_count(pop)
    }

    /// Total stable routes.
    pub fn baseline_size(&self) -> usize {
        self.core.baseline_size()
    }

    /// Whether the current route of `route` still crosses `pop` at `near`.
    pub fn route_has_crossing(&self, route: RouteId, pop: PopId, near: AsnId) -> bool {
        self.core.route_has_crossing(route, pop, near)
    }

    /// Bulk [`route_has_crossing`](Self::route_has_crossing) (one call per
    /// restoration check; the sharded monitor answers it with one
    /// round-trip per shard).
    pub fn crossings_present(&self, items: &[(RouteId, PopId, AsnId)]) -> Vec<bool> {
        items.iter().map(|&(r, p, a)| self.core.route_has_crossing(r, p, a)).collect()
    }

    /// High-water observability of a PoP.
    pub fn pop_coverage(&self, pop: PopId) -> (usize, usize) {
        self.core.pop_coverage(pop)
    }

    /// All PoPs whose observed coverage reaches `min_nears`/`min_fars` —
    /// the PoPs where the methodology is applicable (trackable). Sorted by
    /// display order via `interner`.
    pub fn trackable_pops(
        &self,
        interner: &Interner,
        min_nears: usize,
        min_fars: usize,
    ) -> Vec<PopId> {
        let mut v: Vec<PopId> = self
            .core
            .covered_pops()
            .into_iter()
            .filter(|&p| {
                let (n, f) = self.core.pop_coverage(p);
                n >= min_nears && f >= min_fars
            })
            .collect();
        v.sort_by_key(|&p| pop_order(&interner.pop_tag(p)));
        v
    }

    /// Feeds one event, returning any bins closed by time advancing.
    pub fn observe(&mut self, t: Timestamp, event: &DenseRouteEvent) -> Vec<DenseBinOutcome> {
        let closed = self.advance_to(t);
        self.core.apply(t, event);
        closed
    }

    /// Advances virtual time to `t`, closing every bin that ends at or
    /// before it.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<DenseBinOutcome> {
        let bin_secs = self.core.config.bin_secs;
        let mut out = Vec::new();
        match self.bin_start {
            None => {
                self.bin_start = Some(t - t % bin_secs);
            }
            Some(start) => {
                let mut bin_start = start;
                // Checked bin-end arithmetic: a bin whose end would
                // overflow the `u64` clock can never close, so timestamps
                // at or near `u64::MAX` don't wrap (or panic) here.
                while bin_start.checked_add(bin_secs).is_some_and(|end| t >= end) {
                    out.push(self.close_bin(bin_start));
                    // Skip empty stretches in one step (only when nothing
                    // needs a per-bin sample).
                    let next = bin_start + bin_secs;
                    if out.last().map(|o| o.signals.is_empty()).unwrap_or(false)
                        && !self.core.has_deviations()
                        && self.watches.is_empty()
                        && self.presence_watch.is_empty()
                        && next.checked_add(bin_secs).is_some_and(|end| t >= end)
                    {
                        bin_start = t - t % bin_secs;
                        // Still run promotions for the skipped stretch.
                        self.core.run_promotions(bin_start);
                    } else {
                        bin_start = next;
                    }
                }
                self.bin_start = Some(bin_start);
            }
        }
        out
    }

    fn close_bin(&mut self, bin_start: Timestamp) -> DenseBinOutcome {
        let config = self.core.config.clone();
        let bin_end = bin_start + config.bin_secs;
        let groups = self.core.bin_groups();
        let mut outcome = finalize_bin(&config, bin_start, groups, |pop| {
            (self.core.stable_fars(pop), self.core.stable_nears(pop))
        });

        // Watched series (pre-pruning stable counts, like the snapshot).
        for (&pop, series) in self.watches.iter_mut() {
            let stable = self.core.stable_count(pop);
            let deviated = self.core.deviation_count(pop);
            let frac = if stable == 0 { 0.0 } else { deviated as f64 / stable as f64 };
            series.push((bin_start, frac));
        }

        // Presence samples for the forecast detector.
        if !self.presence_watch.is_empty() {
            outcome.watch_presence = self
                .presence_watch
                .iter()
                .copied()
                .zip(self.core.presence_counts(&self.presence_watch))
                .collect();
        }

        self.core.finish_bin(bin_end);
        outcome
    }
}

/// Thresholds merged group statistics into a [`DenseBinOutcome`] and
/// snapshots denominators for the signaled PoPs via `snapshot`. Shared by
/// [`Monitor`] and [`crate::shard::ShardedMonitor`] so both paths apply
/// identical signal logic.
pub fn finalize_bin(
    config: &KeplerConfig,
    bin_start: Timestamp,
    groups: Vec<GroupStat>,
    mut snapshot: impl FnMut(PopId) -> SnapshotPair,
) -> DenseBinOutcome {
    let mut outcome = DenseBinOutcome { bin_start, ..Default::default() };
    for g in groups {
        if !group_signals(config, &g) {
            continue;
        }
        let fraction = g.deviated.len() as f64 / g.stable_total as f64;
        {
            let (pop, near) = unpack_group(g.key);
            outcome.signals.push(DenseOutageSignal {
                pop,
                near,
                bin_start,
                deviated: g.deviated,
                stable_total: g.stable_total,
                far_ases: g.fars,
                fraction,
            });
        }
    }
    let mut pops: Vec<PopId> = outcome.signals.iter().map(|s| s.pop).collect();
    pops.sort_unstable();
    pops.dedup();
    for pop in pops {
        let (fars, nears) = snapshot(pop);
        outcome.stable_fars.push((pop, fars));
        outcome.stable_nears.push((pop, nears));
    }
    outcome
}

/// Whether a group's deviations cross the signal thresholds — the single
/// predicate both [`finalize_bin`] and the sharded pre-scan
/// ([`crate::shard::ShardedMonitor`]) apply, so they cannot drift apart.
pub fn group_signals(config: &KeplerConfig, g: &GroupStat) -> bool {
    g.stable_total >= config.min_stable_paths
        && g.deviated.len() as f64 / g.stable_total as f64 > config.t_fail
}

/// `(stable_fars, stable_nears)` of one PoP, as returned by the snapshot
/// callback of [`finalize_bin`].
pub type SnapshotPair = (PopFars, PopNears);

pub(crate) fn pop_order(p: &LocationTag) -> (u8, u32) {
    match p {
        LocationTag::Facility(f) => (0, f.0),
        LocationTag::Ixp(x) => (1, x.0),
        LocationTag::City(c) => (2, c.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{PopCrossing, RouteEvent};
    use kepler_bgp::Prefix;
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_topology::FacilityId;

    const DAY: u64 = 86_400;

    fn cfg() -> KeplerConfig {
        KeplerConfig { min_stable_paths: 2, ..KeplerConfig::default() }
    }

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(100 + i as u32), addr: "10.0.0.9".parse().unwrap() },
            prefix: Prefix::v4(20, i, 0, 0, 16),
        }
    }

    fn fac(pop: u32, near: u32, far: u32) -> PopCrossing {
        PopCrossing { pop: LocationTag::Facility(FacilityId(pop)), near: Asn(near), far: Asn(far) }
    }

    /// Interns and feeds a display-typed update.
    fn update(
        m: &mut Monitor,
        interner: &mut Interner,
        t: u64,
        i: u8,
        crossings: Vec<PopCrossing>,
        hops: Vec<Asn>,
    ) -> Vec<BinOutcome> {
        let ev = interner.intern_event(&RouteEvent::Update { key: key(i), crossings, hops });
        m.observe(t, &ev).iter().map(|o| o.resolve(interner)).collect()
    }

    fn withdraw(m: &mut Monitor, interner: &mut Interner, t: u64, i: u8) -> Vec<BinOutcome> {
        let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
        m.observe(t, &ev).iter().map(|o| o.resolve(interner)).collect()
    }

    fn pop_of(interner: &mut Interner, fac_id: u32) -> PopId {
        interner.pop_id(LocationTag::Facility(FacilityId(fac_id)))
    }

    #[test]
    fn baseline_promotion_after_stable_window() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60 + i as u32)], vec![]);
        }
        assert_eq!(m.baseline_size(), 0);
        m.advance_to(t0 + 2 * DAY + 120);
        assert_eq!(m.baseline_size(), 4);
        let pop = pop_of(&mut interner, 1);
        assert_eq!(m.stable_count(pop), 4);
    }

    #[test]
    fn withdrawals_of_stable_routes_raise_signal() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60 + i as u32)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Withdraw 3 of 4 in one bin.
        for i in 0..3u8 {
            withdraw(&mut m, &mut interner, t1 + 5, i);
        }
        let outcomes: Vec<BinOutcome> =
            m.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
        let signals: Vec<&OutageSignal> = outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        let s = signals[0];
        assert_eq!(s.pop, LocationTag::Facility(FacilityId(1)));
        assert_eq!(s.near, Asn(50));
        assert_eq!(s.deviated.len(), 3);
        assert_eq!(s.stable_total, 4);
        assert!(s.fraction > 0.7);
        assert_eq!(s.far_ases.len(), 3);
        // Changed paths pruned from the stable set.
        assert_eq!(m.stable_count(pop_of(&mut interner, 1)), 1);
    }

    #[test]
    fn implicit_withdrawal_community_change_counts() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Re-announce with a *different facility tag*, same AS pair: the
        // paper's implicit withdrawal.
        for i in 0..4u8 {
            update(&mut m, &mut interner, t1 + 2, i, vec![fac(2, 50, 60)], vec![]);
        }
        let outcomes: Vec<BinOutcome> =
            m.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
        let signals: Vec<_> = outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].pop, LocationTag::Facility(FacilityId(1)));
    }

    #[test]
    fn as_path_change_keeping_tag_is_not_a_deviation() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(
                &mut m,
                &mut interner,
                t0,
                i,
                vec![fac(1, 50, 60)],
                vec![Asn(1), Asn(50), Asn(60)],
            );
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Far end changes (different AS path) but the tag (pop 1, near 50)
        // survives: not a route change for pop 1.
        for i in 0..4u8 {
            update(
                &mut m,
                &mut interner,
                t1 + 2,
                i,
                vec![fac(1, 50, 61)],
                vec![Asn(1), Asn(50), Asn(61)],
            );
        }
        let outcomes = m.advance_to(t1 + 120);
        assert!(outcomes.iter().all(|o| o.signals.is_empty()));
    }

    #[test]
    fn per_as_grouping_avoids_tier1_bias() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        // Group A: 3 paths via near-AS 50; Group B: 30 paths via near-AS 99.
        for i in 0..3u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60)], vec![]);
        }
        for i in 3..33u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 99, 70)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Only group A is wiped out: 3/33 < 10% aggregate, but 3/3 per-AS.
        for i in 0..3u8 {
            withdraw(&mut m, &mut interner, t1 + 1, i);
        }
        let outcomes: Vec<BinOutcome> =
            m.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
        let signals: Vec<_> = outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].near, Asn(50));
    }

    #[test]
    fn watch_records_fraction_series() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let pop = pop_of(&mut interner, 1);
        m.watch(pop);
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        for i in 0..2u8 {
            withdraw(&mut m, &mut interner, t1 + 1, i);
        }
        m.advance_to(t1 + 180);
        let series = m.watch_series(pop).unwrap();
        assert!(!series.is_empty());
        let max = series.iter().map(|(_, f)| *f).fold(0.0f64, f64::max);
        assert!((max - 0.5).abs() < 1e-9, "peak fraction 2/4, got {max}");
    }

    #[test]
    fn small_groups_do_not_signal() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(KeplerConfig { min_stable_paths: 3, ..KeplerConfig::default() });
        let t0 = 1_000_000u64;
        for i in 0..2u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        for i in 0..2u8 {
            withdraw(&mut m, &mut interner, t1 + 1, i);
        }
        let outcomes = m.advance_to(t1 + 120);
        assert!(outcomes.iter().all(|o| o.signals.is_empty()));
    }

    #[test]
    fn route_change_resets_stability_clock() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        update(&mut m, &mut interner, t0, 0, vec![fac(1, 50, 60)], vec![]);
        // Change the route after one day; stability clock restarts.
        update(&mut m, &mut interner, t0 + DAY, 0, vec![fac(2, 50, 60)], vec![]);
        m.advance_to(t0 + 2 * DAY + 300);
        assert_eq!(m.baseline_size(), 0, "not yet stable on new route");
        m.advance_to(t0 + 3 * DAY + 300);
        assert_eq!(m.baseline_size(), 1);
        assert_eq!(m.stable_count(pop_of(&mut interner, 2)), 1);
    }

    #[test]
    fn presence_counter_tracks_announced_crossings() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let pop = pop_of(&mut interner, 1);
        m.watch_presence(pop);
        m.watch_presence(pop); // idempotent
        assert_eq!(m.presence_watched(), &[pop]);
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            update(&mut m, &mut interner, t0, i, vec![fac(1, 50, 60 + i as u32)], vec![]);
        }
        let t1 = t0 + 2 * DAY + 300;
        let warm = m.advance_to(t1);
        assert!(warm.iter().all(|o| o.watch_presence.len() == 1));
        assert_eq!(warm.last().unwrap().watch_presence, vec![(pop, 4)]);
        // Withdraw two, move one to another facility.
        withdraw(&mut m, &mut interner, t1 + 1, 0);
        withdraw(&mut m, &mut interner, t1 + 2, 1);
        update(&mut m, &mut interner, t1 + 3, 2, vec![fac(2, 50, 62)], vec![]);
        let outcomes = m.advance_to(t1 + 180);
        // Only route 3 still announces a facility-1 crossing.
        assert!(!outcomes.is_empty());
        assert!(outcomes.iter().all(|o| o.watch_presence == vec![(pop, 1)]));
        // Presence watches disable the empty-stretch skip: bins stay
        // consecutive across a quiet hour.
        let quiet = m.advance_to(t1 + 180 + 3_600);
        assert_eq!(quiet.len(), 60, "one sample per bin across the quiet stretch");
        let starts: Vec<u64> = quiet.iter().map(|o| o.bin_start).collect();
        assert!(starts.windows(2).all(|w| w[1] == w[0] + 60), "consecutive bins");
    }

    #[test]
    fn unannounced_or_replaced_routes_never_go_negative() {
        let mut interner = Interner::new();
        let mut m = Monitor::new(cfg());
        let pop = pop_of(&mut interner, 1);
        m.watch_presence(pop);
        let t0 = 1_000_000u64;
        // Withdraw of a route that was never announced: harmless.
        withdraw(&mut m, &mut interner, t0, 9);
        // Announce, re-announce identically (same located route arm),
        // then flap to a different tag and back.
        update(&mut m, &mut interner, t0 + 1, 0, vec![fac(1, 50, 60)], vec![]);
        update(&mut m, &mut interner, t0 + 2, 0, vec![fac(1, 50, 60)], vec![]);
        update(&mut m, &mut interner, t0 + 3, 0, vec![fac(2, 50, 60)], vec![]);
        update(&mut m, &mut interner, t0 + 4, 0, vec![fac(1, 50, 60)], vec![]);
        let outcomes = m.advance_to(t0 + 120);
        assert_eq!(outcomes.last().unwrap().watch_presence, vec![(pop, 1)]);
    }

    #[test]
    fn sharded_slot_packing_is_dense() {
        // A stride-4 core owning routes 2, 6, 10 stores them at slots 0..3.
        let mut core = MonitorCore::new(cfg(), 4);
        let mut interner = Interner::new();
        let t0 = 1_000_000u64;
        let events: Vec<DenseRouteEvent> = (0..12u8)
            .map(|i| {
                interner.intern_event(&RouteEvent::Update {
                    key: key(i),
                    crossings: vec![fac(1, 50, 60 + i as u32)],
                    hops: vec![],
                })
            })
            .collect();
        for ev in &events {
            if ev.route().0 % 4 == 2 {
                core.apply(t0, ev);
            }
        }
        core.run_promotions(t0 + 3 * DAY);
        assert_eq!(core.baseline_size(), 3);
        assert!(core.current.len() <= 3, "dense packing, got {}", core.current.len());
    }
}

//! Monitoring module (paper §4.2).
//!
//! Maintains the stable-path baseline and bins route events at
//! `bin_secs`. A route is *stable* once its located crossings have been
//! unchanged for `stable_secs` (default 2 days). Within each bin, any
//! stable route that loses a (PoP, near-end AS) crossing — by explicit
//! withdrawal, by moving to a path without the PoP, or by an announcement
//! with a different community (*implicit withdrawal*) — counts as a
//! deviation for that group. At bin close, groups whose deviation fraction
//! exceeds `T_fail` raise outage signals; changed paths leave the stable
//! set. Grouping per near-end AS avoids the Tier-1 bias the paper warns
//! about: an aggregate fraction would hide partial outages that spare one
//! huge AS.

use crate::config::KeplerConfig;
use crate::events::RouteKey;
use crate::input::{PopCrossing, RouteEvent};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// One (PoP, near-end AS) group whose stable paths deviated beyond
/// `T_fail` within a bin.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSignal {
    /// The PoP the paths left.
    pub pop: LocationTag,
    /// The near-end AS group.
    pub near: Asn,
    /// Bin start time.
    pub bin_start: Timestamp,
    /// The deviated stable routes.
    pub deviated: Vec<RouteKey>,
    /// Stable routes in the group before the bin.
    pub stable_total: usize,
    /// Far-end ASes of the deviated crossings.
    pub far_ases: BTreeSet<Asn>,
    /// Deviation fraction.
    pub fraction: f64,
}

/// Everything a closed bin hands to the investigator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinOutcome {
    /// Bin start time.
    pub bin_start: Timestamp,
    /// Raised signals.
    pub signals: Vec<OutageSignal>,
    /// For each signaled PoP: stable far-end ASes with path counts, broken
    /// down by near-end AS (denominators for the colocation coverage
    /// checks — the paper scopes them to the *affected* near-ends).
    /// Snapshotted before stable-set pruning.
    pub stable_fars: HashMap<LocationTag, BTreeMap<Asn, BTreeMap<Asn, usize>>>,
    /// For each signaled PoP: stable near-end ASes with path counts.
    pub stable_nears: HashMap<LocationTag, BTreeMap<Asn, usize>>,
}

#[derive(Debug, Clone)]
struct CurrentRoute {
    crossings: Arc<Vec<PopCrossing>>,
    since: Timestamp,
}

/// The monitoring module.
pub struct Monitor {
    config: KeplerConfig,
    current: HashMap<RouteKey, CurrentRoute>,
    baseline: HashMap<RouteKey, Arc<Vec<PopCrossing>>>,
    pop_index: HashMap<LocationTag, HashMap<Asn, HashSet<RouteKey>>>,
    promotions: BinaryHeap<Reverse<(Timestamp, RouteKey)>>,
    bin_start: Option<Timestamp>,
    deviations: HashMap<(LocationTag, Asn), HashSet<RouteKey>>,
    deviation_fars: HashMap<(LocationTag, Asn), BTreeSet<Asn>>,
    watches: HashMap<LocationTag, Vec<(Timestamp, f64)>>,
    /// High-water coverage per PoP: every near/far AS ever seen in a
    /// *stable* crossing. Determines which PoPs are trackable (the paper's
    /// ≥3 near-end + ≥3 far-end rule).
    coverage: HashMap<LocationTag, (BTreeSet<Asn>, BTreeSet<Asn>)>,
}

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(config: KeplerConfig) -> Self {
        Monitor {
            config,
            current: HashMap::new(),
            baseline: HashMap::new(),
            pop_index: HashMap::new(),
            promotions: BinaryHeap::new(),
            bin_start: None,
            deviations: HashMap::new(),
            deviation_fars: HashMap::new(),
            watches: HashMap::new(),
            coverage: HashMap::new(),
        }
    }

    /// Registers a PoP whose per-bin aggregate change fraction should be
    /// recorded (for the paper's time-series figures).
    pub fn watch(&mut self, pop: LocationTag) {
        self.watches.entry(pop).or_default();
    }

    /// The recorded (bin start, change fraction) series of a watched PoP.
    pub fn watch_series(&self, pop: LocationTag) -> Option<&[(Timestamp, f64)]> {
        self.watches.get(&pop).map(Vec::as_slice)
    }

    /// Number of stable routes currently indexed at `pop`.
    pub fn stable_count(&self, pop: LocationTag) -> usize {
        self.pop_index.get(&pop).map(|m| m.values().map(HashSet::len).sum()).unwrap_or(0)
    }

    /// Total stable routes.
    pub fn baseline_size(&self) -> usize {
        self.baseline.len()
    }

    /// Whether the current route of `key` still crosses `pop` at `near`.
    pub fn route_has_crossing(&self, key: &RouteKey, pop: LocationTag, near: Asn) -> bool {
        self.current
            .get(key)
            .map(|c| c.crossings.iter().any(|x| x.pop == pop && x.near == near))
            .unwrap_or(false)
    }

    /// Feeds one event, returning any bins closed by time advancing.
    pub fn observe(&mut self, t: Timestamp, event: RouteEvent) -> Vec<BinOutcome> {
        let closed = self.advance_to(t);
        match event {
            RouteEvent::Withdraw { key } => {
                if let Some(base) = self.baseline.get(&key).cloned() {
                    for c in base.iter() {
                        self.mark_deviation(c, key);
                    }
                }
                self.current.remove(&key);
            }
            RouteEvent::Update { key, crossings, .. } => {
                if let Some(base) = self.baseline.get(&key).cloned() {
                    for c in base.iter() {
                        let still_there =
                            crossings.iter().any(|n| n.pop == c.pop && n.near == c.near);
                        if !still_there {
                            self.mark_deviation(c, key);
                        }
                    }
                }
                let crossings = Arc::new(crossings);
                match self.current.get_mut(&key) {
                    Some(cur) if *cur.crossings == *crossings => {
                        // Same located route: stability clock keeps running.
                    }
                    _ => {
                        self.current.insert(key, CurrentRoute { crossings, since: t });
                        self.promotions.push(Reverse((t + self.config.stable_secs, key)));
                    }
                }
            }
        }
        closed
    }

    fn mark_deviation(&mut self, c: &PopCrossing, key: RouteKey) {
        self.deviations.entry((c.pop, c.near)).or_default().insert(key);
        self.deviation_fars.entry((c.pop, c.near)).or_default().insert(c.far);
    }

    /// Advances virtual time to `t`, closing every bin that ends at or
    /// before it.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<BinOutcome> {
        let mut out = Vec::new();
        match self.bin_start {
            None => {
                self.bin_start = Some(t - t % self.config.bin_secs);
            }
            Some(start) => {
                let mut bin_start = start;
                while t >= bin_start + self.config.bin_secs {
                    out.push(self.close_bin(bin_start));
                    // Skip empty stretches in one step (only when nothing
                    // needs a per-bin sample).
                    let next = bin_start + self.config.bin_secs;
                    if out.last().map(|o| o.signals.is_empty()).unwrap_or(false)
                        && self.deviations.is_empty()
                        && self.watches.is_empty()
                        && t >= next + self.config.bin_secs
                    {
                        bin_start = t - t % self.config.bin_secs;
                        // Still run promotions for the skipped stretch.
                        self.run_promotions(bin_start);
                    } else {
                        bin_start = next;
                    }
                }
                self.bin_start = Some(bin_start);
            }
        }
        out
    }

    fn close_bin(&mut self, bin_start: Timestamp) -> BinOutcome {
        let bin_end = bin_start + self.config.bin_secs;
        let mut outcome = BinOutcome { bin_start, ..Default::default() };

        // 1. Signals from this bin's deviations, denominators pre-pruning.
        for ((pop, near), keys) in &self.deviations {
            let stable_total = self
                .pop_index
                .get(pop)
                .and_then(|m| m.get(near))
                .map(HashSet::len)
                .unwrap_or(0);
            if stable_total < self.config.min_stable_paths {
                continue;
            }
            let fraction = keys.len() as f64 / stable_total as f64;
            if fraction > self.config.t_fail {
                let mut deviated: Vec<RouteKey> = keys.iter().copied().collect();
                deviated.sort();
                outcome.signals.push(OutageSignal {
                    pop: *pop,
                    near: *near,
                    bin_start,
                    deviated,
                    stable_total,
                    far_ases: self.deviation_fars.get(&(*pop, *near)).cloned().unwrap_or_default(),
                    fraction,
                });
            }
        }
        outcome.signals.sort_by_key(|s| (pop_order(&s.pop), s.near));

        // 2. Snapshot denominators for signaled pops.
        for pop in outcome.signals.iter().map(|s| s.pop).collect::<BTreeSet<_>>() {
            outcome.stable_fars.insert(pop, self.stable_fars(pop));
            outcome.stable_nears.insert(pop, self.stable_nears(pop));
        }

        // 3. Watched series.
        let watched: Vec<LocationTag> = self.watches.keys().copied().collect();
        for pop in watched {
            let stable: usize = self.stable_count(pop);
            let deviated: usize = self
                .deviations
                .iter()
                .filter(|((p, _), _)| *p == pop)
                .map(|(_, k)| k.len())
                .sum();
            let frac = if stable == 0 { 0.0 } else { deviated as f64 / stable as f64 };
            self.watches.get_mut(&pop).expect("watched").push((bin_start, frac));
        }

        // 4. Prune every changed path from the stable set.
        let changed: HashSet<RouteKey> =
            self.deviations.values().flat_map(|s| s.iter().copied()).collect();
        for key in &changed {
            self.remove_from_baseline(key);
        }
        self.deviations.clear();
        self.deviation_fars.clear();

        // 5. Promote routes that have been stable long enough.
        self.run_promotions(bin_end);

        outcome
    }

    fn run_promotions(&mut self, now: Timestamp) {
        while let Some(Reverse((due, key))) = self.promotions.peek().copied() {
            if due > now {
                break;
            }
            self.promotions.pop();
            let Some(cur) = self.current.get(&key) else { continue };
            if cur.since + self.config.stable_secs > now {
                continue; // changed again since scheduling
            }
            if cur.crossings.is_empty() {
                continue; // nothing locatable to monitor
            }
            let crossings = Arc::clone(&cur.crossings);
            if self.baseline.get(&key).map(|b| Arc::ptr_eq(b, &crossings) || **b == *crossings).unwrap_or(false) {
                continue;
            }
            self.remove_from_baseline(&key);
            for c in crossings.iter() {
                self.pop_index.entry(c.pop).or_default().entry(c.near).or_default().insert(key);
                let cov = self.coverage.entry(c.pop).or_default();
                cov.0.insert(c.near);
                cov.1.insert(c.far);
            }
            self.baseline.insert(key, crossings);
        }
    }

    fn remove_from_baseline(&mut self, key: &RouteKey) {
        if let Some(base) = self.baseline.remove(key) {
            for c in base.iter() {
                if let Some(by_near) = self.pop_index.get_mut(&c.pop) {
                    if let Some(set) = by_near.get_mut(&c.near) {
                        set.remove(key);
                        if set.is_empty() {
                            by_near.remove(&c.near);
                        }
                    }
                    if by_near.is_empty() {
                        self.pop_index.remove(&c.pop);
                    }
                }
            }
        }
    }

    /// Far-end ASes (with stable path counts) of the baseline routes
    /// crossing `pop`, grouped by the near-end AS of the crossing.
    pub fn stable_fars(&self, pop: LocationTag) -> BTreeMap<Asn, BTreeMap<Asn, usize>> {
        let mut out: BTreeMap<Asn, BTreeMap<Asn, usize>> = BTreeMap::new();
        if let Some(by_near) = self.pop_index.get(&pop) {
            for (near, keys) in by_near {
                let entry = out.entry(*near).or_default();
                for key in keys {
                    if let Some(base) = self.baseline.get(key) {
                        for c in base.iter().filter(|c| c.pop == pop && c.near == *near) {
                            *entry.entry(c.far).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        out
    }

    /// High-water observability of a PoP: distinct near-end and far-end
    /// ASes ever located there through stable paths.
    pub fn pop_coverage(&self, pop: LocationTag) -> (usize, usize) {
        self.coverage.get(&pop).map(|(n, f)| (n.len(), f.len())).unwrap_or((0, 0))
    }

    /// All PoPs whose observed coverage reaches `min_nears`/`min_fars` —
    /// the PoPs where the methodology is applicable (trackable).
    pub fn trackable_pops(&self, min_nears: usize, min_fars: usize) -> Vec<LocationTag> {
        let mut v: Vec<LocationTag> = self
            .coverage
            .iter()
            .filter(|(_, (n, f))| n.len() >= min_nears && f.len() >= min_fars)
            .map(|(p, _)| *p)
            .collect();
        v.sort_by_key(pop_order);
        v
    }

    /// Near-end ASes (with stable path counts) of the baseline routes
    /// crossing `pop`.
    pub fn stable_nears(&self, pop: LocationTag) -> BTreeMap<Asn, usize> {
        let mut out = BTreeMap::new();
        if let Some(by_near) = self.pop_index.get(&pop) {
            for (near, keys) in by_near {
                out.insert(*near, keys.len());
            }
        }
        out
    }
}

fn pop_order(p: &LocationTag) -> (u8, u32) {
    match p {
        LocationTag::Facility(f) => (0, f.0),
        LocationTag::Ixp(x) => (1, x.0),
        LocationTag::City(c) => (2, c.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Prefix;
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_topology::FacilityId;

    const DAY: u64 = 86_400;

    fn cfg() -> KeplerConfig {
        KeplerConfig { min_stable_paths: 2, ..KeplerConfig::default() }
    }

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(100 + i as u32), addr: "10.0.0.9".parse().unwrap() },
            prefix: Prefix::v4(20, i, 0, 0, 16),
        }
    }

    fn fac(pop: u32, near: u32, far: u32) -> PopCrossing {
        PopCrossing { pop: LocationTag::Facility(FacilityId(pop)), near: Asn(near), far: Asn(far) }
    }

    #[test]
    fn baseline_promotion_after_stable_window() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            m.observe(
                t0,
                RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60 + i as u32)], hops: vec![] },
            );
        }
        assert_eq!(m.baseline_size(), 0);
        m.advance_to(t0 + 2 * DAY + 120);
        assert_eq!(m.baseline_size(), 4);
        assert_eq!(m.stable_count(LocationTag::Facility(FacilityId(1))), 4);
    }

    #[test]
    fn withdrawals_of_stable_routes_raise_signal() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            m.observe(
                t0,
                RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60 + i as u32)], hops: vec![] },
            );
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Withdraw 3 of 4 in one bin.
        for i in 0..3u8 {
            m.observe(t1 + 5, RouteEvent::Withdraw { key: key(i) });
        }
        let outcomes = m.advance_to(t1 + 120);
        let signals: Vec<&OutageSignal> =
            outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        let s = signals[0];
        assert_eq!(s.pop, LocationTag::Facility(FacilityId(1)));
        assert_eq!(s.near, Asn(50));
        assert_eq!(s.deviated.len(), 3);
        assert_eq!(s.stable_total, 4);
        assert!(s.fraction > 0.7);
        assert_eq!(s.far_ases.len(), 3);
        // Changed paths pruned from the stable set.
        assert_eq!(m.stable_count(LocationTag::Facility(FacilityId(1))), 1);
    }

    #[test]
    fn implicit_withdrawal_community_change_counts() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            m.observe(
                t0,
                RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60)], hops: vec![] },
            );
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Re-announce with a *different facility tag*, same AS pair: the
        // paper's implicit withdrawal.
        for i in 0..4u8 {
            m.observe(
                t1 + 2,
                RouteEvent::Update { key: key(i), crossings: vec![fac(2, 50, 60)], hops: vec![] },
            );
        }
        let outcomes = m.advance_to(t1 + 120);
        let signals: Vec<_> = outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].pop, LocationTag::Facility(FacilityId(1)));
    }

    #[test]
    fn as_path_change_keeping_tag_is_not_a_deviation() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            m.observe(
                t0,
                RouteEvent::Update {
                    key: key(i),
                    crossings: vec![fac(1, 50, 60)],
                    hops: vec![Asn(1), Asn(50), Asn(60)],
                },
            );
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Far end changes (different AS path) but the tag (pop 1, near 50)
        // survives: not a route change for pop 1.
        for i in 0..4u8 {
            m.observe(
                t1 + 2,
                RouteEvent::Update {
                    key: key(i),
                    crossings: vec![fac(1, 50, 61)],
                    hops: vec![Asn(1), Asn(50), Asn(61)],
                },
            );
        }
        let outcomes = m.advance_to(t1 + 120);
        assert!(outcomes.iter().all(|o| o.signals.is_empty()));
    }

    #[test]
    fn per_as_grouping_avoids_tier1_bias() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        // Group A: 3 paths via near-AS 50; Group B: 30 paths via near-AS 99.
        for i in 0..3u8 {
            m.observe(t0, RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60)], hops: vec![] });
        }
        for i in 3..33u8 {
            m.observe(t0, RouteEvent::Update { key: key(i), crossings: vec![fac(1, 99, 70)], hops: vec![] });
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        // Only group A is wiped out: 3/33 < 10% aggregate, but 3/3 per-AS.
        for i in 0..3u8 {
            m.observe(t1 + 1, RouteEvent::Withdraw { key: key(i) });
        }
        let outcomes = m.advance_to(t1 + 120);
        let signals: Vec<_> = outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].near, Asn(50));
    }

    #[test]
    fn watch_records_fraction_series() {
        let mut m = Monitor::new(cfg());
        let pop = LocationTag::Facility(FacilityId(1));
        m.watch(pop);
        let t0 = 1_000_000u64;
        for i in 0..4u8 {
            m.observe(t0, RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60)], hops: vec![] });
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        for i in 0..2u8 {
            m.observe(t1 + 1, RouteEvent::Withdraw { key: key(i) });
        }
        m.advance_to(t1 + 180);
        let series = m.watch_series(pop).unwrap();
        assert!(!series.is_empty());
        let max = series.iter().map(|(_, f)| *f).fold(0.0f64, f64::max);
        assert!((max - 0.5).abs() < 1e-9, "peak fraction 2/4, got {max}");
    }

    #[test]
    fn small_groups_do_not_signal() {
        let mut m = Monitor::new(KeplerConfig { min_stable_paths: 3, ..KeplerConfig::default() });
        let t0 = 1_000_000u64;
        for i in 0..2u8 {
            m.observe(t0, RouteEvent::Update { key: key(i), crossings: vec![fac(1, 50, 60)], hops: vec![] });
        }
        let t1 = t0 + 2 * DAY + 300;
        m.advance_to(t1);
        for i in 0..2u8 {
            m.observe(t1 + 1, RouteEvent::Withdraw { key: key(i) });
        }
        let outcomes = m.advance_to(t1 + 120);
        assert!(outcomes.iter().all(|o| o.signals.is_empty()));
    }

    #[test]
    fn route_change_resets_stability_clock() {
        let mut m = Monitor::new(cfg());
        let t0 = 1_000_000u64;
        m.observe(t0, RouteEvent::Update { key: key(0), crossings: vec![fac(1, 50, 60)], hops: vec![] });
        // Change the route after one day; stability clock restarts.
        m.observe(t0 + DAY, RouteEvent::Update { key: key(0), crossings: vec![fac(2, 50, 60)], hops: vec![] });
        m.advance_to(t0 + 2 * DAY + 300);
        assert_eq!(m.baseline_size(), 0, "not yet stable on new route");
        m.advance_to(t0 + 3 * DAY + 300);
        assert_eq!(m.baseline_size(), 1);
        assert_eq!(m.stable_count(LocationTag::Facility(FacilityId(2))), 1);
    }
}

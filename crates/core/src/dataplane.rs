//! Data-plane validation interface (paper §4.4).
//!
//! Kepler keeps a baseline of traceroute paths that cross each monitored
//! PoP (mined from public repositories — the paper uses RIPE Atlas, Ark
//! and iPlane the way PathCache does) and, when an outage is inferred for
//! a PoP, re-probes those paths. If fewer than `T_fail` of the baseline
//! paths still cross the PoP, the outage is confirmed; if the BGP signal
//! persists while traceroutes disagree, the inference is a false positive
//! and is discarded.
//!
//! The concrete probing machinery lives outside this crate (the simulator
//! provides one; a deployment would wrap Atlas/LG APIs), behind the
//! [`DataPlaneProbe`] trait.

use crate::events::OutageScope;
use kepler_bgpstream::Timestamp;

// The baseline re-probe arithmetic is owned by `kepler-probe` (one owner
// for the data-plane vocabulary, see that crate's `trace` module); this
// module re-exports it so detector callers keep their historical paths.
pub use kepler_probe::{confirm, ProbeResult};

/// A data-plane measurement backend.
pub trait DataPlaneProbe {
    /// Probes the baseline paths of `scope` at time `t`. `None` means no
    /// baseline coverage for this PoP (validation is then inconclusive and
    /// the control-plane inference stands).
    fn probe(&self, scope: &OutageScope, t: Timestamp) -> Option<ProbeResult>;
}

/// A trivial backend for tests: a fixed answer for every scope.
#[derive(Debug, Clone, Copy)]
pub struct FixedProbe(pub Option<ProbeResult>);

impl DataPlaneProbe for FixedProbe {
    fn probe(&self, _scope: &OutageScope, _t: Timestamp) -> Option<ProbeResult> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_topology::FacilityId;

    #[test]
    fn confirmation_thresholding() {
        assert!(confirm(ProbeResult { still_crossing: 0, baseline: 20 }, 0.10));
        assert!(confirm(ProbeResult { still_crossing: 1, baseline: 20 }, 0.10));
        assert!(!confirm(ProbeResult { still_crossing: 3, baseline: 20 }, 0.10));
        assert!(!confirm(ProbeResult { still_crossing: 20, baseline: 20 }, 0.10));
        // No baseline: fraction defaults to 1.0 — never confirms.
        assert!(!confirm(ProbeResult { still_crossing: 0, baseline: 0 }, 0.10));
    }

    #[test]
    fn fixed_probe_roundtrip() {
        let p = FixedProbe(Some(ProbeResult { still_crossing: 1, baseline: 10 }));
        let r = p.probe(&OutageScope::Facility(FacilityId(1)), 0).unwrap();
        assert!((r.crossing_fraction() - 0.1).abs() < 1e-9);
        assert!(FixedProbe(None).probe(&OutageScope::Facility(FacilityId(1)), 0).is_none());
    }
}

//! Differential property tests for the decode hot path: the zero-copy
//! wire path (MRT archive → [`FrameView`] → [`UpdateView`] →
//! [`InputModule::process_update_view_dense`]) must be bit-identical to
//! the historical materializing path (explode → per-element
//! [`InputModule::process_dense`]) and to the record-dense middle path
//! ([`InputModule::process_record_events`]) — same dense event stream,
//! same interner tables (ids, keys, tags), same input statistics, and
//! same resolved [`BinOutcome`](kepler_core::monitor::BinOutcome)s whether
//! the events feed a single [`Monitor`] or a
//! [`ShardedMonitor`](kepler_core::shard::ShardedMonitor) with 1, 2 or 8
//! shards.

use kepler_bgp::mrt::{FrameView, MrtWriter};
use kepler_bgp::{
    AsPath, Asn, BgpUpdate, Community, PathAttributes, PeerState, Prefix, StateChange,
};
use kepler_bgpstream::{BgpRecord, CollectorId, GapTracker, PeerId, RecordPayload, Timestamp};
use kepler_core::config::KeplerConfig;
use kepler_core::input::{DenseElem, InputModule, InputStats};
use kepler_core::intern::{DenseRouteEvent, Interner};
use kepler_core::monitor::{BinOutcome, Monitor};
use kepler_core::shard::{AnyMonitor, ShardedMonitor};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::{ColocationMap, FacilityId};
use proptest::prelude::*;

const QUARANTINE: u64 = 600;

/// Dictionary: community (100+n):500 tags Facility(n % 5) for n in 0..8.
fn dictionary() -> CommunityDictionary {
    let mut d = CommunityDictionary::new();
    for n in 0..8u16 {
        d.insert(Community::new(100 + n, 500), LocationTag::Facility(FacilityId(n as u32 % 5)));
    }
    d
}

fn input_module() -> InputModule {
    InputModule::new(dictionary(), ColocationMap::new())
}

fn peer(p: u8) -> PeerId {
    PeerId {
        asn: Asn(3356 + (p % 3) as u32),
        addr: if p.is_multiple_of(2) {
            "10.0.0.1".parse().unwrap()
        } else {
            "10.0.0.2".parse().unwrap()
        },
    }
}

/// One scripted record, covering multi-prefix updates, withdraw-only
/// updates, unlocated paths, sanitizer rejects (loops, bogons) and
/// session state changes across several collector sessions.
#[derive(Debug, Clone)]
enum Op {
    Announce {
        collector: u8,
        peer: u8,
        prefixes: Vec<u8>,
        near: u8,
        far: u8,
        tagged: bool,
        looped: bool,
    },
    Withdraw {
        collector: u8,
        peer: u8,
        prefixes: Vec<u8>,
    },
    State {
        collector: u8,
        peer: u8,
        up: bool,
    },
    Advance {
        dt: u32,
    },
}

fn arb_announce() -> impl Strategy<Value = Op> {
    (
        any::<u8>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 1..4),
        any::<u8>(),
        any::<u8>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(collector, peer, prefixes, near, far, tagged, loop_roll)| Op::Announce {
            collector: collector % 4,
            peer: peer % 4,
            prefixes,
            near: near % 8,
            far: far % 6,
            tagged,
            looped: loop_roll < 26, // ~10% of announcements carry a loop
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_announce(),
        arb_announce(),
        arb_announce(),
        (any::<u8>(), any::<u8>(), prop::collection::vec(any::<u8>(), 1..4)).prop_map(
            |(collector, peer, prefixes)| Op::Withdraw {
                collector: collector % 4,
                peer: peer % 4,
                prefixes,
            }
        ),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(collector, peer, up)| Op::State {
            collector: collector % 4,
            peer: peer % 4,
            up
        }),
        prop_oneof![1u32..300, 50_000u32..300_000].prop_map(|dt| Op::Advance { dt }),
    ]
}

fn records(ops: &[Op]) -> Vec<BgpRecord> {
    let mut t: Timestamp = 1_000_000;
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Advance { dt } => t += *dt as u64,
            Op::Announce { collector, peer: p, prefixes, near, far, tagged, looped } => {
                let near_asn = 100 + *near as u32;
                let far_asn = 200 + *far as u32;
                let path = if *looped {
                    // Non-adjacent revisit: rejected by the sanitizer.
                    AsPath::from_sequence([3356, near_asn, far_asn, near_asn])
                } else {
                    AsPath::from_sequence([3356, near_asn, far_asn])
                };
                let communities = if *tagged {
                    vec![Community::new(100 + *near as u16, 500)]
                } else {
                    vec![Community::new(64_000, 1)]
                };
                let attrs = PathAttributes::with_path_and_communities(path, communities);
                // prefix value 255 yields a bogon (0.0.0.0/8 space).
                let announced: Vec<Prefix> = prefixes
                    .iter()
                    .map(|&x| {
                        if x == 255 {
                            Prefix::v4(0, 0, 0, 0, 16)
                        } else {
                            Prefix::v4(20, x % 24, 0, 0, 16)
                        }
                    })
                    .collect();
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::Update(BgpUpdate::announce(announced, attrs)),
                });
            }
            Op::Withdraw { collector, peer: p, prefixes } => {
                let withdrawn: Vec<Prefix> =
                    prefixes.iter().map(|&x| Prefix::v4(20, x % 24, 0, 0, 16)).collect();
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::Update(BgpUpdate::withdraw(withdrawn)),
                });
            }
            Op::State { collector, peer: p, up } => {
                let change = if *up {
                    StateChange { old: PeerState::OpenConfirm, new: PeerState::Established }
                } else {
                    StateChange { old: PeerState::Established, new: PeerState::Idle }
                };
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::State(change),
                });
            }
        }
    }
    out
}

/// Encodes the record stream as a contiguous MRT archive, state changes
/// included (frame order == record order; MRT has no collector field, so
/// the zero-copy runner re-pairs frames with records by position).
fn mrt_archive(records: &[BgpRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for rec in records {
        let mrt = rec.to_mrt(Asn(64_700), "192.0.2.254".parse().unwrap());
        w.write_record(&mrt).expect("encode record");
    }
    buf
}

/// Full observable state of one decode run: the dense event stream (with
/// timestamps), the final interner tables, input statistics, and the
/// resolved monitor outcomes plus baseline size.
struct DecodeRun {
    events: Vec<(Timestamp, DenseRouteEvent)>,
    route_keys: Vec<kepler_core::events::RouteKey>,
    pop_tags: Vec<LocationTag>,
    asns: Vec<Asn>,
    stats: InputStats,
    outcomes: Vec<BinOutcome>,
    baseline: usize,
}

fn finish_run(
    interner: Interner,
    input: &InputModule,
    events: Vec<(Timestamp, DenseRouteEvent)>,
    mut monitor: AnyMonitor,
    last: Timestamp,
) -> DecodeRun {
    let mut outcomes = Vec::new();
    for (t, ev) in &events {
        outcomes.extend(monitor.observe(*t, ev).iter().map(|o| o.resolve(&interner)));
    }
    outcomes.extend(monitor.advance_to(last + 300_000).iter().map(|o| o.resolve(&interner)));
    let baseline = monitor.baseline_size();
    DecodeRun {
        events,
        route_keys: interner.route_keys_since(0).to_vec(),
        pop_tags: interner.pop_tags_since(0).to_vec(),
        asns: interner.asns_since(0).to_vec(),
        stats: input.stats().clone(),
        outcomes,
        baseline,
    }
}

/// The historical reference: gap tracking → explode → per-element
/// [`InputModule::process_dense`], single monitor.
fn run_materializing(records: &[BgpRecord]) -> DecodeRun {
    let mut input = input_module();
    let mut gap = GapTracker::new(QUARANTINE);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    let mut last = 0u64;
    for rec in records {
        last = last.max(rec.time);
        gap.observe(rec);
        if !gap.is_usable(rec.collector, rec.peer, rec.time) {
            continue;
        }
        for elem in rec.explode() {
            if let Some(ev) = input.process_dense(&elem, &mut interner) {
                events.push((elem.time, ev));
            }
        }
    }
    let monitor = AnyMonitor::Single(Monitor::new(KeplerConfig {
        min_stable_paths: 1,
        ..Default::default()
    }));
    finish_run(interner, &input, events, monitor, last)
}

/// The record-dense middle path: one sanitize + community-map per update,
/// shared `Arc` crossing sets ([`InputModule::process_record_events`]).
fn run_record_dense(records: &[BgpRecord]) -> DecodeRun {
    let mut input = input_module();
    let mut gap = GapTracker::new(QUARANTINE);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    let mut last = 0u64;
    for rec in records {
        last = last.max(rec.time);
        gap.observe(rec);
        if !gap.is_usable(rec.collector, rec.peer, rec.time) {
            continue;
        }
        input.process_record_events(rec, &mut interner, |ev| events.push((rec.time, ev)));
    }
    let monitor = AnyMonitor::Single(Monitor::new(KeplerConfig {
        min_stable_paths: 1,
        ..Default::default()
    }));
    finish_run(interner, &input, events, monitor, last)
}

/// The zero-copy wire path: the stream round-trips through an MRT
/// archive, then decodes borrow-only — [`FrameView`] → [`UpdateView`] →
/// [`InputModule::process_update_view_dense`] — with no `BgpUpdate`
/// materialization. Gap tracking still runs on the original records
/// (it is upstream of decode and identical in every path); collector
/// ids re-pair by frame position since MRT does not carry them.
fn zero_copy_events(
    records: &[BgpRecord],
    input: &mut InputModule,
    interner: &mut Interner,
) -> (Vec<(Timestamp, DenseRouteEvent)>, Timestamp) {
    let archive = mrt_archive(records);
    let mut gap = GapTracker::new(QUARANTINE);
    let mut events = Vec::new();
    let mut last = 0u64;
    let mut idx = 0usize;
    let mut off = 0usize;
    while let Some((frame, used)) = FrameView::parse(&archive[off..]).expect("archive well-formed")
    {
        off += used;
        let rec = &records[idx];
        idx += 1;
        assert_eq!(frame.timestamp as Timestamp, rec.time, "frame/record pairing drifted");
        last = last.max(rec.time);
        gap.observe(rec);
        if !gap.is_usable(rec.collector, rec.peer, rec.time) {
            continue;
        }
        // State-change frames carry no routes: `message()` is `None`,
        // exactly as `explode()` yields no elements for them.
        if let Some(msg) = frame.message().expect("round-tripped frame parses") {
            assert_eq!(msg.peer_as, rec.peer.asn);
            let peer = PeerId { asn: msg.peer_as, addr: msg.peer_ip };
            input.process_update_view_dense(rec.collector, peer, &msg.update, interner, |elem| {
                let ev = match elem {
                    DenseElem::Withdraw { route } => DenseRouteEvent::Withdraw { route },
                    DenseElem::Update { route, crossings } => {
                        DenseRouteEvent::Update { route, crossings: crossings.to_vec().into() }
                    }
                };
                events.push((rec.time, ev));
            });
        }
    }
    assert_eq!(idx, records.len(), "every record round-trips as one frame");
    (events, last)
}

fn run_zero_copy(records: &[BgpRecord]) -> DecodeRun {
    let mut input = input_module();
    let mut interner = Interner::new();
    let (events, last) = zero_copy_events(records, &mut input, &mut interner);
    let monitor = AnyMonitor::Single(Monitor::new(KeplerConfig {
        min_stable_paths: 1,
        ..Default::default()
    }));
    finish_run(interner, &input, events, monitor, last)
}

/// Zero-copy decode feeding a sharded monitor.
fn run_zero_copy_sharded(records: &[BgpRecord], shards: usize) -> DecodeRun {
    let mut input = input_module();
    let mut interner = Interner::new();
    let (events, last) = zero_copy_events(records, &mut input, &mut interner);
    let monitor = AnyMonitor::Sharded(ShardedMonitor::new(
        KeplerConfig { min_stable_paths: 1, ..Default::default() },
        shards,
    ));
    finish_run(interner, &input, events, monitor, last)
}

fn assert_runs_identical(a: &DecodeRun, b: &DecodeRun, what: &str) {
    assert_eq!(a.events, b.events, "{what}: dense event stream diverged");
    assert_eq!(a.route_keys, b.route_keys, "{what}: route intern table diverged");
    assert_eq!(a.pop_tags, b.pop_tags, "{what}: pop intern table diverged");
    assert_eq!(a.asns, b.asns, "{what}: asn intern table diverged");
    assert_eq!(a.stats, b.stats, "{what}: input stats diverged");
    assert_eq!(a.outcomes, b.outcomes, "{what}: resolved outcomes diverged");
    assert_eq!(a.baseline, b.baseline, "{what}: baseline size diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three decode paths — materializing explode, record-dense, and
    /// zero-copy MRT — produce bit-identical dense events, interner
    /// tables, statistics and resolved bin outcomes.
    #[test]
    fn decode_paths_are_bit_identical(ops in prop::collection::vec(arb_op(), 1..120)) {
        let recs = records(&ops);
        let reference = run_materializing(&recs);
        let record_dense = run_record_dense(&recs);
        assert_runs_identical(&reference, &record_dense, "record-dense vs materializing");
        let zero_copy = run_zero_copy(&recs);
        assert_runs_identical(&reference, &zero_copy, "zero-copy vs materializing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero-copy decoded events resolve to the same outage reports on a
    /// sharded monitor with 1, 2 or 8 shards as the materializing path
    /// does on a single monitor.
    #[test]
    fn zero_copy_resolves_identically_across_shards(
        ops in prop::collection::vec(arb_op(), 1..100)
    ) {
        let recs = records(&ops);
        let reference = run_materializing(&recs);
        for shards in [1usize, 2, 8] {
            let sharded = run_zero_copy_sharded(&recs, shards);
            prop_assert_eq!(
                &reference.outcomes, &sharded.outcomes,
                "outcome mismatch at {} monitor shards", shards
            );
            prop_assert_eq!(reference.baseline, sharded.baseline);
            prop_assert_eq!(&reference.stats, &sharded.stats);
        }
    }
}

/// An empty archive decodes to nothing, cleanly.
#[test]
fn empty_archive_decodes_to_nothing() {
    let run = run_zero_copy(&[]);
    assert!(run.events.is_empty());
    assert!(run.outcomes.is_empty());
    assert_eq!(run.stats, InputStats::default());
    assert_eq!(run.baseline, 0);
}

/// A deterministic outage scenario survives the MRT round-trip: the
/// zero-copy path sees the same withdrawal burst and reports the same
/// outage as the materializing path.
#[test]
fn zero_copy_detects_the_same_outage() {
    const DAY: u64 = 86_400;
    let t0 = 1_000_000u64;
    let mut recs = Vec::new();
    for i in 0..8u8 {
        recs.push(BgpRecord {
            time: t0,
            collector: CollectorId(i as u16 % 4),
            peer: peer(i % 4),
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(20, i, 0, 0, 16)],
                PathAttributes::with_path_and_communities(
                    AsPath::from_sequence([3356, 101, 200 + i as u32]),
                    vec![Community::new(101, 500)],
                ),
            )),
        });
    }
    for i in 0..6u8 {
        recs.push(BgpRecord {
            time: t0 + 2 * DAY + 300,
            collector: CollectorId(i as u16 % 4),
            peer: peer(i % 4),
            payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(20, i, 0, 0, 16)])),
        });
    }
    let reference = run_materializing(&recs);
    let signals: Vec<_> = reference.outcomes.iter().flat_map(|o| o.signals.iter()).collect();
    assert_eq!(signals.len(), 1, "precondition: one merged signal, got {signals:?}");
    assert_eq!(signals[0].stable_total, 8);
    let zero_copy = run_zero_copy(&recs);
    assert_runs_identical(&reference, &zero_copy, "outage scenario");
}

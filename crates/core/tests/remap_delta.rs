//! Edge-case tests for the delta-compressed remap tables that translate
//! per-worker dense ids into the coordinator's global id space (see
//! `core::ingest`). The remap layer stores `(local_start, global_start,
//! len)` runs instead of one `Vec` entry per id; these tests pin down the
//! boundary conditions the run compression has to survive: id collisions
//! across ingest shards, workers that never see a record, streams pinned
//! to one collector, identities re-interned over hundreds of batches, and
//! remap tables whose runs straddle an ingest-batch boundary mid-bin.

use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
use kepler_bgpstream::{BgpRecord, CollectorId, GapTracker, PeerId, RecordPayload, Timestamp};
use kepler_core::ingest::ParallelIngest;
use kepler_core::input::{InputModule, InputStats};
use kepler_core::intern::{DenseRouteEvent, Interner};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::{ColocationMap, FacilityId};

const QUARANTINE: u64 = 600;

fn dictionary() -> CommunityDictionary {
    let mut d = CommunityDictionary::new();
    for n in 0..8u16 {
        d.insert(Community::new(100 + n, 500), LocationTag::Facility(FacilityId(n as u32 % 5)));
    }
    d
}

fn input_module() -> InputModule {
    InputModule::new(dictionary(), ColocationMap::new())
}

fn peer(p: u8) -> PeerId {
    PeerId { asn: Asn(3356 + (p % 3) as u32), addr: "10.0.0.1".parse().unwrap() }
}

fn announce(t: Timestamp, collector: u16, p: u8, prefix_octet: u8, near: u8, far: u8) -> BgpRecord {
    BgpRecord {
        time: t,
        collector: CollectorId(collector),
        peer: peer(p),
        payload: RecordPayload::Update(BgpUpdate::announce(
            vec![Prefix::v4(20, prefix_octet, 0, 0, 16)],
            PathAttributes::with_path_and_communities(
                AsPath::from_sequence([3356, 100 + near as u32, 200 + far as u32]),
                vec![Community::new(100 + near as u16, 500)],
            ),
        )),
    }
}

/// Serial reference decode: gap → record-dense, collecting events and the
/// final interner.
fn run_serial(records: &[BgpRecord]) -> (Vec<(Timestamp, DenseRouteEvent)>, Interner, InputStats) {
    let mut input = input_module();
    let mut gap = GapTracker::new(QUARANTINE);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    for rec in records {
        gap.observe(rec);
        if !gap.is_usable(rec.collector, rec.peer, rec.time) {
            continue;
        }
        input.process_record_events(rec, &mut interner, |ev| events.push((rec.time, ev)));
    }
    (events, interner, input.stats().clone())
}

/// Parallel decode through `workers` ingest shards, remapped into one
/// global interner by the coordinator.
fn run_parallel(
    records: &[BgpRecord],
    workers: usize,
) -> (Vec<(Timestamp, DenseRouteEvent)>, Interner, InputStats) {
    let template = input_module();
    let mut ingest = ParallelIngest::new(&template, QUARANTINE, workers);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    for rec in records {
        ingest.push(rec);
        ingest.drain_ready(&mut interner, &mut events);
    }
    ingest.finish(&mut interner, &mut events);
    let stats = ingest.stats().clone();
    (events, interner, stats)
}

/// One event with every dense id resolved back to its fat key. Global id
/// *numbering* legitimately differs between serial and parallel runs
/// (the coordinator mints in worker-absorption order, not stream order);
/// what must be identical is the resolved world.
type ResolvedEvent =
    (Timestamp, kepler_core::events::RouteKey, Option<Vec<(LocationTag, Asn, Asn)>>);

fn resolve(events: &[(Timestamp, DenseRouteEvent)], interner: &Interner) -> Vec<ResolvedEvent> {
    events
        .iter()
        .map(|(t, ev)| match ev {
            DenseRouteEvent::Withdraw { route } => (*t, interner.route_key(*route), None),
            DenseRouteEvent::Update { route, crossings } => (
                *t,
                interner.route_key(*route),
                Some(
                    crossings
                        .iter()
                        .map(|c| {
                            (interner.pop_tag(c.pop), interner.asn(c.near), interner.asn(c.far))
                        })
                        .collect(),
                ),
            ),
        })
        .collect()
}

fn assert_same_world(records: &[BgpRecord], workers: usize, what: &str) {
    let (sev, sint, sstats) = run_serial(records);
    let (pev, pint, pstats) = run_parallel(records, workers);
    assert_eq!(
        resolve(&sev, &sint),
        resolve(&pev, &pint),
        "{what}: resolved event stream diverged at {workers} workers"
    );
    assert_eq!(sstats, pstats, "{what}: stats diverged at {workers} workers");
    // Same identity universes: equal table sizes (no duplicate minting),
    // equal contents up to ordering.
    assert_eq!(sint.routes_len(), pint.routes_len(), "{what}: route table size diverged");
    assert_eq!(sint.pops_len(), pint.pops_len(), "{what}: pop table size diverged");
    assert_eq!(sint.asns_len(), pint.asns_len(), "{what}: asn table size diverged");
    let sorted = |v: &mut Vec<kepler_core::events::RouteKey>| v.sort();
    let mut sk = sint.route_keys_since(0).to_vec();
    let mut pk = pint.route_keys_since(0).to_vec();
    sorted(&mut sk);
    sorted(&mut pk);
    assert_eq!(sk, pk, "{what}: route key sets diverged");
}

/// Cross-shard id collisions: every worker mints local id 0, 1, 2… for
/// *different* identities, and the same identity gets *different* local
/// ids on different workers. The remap tables must keep them all straight
/// so the merged stream is bit-identical to the serial one.
#[test]
fn cross_shard_local_id_collisions_unify() {
    let mut recs = Vec::new();
    // The same (pop, near, far) identity through all 8 collectors — every
    // worker's local id 0 region maps to the same few global ids.
    for c in 0..8u16 {
        recs.push(announce(1_000_000, c, (c % 4) as u8, 0, 1, 1));
    }
    // Then per-collector-distinct routes, so local id k means something
    // different on every worker.
    for c in 0..8u16 {
        for k in 0..10u8 {
            recs.push(announce(1_000_001, c, (c % 4) as u8, 10 + k, k % 8, k % 6));
        }
    }
    for workers in [2usize, 4, 8] {
        assert_same_world(&recs, workers, "cross-shard collisions");
    }
    // The shared identity really did collapse: one pop per `near` value
    // used (1, plus those from the distinct routes), not one per worker.
    let (_, interner, _) = run_parallel(&recs, 8);
    assert_eq!(interner.pops_len(), 5, "Facility(n % 5) universe");
}

/// Workers that never receive a record publish empty deltas; the
/// coordinator's remap tables for those shards stay empty without
/// disturbing the others.
#[test]
fn empty_shards_contribute_nothing() {
    // One collector → one worker busy, seven idle.
    let recs: Vec<BgpRecord> =
        (0..40u8).map(|i| announce(1_000_000 + i as u64, 0, 0, i % 24, i % 8, i % 6)).collect();
    assert_same_world(&recs, 8, "empty shards");
    let (events, _, stats) = run_parallel(&recs, 8);
    assert_eq!(events.len(), 40);
    assert_eq!(stats.elems, 40);
}

/// A single-collector stream exercises the longest-run shape: one worker
/// mints every id in absorption order, so each delta should compress to
/// arithmetic runs while staying bit-identical to serial.
#[test]
fn single_collector_stream_is_identical() {
    let mut recs = Vec::new();
    for i in 0..200u32 {
        recs.push(announce(
            1_000_000 + i as u64,
            0,
            (i % 4) as u8,
            (i % 24) as u8,
            (i % 8) as u8,
            (i % 6) as u8,
        ));
    }
    for workers in [1usize, 2, 8] {
        assert_same_world(&recs, workers, "single collector");
    }
}

/// Re-interning stability: the same identities re-announced across many
/// drain cycles (hence many per-worker delta tables) must resolve to the
/// same global ids every time — no duplicates, no shifts.
#[test]
fn reinterned_ids_stay_stable_across_deltas() {
    let template = input_module();
    let mut ingest = ParallelIngest::new(&template, QUARANTINE, 4);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    let mut first_seen: std::collections::HashMap<_, _> = Default::default();
    for round in 0..300u64 {
        for r in 0..4u8 {
            ingest.push(&announce(1_000_000 + round, r as u16, r, r, r, r));
        }
        ingest.drain_ready(&mut interner, &mut events);
        for (_, ev) in events.drain(..) {
            let route = ev.route();
            let key = interner.route_key(route);
            assert_eq!(*first_seen.entry(key).or_insert(route), route, "route id shifted");
        }
    }
    ingest.finish(&mut interner, &mut events);
    assert_eq!(interner.routes_len(), 4, "4 distinct routes, minted once each");
    assert_eq!(interner.pops_len(), 4);
}

/// A remap table crossing a delta-block boundary mid-bin: one collector
/// bursts far more records than one ingest batch holds (batches are 512
/// records), all with fresh identities and all inside one time bin, so a
/// single worker's id space arrives at the coordinator split across
/// several deltas. Run compression must splice them seamlessly.
#[test]
fn remap_survives_batch_boundary_mid_bin() {
    let mut recs = Vec::new();
    // 1 500 records > 2 full batches, single collector, same timestamp
    // (one bin). Prefix/near/far cycle so identities keep minting across
    // the batch boundary: 24 × 8 × 6 value combinations over 1 500
    // records revisit earlier ids from past delta blocks too.
    for i in 0..1_500u32 {
        recs.push(announce(
            1_000_000,
            0,
            (i % 4) as u8,
            (i % 24) as u8,
            (i % 8) as u8,
            (i % 6) as u8,
        ));
    }
    // Second collector trickles in-between batches so the coordinator
    // interleaves absorption order across workers.
    for i in 0..30u32 {
        recs.insert(
            (i * 47) as usize,
            announce(1_000_000, 1, (i % 4) as u8, (i % 24) as u8, (i % 8) as u8, (i % 6) as u8),
        );
    }
    for workers in [2usize, 8] {
        assert_same_world(&recs, workers, "batch boundary");
    }
    let (events, interner, _) = run_parallel(&recs, 8);
    assert_eq!(events.len(), 1_530);
    // Route universe: (collector 0: 4 peers × 24 prefixes alignments) —
    // identity count must match the serial interner exactly (checked
    // above); here we only pin that re-announcements did not re-mint.
    let (_, serial_interner, _) = run_serial(&recs);
    assert_eq!(interner.routes_len(), serial_interner.routes_len());
}

//! Differential property test: a [`ShardedMonitor`] must produce
//! bit-identical resolved [`BinOutcome`]s to a single [`Monitor`] fed the
//! same event stream, for any shard count — the sharded merge is exact,
//! not approximate (per-group numerators and denominators are additive
//! because routes are partitioned by `RouteId`).

use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId};
use kepler_core::config::KeplerConfig;
use kepler_core::events::RouteKey;
use kepler_core::input::{PopCrossing, RouteEvent};
use kepler_core::intern::Interner;
use kepler_core::monitor::{BinOutcome, Monitor};
use kepler_core::shard::ShardedMonitor;
use kepler_docmine::LocationTag;
use kepler_topology::{FacilityId, IxpId};
use proptest::prelude::*;

fn key(i: u8) -> RouteKey {
    RouteKey {
        collector: CollectorId((i % 3) as u16),
        peer: PeerId { asn: Asn(1 + (i % 4) as u32), addr: "10.0.0.1".parse().unwrap() },
        prefix: Prefix::v4(20, i, 0, 0, 16),
    }
}

fn crossing(pop: u8, near: u8, far: u8) -> PopCrossing {
    let tag = if pop.is_multiple_of(2) {
        LocationTag::Facility(FacilityId((pop as u32 / 2) % 4))
    } else {
        LocationTag::Ixp(IxpId((pop as u32 / 2) % 3))
    };
    PopCrossing { pop: tag, near: Asn(100 + (near % 5) as u32), far: Asn(200 + (far % 6) as u32) }
}

#[derive(Debug, Clone)]
enum Op {
    Update { key: u8, crossings: Vec<(u8, u8, u8)> },
    Withdraw { key: u8 },
    Advance { dt: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..4))
            .prop_map(|(key, crossings)| Op::Update { key: key % 24, crossings }),
        any::<u8>().prop_map(|key| Op::Withdraw { key: key % 24 }),
        // Mix of intra-bin jitter and multi-day jumps so streams cross the
        // stability window and produce real deviation bins.
        prop_oneof![1u32..300, 50_000u32..300_000].prop_map(|dt| Op::Advance { dt }),
    ]
}

/// Runs one op stream through a monitor-like observer, resolving outcomes.
fn run_single(ops: &[Op], interner: &mut Interner) -> (Vec<BinOutcome>, usize) {
    let config = KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() };
    let mut m = Monitor::new(config);
    let mut t = 1_000_000u64;
    let mut outcomes = Vec::new();
    for op in ops {
        let dense = match op {
            Op::Update { key: k, crossings } => {
                let cs: Vec<PopCrossing> =
                    crossings.iter().map(|&(p, n, f)| crossing(p, n, f)).collect();
                let ev = interner.intern_event(&RouteEvent::Update {
                    key: key(*k),
                    crossings: cs,
                    hops: vec![],
                });
                m.observe(t, &ev)
            }
            Op::Withdraw { key: k } => {
                let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(*k) });
                m.observe(t, &ev)
            }
            Op::Advance { dt } => {
                t += *dt as u64;
                m.advance_to(t)
            }
        };
        outcomes.extend(dense.iter().map(|o| o.resolve(interner)));
    }
    outcomes.extend(m.advance_to(t + 200_000).iter().map(|o| o.resolve(interner)));
    (outcomes, m.baseline_size())
}

fn run_sharded(ops: &[Op], interner: &mut Interner, shards: usize) -> (Vec<BinOutcome>, usize) {
    let config = KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() };
    let mut m = ShardedMonitor::new(config, shards);
    let mut t = 1_000_000u64;
    let mut outcomes = Vec::new();
    for op in ops {
        let dense = match op {
            Op::Update { key: k, crossings } => {
                let cs: Vec<PopCrossing> =
                    crossings.iter().map(|&(p, n, f)| crossing(p, n, f)).collect();
                let ev = interner.intern_event(&RouteEvent::Update {
                    key: key(*k),
                    crossings: cs,
                    hops: vec![],
                });
                m.observe(t, &ev)
            }
            Op::Withdraw { key: k } => {
                let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(*k) });
                m.observe(t, &ev)
            }
            Op::Advance { dt } => {
                t += *dt as u64;
                m.advance_to(t)
            }
        };
        outcomes.extend(dense.iter().map(|o| o.resolve(interner)));
    }
    outcomes.extend(m.advance_to(t + 200_000).iter().map(|o| o.resolve(interner)));
    (outcomes, m.baseline_size())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical random streams yield identical resolved bin outcomes for
    /// 1, 2 and 8 shards.
    #[test]
    fn sharded_monitor_is_bit_identical(ops in prop::collection::vec(arb_op(), 1..100)) {
        let mut interner = Interner::new();
        let (single, single_baseline) = run_single(&ops, &mut interner);
        for shards in [1usize, 2, 8] {
            let (sharded, sharded_baseline) = run_sharded(&ops, &mut interner, shards);
            prop_assert_eq!(&single, &sharded, "outcome mismatch at {} shards", shards);
            prop_assert_eq!(single_baseline, sharded_baseline, "baseline mismatch at {} shards", shards);
        }
    }
}

/// Deterministic regression case: a multi-group outage spread over shards
/// where one group only crosses the threshold after the merge (its
/// deviated routes live on different shards than most of its stable set).
#[test]
fn cross_shard_group_thresholds_after_merge() {
    let config = KeplerConfig { min_stable_paths: 2, ..KeplerConfig::default() };
    let mut interner = Interner::new();
    let mut single = Monitor::new(config.clone());
    let mut sharded = ShardedMonitor::new(config, 8);
    let t0 = 1_000_000u64;
    // 10 stable routes in one (pop, near) group.
    for i in 0..10u8 {
        let ev = interner.intern_event(&RouteEvent::Update {
            key: key(i),
            crossings: vec![crossing(0, 1, i)],
            hops: vec![],
        });
        single.observe(t0, &ev);
        sharded.observe(t0, &ev);
    }
    let t1 = t0 + 2 * 86_400 + 300;
    single.advance_to(t1);
    sharded.advance_to(t1);
    // Withdraw 2 of 10: 20% > T_fail=10%, but each shard alone sees a
    // fraction computed over its local stable subset.
    for i in 0..2u8 {
        let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
        single.observe(t1 + 5, &ev);
        sharded.observe(t1 + 5, &ev);
    }
    let a: Vec<BinOutcome> =
        single.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
    let b: Vec<BinOutcome> =
        sharded.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
    assert_eq!(a, b);
    let signals: Vec<_> = a.iter().flat_map(|o| o.signals.iter()).collect();
    assert_eq!(signals.len(), 1);
    assert_eq!(signals[0].stable_total, 10, "merged denominator counts every shard");
    assert!((signals[0].fraction - 0.2).abs() < 1e-12);
}

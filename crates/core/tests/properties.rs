//! Property-based tests for the detector's monitoring invariants.

use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId};
use kepler_core::config::KeplerConfig;
use kepler_core::events::RouteKey;
use kepler_core::input::{PopCrossing, RouteEvent};
use kepler_core::intern::Interner;
use kepler_core::monitor::Monitor;
use kepler_docmine::LocationTag;
use kepler_topology::FacilityId;
use proptest::prelude::*;

fn key(i: u8) -> RouteKey {
    RouteKey {
        collector: CollectorId(0),
        peer: PeerId { asn: Asn(1 + (i % 4) as u32), addr: "10.0.0.1".parse().unwrap() },
        prefix: Prefix::v4(20, i, 0, 0, 16),
    }
}

fn crossing(pop: u8, near: u8, far: u8) -> PopCrossing {
    PopCrossing {
        pop: LocationTag::Facility(FacilityId(pop as u32 % 5)),
        near: Asn(100 + (near % 6) as u32),
        far: Asn(200 + (far % 6) as u32),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Update { key: u8, crossings: Vec<(u8, u8, u8)> },
    Withdraw { key: u8 },
    Advance { dt: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..4))
            .prop_map(|(key, crossings)| Op::Update { key: key % 16, crossings }),
        any::<u8>().prop_map(|key| Op::Withdraw { key: key % 16 }),
        (1u32..200_000).prop_map(|dt| Op::Advance { dt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The monitor never panics, bins close in order, signal fractions are
    /// in (0, 1], deviated counts never exceed the stable denominator, and
    /// the baseline only contains keys that currently have a route.
    #[test]
    fn monitor_invariants(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut interner = Interner::new();
        let mut m = Monitor::new(KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() });
        let mut t = 1_000_000u64;
        let mut last_bin = 0u64;
        for op in ops {
            let outcomes = match op {
                Op::Update { key: k, crossings } => {
                    let cs: Vec<PopCrossing> =
                        crossings.iter().map(|&(p, n, f)| crossing(p, n, f)).collect();
                    let ev = interner.intern_event(&RouteEvent::Update {
                        key: key(k),
                        crossings: cs,
                        hops: vec![],
                    });
                    m.observe(t, &ev)
                }
                Op::Withdraw { key: k } => {
                    let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(k) });
                    m.observe(t, &ev)
                }
                Op::Advance { dt } => {
                    t += dt as u64;
                    m.advance_to(t)
                }
            };
            for o in outcomes.iter().map(|o| o.resolve(&interner)) {
                prop_assert!(o.bin_start >= last_bin, "bins close in order");
                last_bin = o.bin_start;
                for s in &o.signals {
                    prop_assert!(s.fraction > 0.0 && s.fraction <= 1.0, "fraction {}", s.fraction);
                    prop_assert!(s.deviated.len() <= s.stable_total);
                    prop_assert!(!s.far_ases.is_empty());
                }
            }
        }
        // Coverage counters are monotone upper bounds on current stability.
        for tag in (0..5).map(|i| LocationTag::Facility(FacilityId(i))) {
            let (n, f, stable) = match interner.lookup_pop(tag) {
                Some(pop) => {
                    let (n, f) = m.pop_coverage(pop);
                    (n, f, m.stable_count(pop))
                }
                None => (0, 0, 0),
            };
            prop_assert!(stable == 0 || (n >= 1 && f >= 1));
            let _ = (n, f, stable);
        }
    }

    /// After promotion, stable counts per PoP equal the number of distinct
    /// keys whose crossings reference the PoP.
    #[test]
    fn stable_counts_match_baseline(keys in prop::collection::btree_set(0u8..16, 1..12)) {
        let mut interner = Interner::new();
        let mut m = Monitor::new(KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() });
        let t0 = 1_000_000u64;
        for &k in &keys {
            let ev = interner.intern_event(&RouteEvent::Update {
                key: key(k),
                crossings: vec![crossing(k % 3, k, k)],
                hops: vec![],
            });
            m.observe(t0, &ev);
        }
        m.advance_to(t0 + 3 * 86_400);
        prop_assert_eq!(m.baseline_size(), keys.len());
        let total: usize = (0..5)
            .filter_map(|i| interner.lookup_pop(LocationTag::Facility(FacilityId(i))))
            .map(|pop| m.stable_count(pop))
            .sum();
        prop_assert_eq!(total, keys.len());
    }
}

//! Close-bin handshake tests for the sharded monitor: the lock-free
//! publication board (`core::shard`) must merge shard reports in a
//! deterministic order no matter how the OS schedules the worker
//! threads, lose no crossings when events race the in-stream close
//! markers, and survive timestamps at the top of the `u64` clock
//! (bin-end arithmetic is checked, never wrapping).

use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload, Timestamp};
use kepler_core::config::KeplerConfig;
use kepler_core::input::InputModule;
use kepler_core::intern::{AsnId, DenseCrossing, DenseRouteEvent, Interner, PopId, RouteId};
use kepler_core::monitor::{BinOutcome, Monitor};
use kepler_core::shard::ShardedMonitor;
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::{ColocationMap, FacilityId};

const DAY: u64 = 86_400;

fn config() -> KeplerConfig {
    KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() }
}

fn dictionary() -> CommunityDictionary {
    let mut d = CommunityDictionary::new();
    for n in 0..8u16 {
        d.insert(Community::new(100 + n, 500), LocationTag::Facility(FacilityId(n as u32 % 5)));
    }
    d
}

fn peer(p: u8) -> PeerId {
    PeerId { asn: Asn(3356 + (p % 3) as u32), addr: "10.0.0.1".parse().unwrap() }
}

fn announce(t: Timestamp, i: u8, near: u8) -> BgpRecord {
    BgpRecord {
        time: t,
        collector: CollectorId(i as u16 % 4),
        peer: peer(i % 4),
        payload: RecordPayload::Update(BgpUpdate::announce(
            vec![Prefix::v4(20, i, 0, 0, 16)],
            PathAttributes::with_path_and_communities(
                AsPath::from_sequence([3356, 100 + near as u32, 200 + i as u32]),
                vec![Community::new(100 + near as u16, 500)],
            ),
        )),
    }
}

fn withdraw(t: Timestamp, i: u8) -> BgpRecord {
    BgpRecord {
        time: t,
        collector: CollectorId(i as u16 % 4),
        peer: peer(i % 4),
        payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(20, i, 0, 0, 16)])),
    }
}

/// An outage world busy enough to put groups on several monitor shards:
/// routes cross two (pop, near) groups, become stable over two days, then
/// most of one group withdraws inside a single bin.
fn outage_stream() -> Vec<BgpRecord> {
    let t0 = 1_000_000u64;
    let mut recs = Vec::new();
    for i in 0..8u8 {
        recs.push(announce(t0, i, 1));
        recs.push(announce(t0 + 1, i + 100, 2)); // second group, distinct routes
    }
    for i in 0..6u8 {
        recs.push(withdraw(t0 + 2 * DAY + 300, i));
    }
    recs
}

/// Decodes the stream serially into dense events (the decode layer is
/// not under test here).
fn dense_events(records: &[BgpRecord]) -> (Vec<(Timestamp, DenseRouteEvent)>, Interner) {
    let mut input = InputModule::new(dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut events = Vec::new();
    for rec in records {
        input.process_record_events(rec, &mut interner, |ev| events.push((rec.time, ev)));
    }
    (events, interner)
}

/// Tiny deterministic PRNG (xorshift64*) for seeded interleavings.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Reference: the whole stream through a single-threaded monitor.
fn single_outcomes(
    events: &[(Timestamp, DenseRouteEvent)],
    interner: &Interner,
    end: Timestamp,
) -> Vec<BinOutcome> {
    let mut monitor = Monitor::new(config());
    let mut out = Vec::new();
    for (t, ev) in events {
        out.extend(monitor.observe(*t, ev).iter().map(|o| o.resolve(interner)));
    }
    out.extend(monitor.advance_to(end).iter().map(|o| o.resolve(interner)));
    out
}

/// The same stream through a sharded monitor, with a seeded interleaving:
/// events are fed in PRNG-sized bursts with coordinator yields and
/// PRNG-placed intermediate `advance_to` calls (each one races close
/// markers through the shard channels against in-flight events).
fn sharded_outcomes_interleaved(
    events: &[(Timestamp, DenseRouteEvent)],
    interner: &Interner,
    end: Timestamp,
    shards: usize,
    seed: u64,
) -> Vec<BinOutcome> {
    let mut rng = Rng(seed | 1);
    let mut monitor = ShardedMonitor::new(config(), shards);
    let mut out = Vec::new();
    let mut fed_until = 0u64;
    for (t, ev) in events {
        out.extend(monitor.observe(*t, ev).iter().map(|o| o.resolve(interner)));
        fed_until = fed_until.max(*t);
        match rng.below(8) {
            // Let shard workers drain so the next close marker races a
            // cold pipeline instead of a full one.
            0 => std::thread::yield_now(),
            // Interpose an advance to a time we have already fed — a
            // semantic no-op that still pushes close markers through
            // every shard channel mid-stream.
            1 => {
                out.extend(monitor.advance_to(fed_until).iter().map(|o| o.resolve(interner)));
            }
            _ => {}
        }
    }
    out.extend(monitor.advance_to(end).iter().map(|o| o.resolve(interner)));
    out
}

/// Identical outcomes across repeated runs (thread scheduling varies),
/// shard counts, seeded burst patterns, and the single-threaded
/// reference: no lost crossings, deterministic merge order.
#[test]
fn seeded_interleavings_are_deterministic_and_lossless() {
    let recs = outage_stream();
    let (events, interner) = dense_events(&recs);
    let end = 1_000_000 + 2 * DAY + 300_000;
    let reference = single_outcomes(&events, &interner, end);
    // Precondition: the scenario actually produces a signal to lose.
    let signals: usize = reference.iter().map(|o| o.signals.len()).sum();
    assert!(signals >= 1, "outage scenario must produce signals, got {signals}");
    for shards in [1usize, 2, 3, 8] {
        for seed in 0..12u64 {
            let sharded = sharded_outcomes_interleaved(&events, &interner, end, shards, seed);
            assert_eq!(reference, sharded, "outcomes diverged at {shards} shards, seed {seed}");
        }
    }
}

/// Back-to-back full runs of the same stream on fresh sharded monitors
/// (fresh worker threads each time, so genuinely different OS schedules)
/// must agree with each other bit-for-bit.
#[test]
fn repeated_runs_merge_in_identical_order() {
    let recs = outage_stream();
    let (events, interner) = dense_events(&recs);
    let end = 1_000_000 + 2 * DAY + 300_000;
    let first = sharded_outcomes_interleaved(&events, &interner, end, 8, 99);
    for _ in 0..8 {
        let again = sharded_outcomes_interleaved(&events, &interner, end, 8, 99);
        assert_eq!(first, again, "same stream, same seed, different outcomes");
    }
}

fn synthetic_update(route: u32) -> DenseRouteEvent {
    DenseRouteEvent::Update {
        route: RouteId(route),
        crossings: vec![DenseCrossing { pop: PopId(0), near: AsnId(0), far: AsnId(1) }].into(),
    }
}

/// Timestamps at the top of the clock: a bin whose end would overflow
/// `u64` can never close, so observing and advancing at `u64::MAX` must
/// neither panic nor wrap — on the single monitor.
#[test]
fn single_monitor_survives_u64_max_timestamps() {
    let mut monitor = Monitor::new(config());
    // Ordinary warm-up far below the top.
    assert!(monitor.observe(1_000_000, &synthetic_update(0)).is_empty());
    // Jump to the top of the clock: terminates (empty-stretch skip) and
    // closes bins without overflow.
    let closed = monitor.advance_to(u64::MAX);
    assert!(!closed.is_empty(), "the warm-up bin closes on the way up");
    // Events inside the final, never-closable bin.
    monitor.observe(u64::MAX - 5, &synthetic_update(1));
    monitor.observe(u64::MAX, &DenseRouteEvent::Withdraw { route: RouteId(1) });
    // Idempotent at the top; nothing further can close.
    assert!(monitor.advance_to(u64::MAX).is_empty());
    assert!(monitor.advance_to(u64::MAX).is_empty());
}

/// Same guard on the sharded monitor: the close-board handshake must not
/// be asked to close a bin whose end overflows, and worker threads shut
/// down cleanly afterwards.
#[test]
fn sharded_monitor_survives_u64_max_timestamps() {
    for shards in [1usize, 3, 8] {
        let mut monitor = ShardedMonitor::new(config(), shards);
        assert!(monitor.observe(1_000_000, &synthetic_update(0)).is_empty());
        let closed = monitor.advance_to(u64::MAX);
        assert!(!closed.is_empty(), "warm-up bin closes ({shards} shards)");
        monitor.observe(u64::MAX - 5, &synthetic_update(1));
        monitor.observe(u64::MAX, &DenseRouteEvent::Withdraw { route: RouteId(1) });
        assert!(monitor.advance_to(u64::MAX).is_empty());
        assert!(monitor.advance_to(u64::MAX).is_empty());
    }
}

/// A monitor whose very first observation sits at `u64::MAX` starts its
/// bin there and stays silent forever — no overflow on the aligned
/// `bin_start` computation either.
#[test]
fn first_event_at_u64_max_is_inert() {
    let mut monitor = Monitor::new(config());
    assert!(monitor.observe(u64::MAX, &synthetic_update(0)).is_empty());
    assert!(monitor.advance_to(u64::MAX).is_empty());
    let mut sharded = ShardedMonitor::new(config(), 4);
    assert!(sharded.observe(u64::MAX, &synthetic_update(0)).is_empty());
    assert!(sharded.advance_to(u64::MAX).is_empty());
}

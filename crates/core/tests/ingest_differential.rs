//! Differential property tests for the parallel ingest pipeline: feeding
//! the same record stream through [`ParallelIngest`] with 1, 2 or 8
//! decode shards must produce bit-identical resolved
//! [`BinOutcome`](kepler_core::monitor::BinOutcome)s, baseline sizes and
//! input statistics to the serial path (gap tracking + explode +
//! per-element dense decode), because the remap layer unifies per-worker
//! id spaces exactly and the coordinator reassembles original stream
//! order.

use kepler_bgp::{
    AsPath, Asn, BgpUpdate, Community, PathAttributes, PeerState, Prefix, StateChange,
};
use kepler_bgpstream::{BgpRecord, CollectorId, GapTracker, PeerId, RecordPayload, Timestamp};
use kepler_core::config::KeplerConfig;
use kepler_core::ingest::ParallelIngest;
use kepler_core::input::{InputModule, InputStats};
use kepler_core::intern::Interner;
use kepler_core::monitor::{BinOutcome, Monitor};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::{ColocationMap, FacilityId};
use proptest::prelude::*;

const QUARANTINE: u64 = 600;

/// Dictionary: community (100+n):500 tags Facility(n % 5) for n in 0..8.
fn dictionary() -> CommunityDictionary {
    let mut d = CommunityDictionary::new();
    for n in 0..8u16 {
        d.insert(Community::new(100 + n, 500), LocationTag::Facility(FacilityId(n as u32 % 5)));
    }
    d
}

fn input_module() -> InputModule {
    InputModule::new(dictionary(), ColocationMap::new())
}

fn peer(p: u8) -> PeerId {
    PeerId {
        asn: Asn(3356 + (p % 3) as u32),
        addr: if p.is_multiple_of(2) {
            "10.0.0.1".parse().unwrap()
        } else {
            "10.0.0.2".parse().unwrap()
        },
    }
}

/// One scripted record: enough dimensions to hit multi-prefix updates,
/// withdraw-only updates, unlocated paths, sanitizer rejects (loops,
/// bogons) and session state changes across several collector sessions.
#[derive(Debug, Clone)]
enum Op {
    Announce {
        collector: u8,
        peer: u8,
        prefixes: Vec<u8>,
        near: u8,
        far: u8,
        tagged: bool,
        looped: bool,
    },
    Withdraw {
        collector: u8,
        peer: u8,
        prefixes: Vec<u8>,
    },
    State {
        collector: u8,
        peer: u8,
        up: bool,
    },
    Advance {
        dt: u32,
    },
}

fn arb_announce() -> impl Strategy<Value = Op> {
    (
        any::<u8>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 1..4),
        any::<u8>(),
        any::<u8>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(collector, peer, prefixes, near, far, tagged, loop_roll)| Op::Announce {
            collector: collector % 4,
            peer: peer % 4,
            prefixes,
            near: near % 8,
            far: far % 6,
            tagged,
            looped: loop_roll < 26, // ~10% of announcements carry a loop
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_announce(),
        arb_announce(),
        arb_announce(),
        (any::<u8>(), any::<u8>(), prop::collection::vec(any::<u8>(), 1..4)).prop_map(
            |(collector, peer, prefixes)| Op::Withdraw {
                collector: collector % 4,
                peer: peer % 4,
                prefixes,
            }
        ),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(collector, peer, up)| Op::State {
            collector: collector % 4,
            peer: peer % 4,
            up
        }),
        prop_oneof![1u32..300, 50_000u32..300_000].prop_map(|dt| Op::Advance { dt }),
        prop_oneof![1u32..300, 50_000u32..300_000].prop_map(|dt| Op::Advance { dt }),
    ]
}

fn records(ops: &[Op]) -> Vec<BgpRecord> {
    let mut t: Timestamp = 1_000_000;
    let mut out = Vec::new();
    for op in ops {
        match op {
            Op::Advance { dt } => t += *dt as u64,
            Op::Announce { collector, peer: p, prefixes, near, far, tagged, looped } => {
                let near_asn = 100 + *near as u32;
                let far_asn = 200 + *far as u32;
                let path = if *looped {
                    // Non-adjacent revisit: rejected by the sanitizer.
                    AsPath::from_sequence([3356, near_asn, far_asn, near_asn])
                } else {
                    AsPath::from_sequence([3356, near_asn, far_asn])
                };
                let communities = if *tagged {
                    vec![Community::new(100 + *near as u16, 500)]
                } else {
                    vec![Community::new(64_000, 1)]
                };
                let attrs = PathAttributes::with_path_and_communities(path, communities);
                // prefix value 255 yields a bogon (0.0.0.0/8 space).
                let announced: Vec<Prefix> = prefixes
                    .iter()
                    .map(|&x| {
                        if x == 255 {
                            Prefix::v4(0, 0, 0, 0, 16)
                        } else {
                            Prefix::v4(20, x % 24, 0, 0, 16)
                        }
                    })
                    .collect();
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::Update(BgpUpdate::announce(announced, attrs)),
                });
            }
            Op::Withdraw { collector, peer: p, prefixes } => {
                let withdrawn: Vec<Prefix> =
                    prefixes.iter().map(|&x| Prefix::v4(20, x % 24, 0, 0, 16)).collect();
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::Update(BgpUpdate::withdraw(withdrawn)),
                });
            }
            Op::State { collector, peer: p, up } => {
                let change = if *up {
                    StateChange { old: PeerState::OpenConfirm, new: PeerState::Established }
                } else {
                    StateChange { old: PeerState::Established, new: PeerState::Idle }
                };
                out.push(BgpRecord {
                    time: t,
                    collector: CollectorId(*collector as u16),
                    peer: peer(*p),
                    payload: RecordPayload::State(change),
                });
            }
        }
    }
    out
}

struct RunResult {
    outcomes: Vec<BinOutcome>,
    baseline: usize,
    stats: InputStats,
}

/// The serial reference: exactly what `Kepler::process_record` does in
/// serial mode (gap → explode → per-element dense decode → monitor).
fn run_serial(records: &[BgpRecord]) -> RunResult {
    let config = KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() };
    let mut input = input_module();
    let mut gap = GapTracker::new(QUARANTINE);
    let mut interner = Interner::new();
    let mut monitor = Monitor::new(config);
    let mut outcomes = Vec::new();
    let mut last = 0u64;
    for rec in records {
        last = last.max(rec.time);
        gap.observe(rec);
        if !gap.is_usable(rec.collector, rec.peer, rec.time) {
            continue;
        }
        for elem in rec.explode() {
            if let Some(ev) = input.process_dense(&elem, &mut interner) {
                outcomes
                    .extend(monitor.observe(elem.time, &ev).iter().map(|o| o.resolve(&interner)));
            }
        }
    }
    outcomes.extend(monitor.advance_to(last + 300_000).iter().map(|o| o.resolve(&interner)));
    RunResult { outcomes, baseline: monitor.baseline_size(), stats: input.stats().clone() }
}

fn run_parallel(records: &[BgpRecord], workers: usize) -> RunResult {
    let config = KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() };
    let template = input_module();
    let mut ingest = ParallelIngest::new(&template, QUARANTINE, workers);
    let mut interner = Interner::new();
    let mut monitor = Monitor::new(config);
    let mut outcomes = Vec::new();
    let mut events = Vec::new();
    let mut last = 0u64;
    for rec in records {
        last = last.max(rec.time);
        ingest.push(rec);
        ingest.drain_ready(&mut interner, &mut events);
        for (t, ev) in events.drain(..) {
            outcomes.extend(monitor.observe(t, &ev).iter().map(|o| o.resolve(&interner)));
        }
    }
    ingest.finish(&mut interner, &mut events);
    for (t, ev) in events.drain(..) {
        outcomes.extend(monitor.observe(t, &ev).iter().map(|o| o.resolve(&interner)));
    }
    outcomes.extend(monitor.advance_to(last + 300_000).iter().map(|o| o.resolve(&interner)));
    RunResult { outcomes, baseline: monitor.baseline_size(), stats: ingest.stats().clone() }
}

/// The full parallel pipeline: parallel ingest fanning into a sharded
/// monitor.
fn run_parallel_sharded(records: &[BgpRecord], workers: usize, shards: usize) -> RunResult {
    let config = KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() };
    let template = input_module();
    let mut ingest = ParallelIngest::new(&template, QUARANTINE, workers);
    let mut interner = Interner::new();
    let mut monitor = kepler_core::shard::ShardedMonitor::new(config, shards);
    let mut outcomes = Vec::new();
    let mut events = Vec::new();
    let mut last = 0u64;
    for rec in records {
        last = last.max(rec.time);
        ingest.push(rec);
        ingest.drain_ready(&mut interner, &mut events);
        for (t, ev) in events.drain(..) {
            outcomes.extend(monitor.observe(t, &ev).iter().map(|o| o.resolve(&interner)));
        }
    }
    ingest.finish(&mut interner, &mut events);
    for (t, ev) in events.drain(..) {
        outcomes.extend(monitor.observe(t, &ev).iter().map(|o| o.resolve(&interner)));
    }
    outcomes.extend(monitor.advance_to(last + 300_000).iter().map(|o| o.resolve(&interner)));
    RunResult { outcomes, baseline: monitor.baseline_size(), stats: ingest.stats().clone() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical random record streams yield identical resolved bin
    /// outcomes, baselines and input statistics for 1, 2 and 8 ingest
    /// shards.
    #[test]
    fn parallel_ingest_is_bit_identical(ops in prop::collection::vec(arb_op(), 1..120)) {
        let recs = records(&ops);
        let serial = run_serial(&recs);
        for workers in [1usize, 2, 8] {
            let parallel = run_parallel(&recs, workers);
            prop_assert_eq!(&serial.outcomes, &parallel.outcomes, "outcome mismatch at {} ingest shards", workers);
            prop_assert_eq!(serial.baseline, parallel.baseline, "baseline mismatch at {} ingest shards", workers);
            prop_assert_eq!(&serial.stats, &parallel.stats, "stats mismatch at {} ingest shards", workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fully parallel pipeline (8 ingest shards → 8 monitor shards,
    /// with in-stream bin-close markers) is still bit-identical to the
    /// all-serial path.
    #[test]
    fn parallel_ingest_with_sharded_monitor_is_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..100)
    ) {
        let recs = records(&ops);
        let serial = run_serial(&recs);
        let parallel = run_parallel_sharded(&recs, 8, 8);
        prop_assert_eq!(&serial.outcomes, &parallel.outcomes);
        prop_assert_eq!(serial.baseline, parallel.baseline);
        prop_assert_eq!(&serial.stats, &parallel.stats);
    }
}

/// Cross-shard id collisions: the same near-end AS and PoP tag observed
/// through different collector sessions (hence different workers) must
/// collapse to one deviation group, exactly as in the serial path.
#[test]
fn cross_shard_identities_unify() {
    const DAY: u64 = 86_400;
    let mut recs = Vec::new();
    let t0 = 1_000_000u64;
    // 8 routes crossing the same (Facility(1), AS 101) pair, spread over
    // 4 collectors (and thus, with 8 workers, several ingest shards).
    for i in 0..8u8 {
        recs.push(BgpRecord {
            time: t0,
            collector: CollectorId(i as u16 % 4),
            peer: peer(i % 4),
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(20, i, 0, 0, 16)],
                PathAttributes::with_path_and_communities(
                    AsPath::from_sequence([3356, 101, 200 + i as u32]),
                    vec![Community::new(101, 500)],
                ),
            )),
        });
    }
    // Past the stability window, withdraw six of them in one bin.
    for i in 0..6u8 {
        recs.push(BgpRecord {
            time: t0 + 2 * DAY + 300,
            collector: CollectorId(i as u16 % 4),
            peer: peer(i % 4),
            payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(20, i, 0, 0, 16)])),
        });
    }
    let serial = run_serial(&recs);
    let signals: Vec<_> = serial.outcomes.iter().flat_map(|o| o.signals.iter()).collect();
    assert_eq!(signals.len(), 1, "precondition: one merged signal, got {signals:?}");
    assert_eq!(signals[0].stable_total, 8);
    for workers in [2usize, 8] {
        let parallel = run_parallel(&recs, workers);
        assert_eq!(serial.outcomes, parallel.outcomes, "workers={workers}");
        let psignals: Vec<_> = parallel.outcomes.iter().flat_map(|o| o.signals.iter()).collect();
        assert_eq!(psignals[0].deviated.len(), 6, "deviations merged across ingest shards");
    }
}

/// A single-collector world pins every record to one worker; the other 7
/// shards stay empty and the pipeline must still finish cleanly.
#[test]
fn single_collector_world_leaves_shards_empty() {
    let mut recs = Vec::new();
    for i in 0..50u8 {
        recs.push(BgpRecord {
            time: 1_000_000 + i as u64,
            collector: CollectorId(0),
            peer: peer(0),
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(20, i % 24, 0, 0, 16)],
                PathAttributes::with_path_and_communities(
                    AsPath::from_sequence([3356, 100 + (i % 8) as u32, 200]),
                    vec![Community::new(100 + (i % 8) as u16, 500)],
                ),
            )),
        });
    }
    let serial = run_serial(&recs);
    let parallel = run_parallel(&recs, 8);
    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(serial.stats, parallel.stats);
    assert_eq!(serial.stats.elems, 50);
}

/// An empty stream (or one that never reaches any worker) finishes
/// without hanging and reports zeroed statistics.
#[test]
fn empty_stream_finishes() {
    let parallel = run_parallel(&[], 8);
    assert!(parallel.outcomes.is_empty());
    assert_eq!(parallel.baseline, 0);
    assert_eq!(parallel.stats, InputStats::default());
}

/// Remap stability under re-interning: the same identities re-announced
/// across many batches (forcing many worker deltas) neither duplicate
/// global ids nor shift them — the global interner ends with exactly the
/// distinct identity counts.
#[test]
fn remap_is_stable_under_reinterning() {
    let template = input_module();
    let mut ingest = ParallelIngest::new(&template, QUARANTINE, 4);
    let mut interner = Interner::new();
    let mut events = Vec::new();
    let mut seen = std::collections::HashMap::new();
    // 3 distinct routes × 600 re-announcements, interleaved, enough to
    // span several ingest batches per worker.
    for round in 0..600u64 {
        for r in 0..3u8 {
            let rec = BgpRecord {
                time: 1_000_000 + round,
                collector: CollectorId(r as u16),
                peer: peer(r),
                payload: RecordPayload::Update(BgpUpdate::announce(
                    vec![Prefix::v4(20, r, 0, 0, 16)],
                    PathAttributes::with_path_and_communities(
                        AsPath::from_sequence([3356, 100 + r as u32, 200]),
                        vec![Community::new(100 + r as u16, 500)],
                    ),
                )),
            };
            ingest.push(&rec);
        }
        ingest.drain_ready(&mut interner, &mut events);
        for (_, ev) in events.drain(..) {
            let route = ev.route();
            let key = interner.route_key(route);
            // The same display key always remaps to the same global id.
            assert_eq!(*seen.entry(key).or_insert(route), route);
        }
    }
    ingest.finish(&mut interner, &mut events);
    events.clear();
    assert_eq!(interner.routes_len(), 3, "route ids never duplicated");
    assert_eq!(interner.pops_len(), 3);
    // ASNs: 3356 is never interned (only crossing members are); the
    // crossings mint 100..103 and 200.
    assert_eq!(interner.asns_len(), 4);
}

//! Property-based tests for the BGP substrate's core data structures.

use kepler_bgp::{AsPath, Asn, Community, Prefix};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32)
            .prop_map(|(a, l)| Prefix::new(IpAddr::V4(Ipv4Addr::from(a)), l).unwrap()),
        (any::<u128>(), 0u8..=128)
            .prop_map(|(a, l)| Prefix::new(IpAddr::V6(Ipv6Addr::from(a)), l).unwrap()),
    ]
}

proptest! {
    /// Display → parse is the identity on canonical prefixes.
    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let back: Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(back, p);
    }

    /// Canonicalization is idempotent: re-wrapping the stored address and
    /// length yields the same prefix.
    #[test]
    fn prefix_canonicalization_idempotent(p in arb_prefix()) {
        let again = Prefix::new(p.addr(), p.len()).unwrap();
        prop_assert_eq!(again, p);
    }

    /// A prefix always contains its own network address and covers itself.
    #[test]
    fn prefix_contains_self(p in arb_prefix()) {
        prop_assert!(p.contains_addr(p.addr()));
        prop_assert!(p.covers(&p));
    }

    /// Coverage is transitive: a ⊇ b and b ⊇ c imply a ⊇ c.
    #[test]
    fn prefix_covers_transitive(addr in any::<u32>(), l1 in 0u8..=32, d2 in 0u8..=8, d3 in 0u8..=8) {
        let l2 = (l1 + d2).min(32);
        let l3 = (l2 + d3).min(32);
        let ip = IpAddr::V4(Ipv4Addr::from(addr));
        let a = Prefix::new(ip, l1).unwrap();
        let b = Prefix::new(ip, l2).unwrap();
        let c = Prefix::new(ip, l3).unwrap();
        prop_assert!(a.covers(&b));
        prop_assert!(b.covers(&c));
        prop_assert!(a.covers(&c));
    }

    /// Community display → parse is the identity.
    #[test]
    fn community_roundtrip(asn in any::<u16>(), value in any::<u16>()) {
        let c = Community::new(asn, value);
        let back: Community = c.to_string().parse().unwrap();
        prop_assert_eq!(back, c);
        prop_assert_eq!(c.asn16(), asn);
        prop_assert_eq!(c.value(), value);
    }

    /// Prepending increases path length by exactly `count` and never
    /// introduces a loop if the path had none and the ASN is fresh.
    #[test]
    fn prepend_invariants(
        seq in prop::collection::vec(1u32..10_000, 1..8),
        count in 1usize..5,
    ) {
        let mut dedup = seq.clone();
        dedup.dedup();
        let mut path = AsPath::from_sequence(dedup.clone());
        let before = path.path_len();
        let fresh = Asn(77_777);
        path.prepend(fresh, count);
        prop_assert_eq!(path.path_len(), before + count);
        prop_assert_eq!(path.head(), Some(fresh));
        // hops() collapses the prepending to one occurrence.
        let hops = path.hops();
        prop_assert_eq!(hops.iter().filter(|a| **a == fresh).count(), 1);
    }

    /// hops() never contains adjacent duplicates and preserves order.
    #[test]
    fn hops_collapse_only_adjacent(seq in prop::collection::vec(1u32..50, 0..20)) {
        let path = AsPath::from_sequence(seq.clone());
        let hops = path.hops();
        for w in hops.windows(2) {
            prop_assert_ne!(w[0], w[1]);
        }
        // Subsequence property: hops appear in seq order.
        let mut it = seq.iter();
        for h in &hops {
            prop_assert!(it.any(|s| Asn(*s) == *h), "hop {h} out of order");
        }
    }

    /// links() has exactly hops-1 entries chaining head to origin.
    #[test]
    fn links_chain(seq in prop::collection::vec(1u32..1000, 2..10)) {
        let path = AsPath::from_sequence(seq);
        let hops = path.hops();
        let links = path.links();
        prop_assert_eq!(links.len() + 1, hops.len());
        for (i, (a, b)) in links.iter().enumerate() {
            prop_assert_eq!(*a, hops[i]);
            prop_assert_eq!(*b, hops[i + 1]);
        }
    }
}

//! Golden-corpus decoder tests: hand-built MRT frames with byte-exact
//! expected parses, malformed frames that must error without panicking,
//! and a deterministic mutation-fuzz loop over the corpus asserting the
//! zero-copy view's equivalence contract — whenever [`UpdateView`]
//! accepts a message, the materializing decoder accepts it too and both
//! agree on every decoded field.

use kepler_bgp::mrt::{
    Bgp4mpMessage, FrameView, MrtBody, MrtError, MrtReader, MrtRecord, MrtWriter,
    BGP4MP_MESSAGE_AS4, MRT_TYPE_BGP4MP,
};
use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};

const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_EXTENDED_LEN: u8 = 0x10;

// ---------------------------------------------------------------- builders

/// One MRT frame: 12-byte header + body.
fn mrt_frame(mrt_type: u16, subtype: u16, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&1_400_000_000u32.to_be_bytes());
    out.extend_from_slice(&mrt_type.to_be_bytes());
    out.extend_from_slice(&subtype.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// A `BGP4MP_MESSAGE_AS4` body (IPv4 peering) wrapping a raw BGP message.
fn bgp4mp_body(peer_as: u32, bgp_msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&peer_as.to_be_bytes());
    out.extend_from_slice(&64_700u32.to_be_bytes()); // local AS
    out.extend_from_slice(&0u16.to_be_bytes()); // interface index
    out.extend_from_slice(&1u16.to_be_bytes()); // AFI: IPv4
    out.extend_from_slice(&[192, 0, 2, 1]); // peer IP
    out.extend_from_slice(&[192, 0, 2, 2]); // local IP
    out.extend_from_slice(bgp_msg);
    out
}

/// A raw BGP UPDATE message from pre-encoded regions.
fn bgp_update_msg(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
    let total = 19 + 2 + withdrawn.len() + 2 + attrs.len() + nlri.len();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&[0xFF; 16]);
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.push(2); // UPDATE
    out.extend_from_slice(&(withdrawn.len() as u16).to_be_bytes());
    out.extend_from_slice(withdrawn);
    out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    out.extend_from_slice(attrs);
    out.extend_from_slice(nlri);
    out
}

/// One path-attribute TLV, choosing the extended-length form when needed.
fn attr(flags: u8, attr_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    if body.len() > 255 {
        out.push(flags | FLAG_EXTENDED_LEN);
        out.push(attr_type);
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    } else {
        out.push(flags);
        out.push(attr_type);
        out.push(body.len() as u8);
    }
    out.extend_from_slice(body);
    out
}

fn as_path_attr(asns: &[u32]) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + asns.len() * 4);
    if !asns.is_empty() {
        body.push(2); // AS_SEQUENCE
        body.push(asns.len() as u8);
        for asn in asns {
            body.extend_from_slice(&asn.to_be_bytes());
        }
    }
    attr(FLAG_TRANSITIVE, 2, &body)
}

/// A full message frame around an UPDATE with the given regions.
fn update_frame(withdrawn: &[u8], attrs: &[u8], nlri: &[u8]) -> Vec<u8> {
    mrt_frame(
        MRT_TYPE_BGP4MP,
        BGP4MP_MESSAGE_AS4,
        &bgp4mp_body(13030, &bgp_update_msg(withdrawn, attrs, nlri)),
    )
}

/// Decodes the frame through both paths and asserts they agree byte-exactly
/// with `expected`, then returns the view-side lazy decode for extra checks.
fn assert_golden(frame: &[u8], expected: &BgpUpdate) {
    // Zero-copy path.
    let (view, used) = FrameView::parse(frame).expect("frame parses").expect("non-empty");
    assert_eq!(used, frame.len(), "frame length accounts for every byte");
    let msg = view.message().expect("message parses").expect("is a message frame");
    assert_eq!(msg.update.materialize().expect("materialize"), *expected);
    let withdrawn: Vec<Prefix> =
        msg.update.withdrawn_v4().chain(msg.update.mp_withdrawn()).collect();
    assert_eq!(withdrawn, expected.withdrawn);
    let announced: Vec<Prefix> =
        msg.update.announced_v4().chain(msg.update.mp_announced()).collect();
    assert_eq!(announced, expected.announced);
    if let Some(attrs) = &expected.attrs {
        let view_asns: Vec<Asn> = msg.update.as_path().asns().collect();
        assert_eq!(view_asns, attrs.as_path.asns().collect::<Vec<_>>());
        let mut hops = Vec::new();
        msg.update.as_path().hops_into(&mut hops);
        assert_eq!(hops, attrs.as_path.hops());
        let comms: Vec<Community> = msg.update.communities().iter().collect();
        assert_eq!(comms, attrs.communities);
    }
    // Materializing reader path.
    let records: Vec<MrtRecord> =
        MrtReader::new(frame).map(|r| r.expect("record decodes")).collect();
    assert_eq!(records.len(), 1);
    let MrtBody::Message(m) = &records[0].body else { panic!("expected message body") };
    assert_eq!(&m.update, expected);
}

/// Both decode paths must reject the frame with a clean error (no panic).
fn assert_rejected(frame: &[u8]) {
    let viewed = FrameView::parse(frame).and_then(|f| match f {
        Some((frame, _)) => frame.message(),
        None => Ok(None),
    });
    assert!(
        matches!(viewed, Err(_) | Ok(None)),
        "zero-copy path must reject or skip, got {viewed:?}"
    );
    let first = MrtReader::new(frame).next();
    assert!(
        matches!(first, Some(Err(_)) | None),
        "materializing reader must reject, got {first:?}"
    );
}

// ------------------------------------------------------------ golden frames

/// A truncated MRT header (fewer than the 12 header bytes) errors cleanly,
/// as does a header whose length field overruns the buffer.
#[test]
fn truncated_header_errors() {
    let valid = update_frame(&[], &as_path_attr(&[3356, 13030]), &[16, 20, 1]);
    for cut in 1..12 {
        assert!(matches!(FrameView::parse(&valid[..cut]), Err(MrtError::UnexpectedEof { .. })));
        assert!(matches!(MrtReader::new(&valid[..cut]).next(), Some(Err(_))));
    }
    // Header promises more body than the buffer holds.
    let torn = &valid[..valid.len() - 5];
    assert!(matches!(FrameView::parse(torn), Err(MrtError::UnexpectedEof { .. })));
    assert!(matches!(MrtReader::new(torn).next(), Some(Err(_))));
}

/// An attribute TLV torn mid-body (its length field promises more bytes
/// than the attribute region holds) errors in both decoders.
#[test]
fn torn_mid_attribute_errors() {
    // AS_PATH claiming a 10-byte body with only 6 present.
    let torn_attr = [FLAG_TRANSITIVE, 2, 10, 2, 1, 0, 0, 13, 6];
    assert_rejected(&update_frame(&[], &torn_attr, &[16, 20, 1]));
    // Extended-length form torn the same way.
    let torn_ext = [FLAG_TRANSITIVE | FLAG_EXTENDED_LEN, 2, 1, 44, 2, 1];
    assert_rejected(&update_frame(&[], &torn_ext, &[16, 20, 1]));
}

/// A zero-length AS_PATH attribute is valid wire data: it decodes to the
/// empty path (and the view agrees it is empty).
#[test]
fn zero_length_as_path_decodes_empty() {
    let mut attrs = attr(FLAG_TRANSITIVE, 1, &[0]); // ORIGIN: IGP
    attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 2, &[])); // empty AS_PATH
    attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 3, &[10, 0, 0, 1])); // NEXT_HOP
    let frame = update_frame(&[], &attrs, &[16, 20, 7]);
    let expected = BgpUpdate {
        withdrawn: vec![],
        attrs: Some(PathAttributes {
            as_path: AsPath::empty(),
            next_hop: "10.0.0.1".parse().unwrap(),
            ..Default::default()
        }),
        announced: vec![Prefix::v4(20, 7, 0, 0, 16)],
    };
    assert_golden(&frame, &expected);
    let (view, _) = FrameView::parse(&frame).unwrap().unwrap();
    let msg = view.message().unwrap().unwrap();
    assert!(msg.update.as_path().is_empty());
    assert!(!msg.update.as_path().has_special_purpose_asn());
}

/// Confederation segments (AS_CONFED_SEQUENCE = 3, AS_CONFED_SET = 4) are
/// outside the implemented subset: both decoders reject them with a clean
/// `BadValue`, never a panic.
#[test]
fn confederation_segments_rejected() {
    for code in [3u8, 4] {
        let mut body = vec![code, 1];
        body.extend_from_slice(&65_100u32.to_be_bytes());
        let frame = update_frame(&[], &attr(FLAG_TRANSITIVE, 2, &body), &[16, 20, 1]);
        let (view, _) = FrameView::parse(&frame).unwrap().unwrap();
        assert!(matches!(view.message(), Err(MrtError::BadValue { .. })), "code {code}");
        assert_rejected(&frame);
    }
}

/// 4-byte ASNs above the 16-bit transition boundary decode exactly — the
/// AS4 wire format always carries 32-bit ASNs, mixed freely with mappable
/// 16-bit values.
#[test]
fn four_byte_asn_transition() {
    let asns = [3356u32, 65_535, 65_536, 396_982, 4_200_000_000];
    let mut attrs = as_path_attr(&asns);
    attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 3, &[10, 0, 0, 1]));
    let frame = update_frame(&[], &attrs, &[16, 20, 9]);
    let expected = BgpUpdate {
        withdrawn: vec![],
        attrs: Some(PathAttributes {
            as_path: AsPath::from_sequence(asns),
            next_hop: "10.0.0.1".parse().unwrap(),
            ..Default::default()
        }),
        announced: vec![Prefix::v4(20, 9, 0, 0, 16)],
    };
    assert_golden(&frame, &expected);
}

/// A COMMUNITY list at the largest size the 16-bit BGP message length
/// admits alongside the path attribute (16 373 communities, extended-
/// length attribute) decodes intact through both paths.
#[test]
fn max_length_community_list() {
    const COUNT: usize = 16_373;
    let mut body = Vec::with_capacity(COUNT * 4);
    let expected_comms: Vec<Community> = (0..COUNT as u32)
        .map(|i| {
            let c = Community((13_030 << 16) | (i & 0xFFFF));
            body.extend_from_slice(&c.0.to_be_bytes());
            c
        })
        .collect();
    let mut attrs = as_path_attr(&[3356, 13030]);
    attrs.extend_from_slice(&attr(FLAG_OPTIONAL | FLAG_TRANSITIVE, 8, &body));
    let msg = bgp_update_msg(&[], &attrs, &[16, 20, 1]);
    assert!(msg.len() <= u16::MAX as usize, "message fits the 16-bit length field");
    let frame = mrt_frame(MRT_TYPE_BGP4MP, BGP4MP_MESSAGE_AS4, &bgp4mp_body(13030, &msg));
    let expected = BgpUpdate {
        withdrawn: vec![],
        attrs: Some(PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030]),
            expected_comms,
        )),
        announced: vec![Prefix::v4(20, 1, 0, 0, 16)],
    };
    assert_golden(&frame, &expected);
}

/// The one place the paths intentionally differ: the materializing decoder
/// resolves duplicate attributes last-wins, while the view rejects them so
/// every accepted message has unambiguous borrowed regions. The contract
/// is one-sided (view Ok ⇒ decode Ok), never the converse.
#[test]
fn duplicate_attribute_is_view_rejected_but_decode_last_wins() {
    let mut attrs = as_path_attr(&[3356, 13030]);
    attrs.extend_from_slice(&as_path_attr(&[3356, 20_940]));
    let frame = update_frame(&[], &attrs, &[16, 20, 1]);
    let (view, _) = FrameView::parse(&frame).unwrap().unwrap();
    assert!(matches!(view.message(), Err(MrtError::BadValue { .. })));
    let records: Vec<MrtRecord> = MrtReader::new(&frame[..]).map(|r| r.unwrap()).collect();
    let MrtBody::Message(m) = &records[0].body else { panic!("expected message") };
    let attrs = m.update.attrs.as_ref().unwrap();
    assert_eq!(attrs.as_path, AsPath::from_sequence([3356, 20_940]), "last attribute wins");
}

// ------------------------------------------------------------- mutation fuzz

/// Tiny deterministic PRNG (xorshift64*), so the fuzz loop needs no
/// dependencies and failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The corpus the fuzz loop mutates: every golden frame above plus a
/// writer-produced frame with both address families and every attribute
/// the encoder can emit.
fn fuzz_corpus() -> Vec<Vec<u8>> {
    let mut rich_attrs = PathAttributes::with_path_and_communities(
        AsPath::from_sequence([3356, 3356, 13030, 20_940]),
        vec![Community::new(13030, 51_904), Community::new(3356, 2001)],
    );
    rich_attrs.med = Some(7);
    rich_attrs.local_pref = Some(120);
    let rich = MrtRecord {
        timestamp: 1_400_000_000,
        body: MrtBody::Message(Bgp4mpMessage {
            peer_as: Asn(13030),
            local_as: Asn(64_700),
            interface_index: 0,
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.2".parse().unwrap(),
            update: BgpUpdate {
                withdrawn: vec![Prefix::v4(100, 0, 0, 0, 8), "2600:1::/32".parse().unwrap()],
                attrs: Some(rich_attrs),
                announced: vec![Prefix::v4(184, 84, 242, 0, 24), "2600:2::/32".parse().unwrap()],
            },
        }),
    };
    let mut rich_bytes = Vec::new();
    MrtWriter::new(&mut rich_bytes).write_record(&rich).unwrap();

    let mut zero_path_attrs = attr(FLAG_TRANSITIVE, 1, &[0]);
    zero_path_attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 2, &[]));
    zero_path_attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 3, &[10, 0, 0, 1]));

    let mut asn4_attrs = as_path_attr(&[3356, 65_535, 65_536, 396_982]);
    asn4_attrs.extend_from_slice(&attr(FLAG_TRANSITIVE, 3, &[10, 0, 0, 1]));

    vec![
        rich_bytes,
        update_frame(&[], &zero_path_attrs, &[16, 20, 7]),
        update_frame(&[16, 20, 3], &[], &[]),
        update_frame(&[], &asn4_attrs, &[16, 20, 9, 8, 10, 24, 20, 11, 0]),
    ]
}

/// When the zero-copy view accepts a mutated message, the materializing
/// decoder must accept it too and every lazily decoded field must match
/// the materialized record. Rejections on either side are fine; panics
/// and divergence are not.
fn check_equivalence(buf: &[u8]) {
    // The materializing reader must never panic, whatever the bytes.
    for rec in MrtReader::new(buf) {
        if rec.is_err() {
            break;
        }
    }
    let Ok(Some((frame, _))) = FrameView::parse(buf) else { return };
    let Ok(Some(msg)) = frame.message() else { return };
    // View accepted ⇒ materializing decode must succeed and agree.
    let update = msg.update.materialize().expect("view Ok implies materializing decode Ok");
    let withdrawn: Vec<Prefix> =
        msg.update.withdrawn_v4().chain(msg.update.mp_withdrawn()).collect();
    assert_eq!(withdrawn, update.withdrawn, "withdrawn prefixes diverged");
    let announced: Vec<Prefix> =
        msg.update.announced_v4().chain(msg.update.mp_announced()).collect();
    assert_eq!(announced, update.announced, "announced prefixes diverged");
    assert_eq!(msg.update.has_announcements(), !update.announced.is_empty());
    // Attributes only matter on announcing messages (the materializing
    // decoder normalizes them to `None` otherwise).
    if let Some(attrs) = &update.attrs {
        let view_asns: Vec<Asn> = msg.update.as_path().asns().collect();
        assert_eq!(view_asns, attrs.as_path.asns().collect::<Vec<_>>(), "AS path diverged");
        let mut hops = Vec::new();
        msg.update.as_path().hops_into(&mut hops);
        assert_eq!(hops, attrs.as_path.hops(), "collapsed hops diverged");
        assert_eq!(msg.update.as_path().is_empty(), attrs.as_path.is_empty());
        assert_eq!(
            msg.update.as_path().has_special_purpose_asn(),
            attrs.as_path.has_special_purpose_asn()
        );
        let comms: Vec<Community> = msg.update.communities().iter().collect();
        assert_eq!(comms, attrs.communities, "communities diverged");
    }
}

#[test]
fn mutated_corpus_never_panics_and_view_implies_decode() {
    let corpus = fuzz_corpus();
    let mut rng = Rng(0x6B65_706C_6572_2E31);
    let mut accepted = 0u32;
    for frame in &corpus {
        for _ in 0..1500 {
            let mut buf = frame.clone();
            match rng.below(4) {
                // Flip 1–4 bits anywhere in the frame.
                0 | 1 => {
                    for _ in 0..1 + rng.below(4) {
                        let i = rng.below(buf.len());
                        buf[i] ^= 1 << rng.below(8);
                    }
                }
                // Truncate to a random length.
                2 => {
                    let keep = rng.below(buf.len());
                    buf.truncate(keep);
                }
                // Overwrite a random byte with a boundary-ish value.
                3 => {
                    let i = rng.below(buf.len());
                    buf[i] = [0x00, 0xFF, 0x7F, 0x80, 0x10][rng.below(5)];
                }
                _ => unreachable!(),
            }
            check_equivalence(&buf);
            if FrameView::parse(&buf).is_ok_and(|f| {
                f.is_some_and(|(frame, _)| frame.message().is_ok_and(|m| m.is_some()))
            }) {
                accepted += 1;
            }
        }
        // The unmutated frame itself must satisfy the contract too.
        check_equivalence(frame);
    }
    // Sanity: the mutation space is not rejecting everything (which would
    // make the equivalence half of the contract vacuous).
    assert!(accepted > 100, "only {accepted} mutated frames were accepted");
}

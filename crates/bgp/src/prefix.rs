//! IPv4/IPv6 prefixes.
//!
//! A [`Prefix`] is always stored in canonical form: the host bits below the
//! prefix length are zeroed, so two prefixes compare equal iff they denote
//! the same address block.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// An IP prefix (address block) of either family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: IpAddr,
    len: u8,
}

/// Errors produced when parsing or constructing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length exceeds the family maximum (32 or 128).
    LengthOutOfRange { len: u8, max: u8 },
    /// The textual form was not `addr/len`.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} out of range (max {max})")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Prefix {
    /// Builds a canonical prefix, zeroing host bits.
    pub fn new(addr: IpAddr, len: u8) -> Result<Self, PrefixError> {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        if len > max {
            return Err(PrefixError::LengthOutOfRange { len, max });
        }
        Ok(Prefix { addr: mask_addr(addr, len), len })
    }

    /// IPv4 convenience constructor; panics on invalid length (tests only).
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Prefix::new(IpAddr::V4(Ipv4Addr::new(a, b, c, d)), len).expect("valid v4 length")
    }

    /// IPv6 convenience constructor from the top 64 bits.
    pub fn v6(high: u64, len: u8) -> Self {
        let bits = (high as u128) << 64;
        Prefix::new(IpAddr::V6(Ipv6Addr::from(bits)), len).expect("valid v6 length")
    }

    /// The canonical network address.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for a zero-length (default-route) prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this is an IPv4 prefix.
    pub fn is_ipv4(&self) -> bool {
        self.addr.is_ipv4()
    }

    /// Whether this is an IPv6 prefix.
    pub fn is_ipv6(&self) -> bool {
        self.addr.is_ipv6()
    }

    /// Whether `ip` falls inside this prefix. Mixed families never match.
    pub fn contains_addr(&self, ip: IpAddr) -> bool {
        match (self.addr, ip) {
            (IpAddr::V4(net), IpAddr::V4(ip)) => {
                let m = v4_mask(self.len);
                u32::from(ip) & m == u32::from(net)
            }
            (IpAddr::V6(net), IpAddr::V6(ip)) => {
                let m = v6_mask(self.len);
                u128::from(ip) & m == u128::from(net)
            }
            _ => false,
        }
    }

    /// Whether `other` is fully covered by `self` (same family, longer or
    /// equal length, same network bits).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains_addr(other.addr)
    }

    /// Classifies the prefix as a *bogon*: special-purpose address space that
    /// must never appear in the global routing table (RFC 6890 and friends).
    pub fn is_bogon(&self) -> bool {
        match self.addr {
            IpAddr::V4(a) => {
                let bits = u32::from(a);
                let in4 = |top: u32, len: u8| bits & v4_mask(len) == top;
                in4(0x0000_0000, 8) // "this network" 0.0.0.0/8
                    || in4(0x0A00_0000, 8) // private 10.0.0.0/8
                    || in4(0x6440_0000, 10) // shared CGN 100.64.0.0/10
                    || in4(0x7F00_0000, 8) // loopback 127.0.0.0/8
                    || in4(0xA9FE_0000, 16) // link local 169.254.0.0/16
                    || in4(0xAC10_0000, 12) // private 172.16.0.0/12
                    || in4(0xC000_0000, 24) // IETF protocol 192.0.0.0/24
                    || in4(0xC000_0200, 24) // TEST-NET-1 192.0.2.0/24
                    || in4(0xC0A8_0000, 16) // private 192.168.0.0/16
                    || in4(0xC612_0000, 15) // benchmarking 198.18.0.0/15
                    || in4(0xC633_6400, 24) // TEST-NET-2 198.51.100.0/24
                    || in4(0xCB00_7100, 24) // TEST-NET-3 203.0.113.0/24
                    || in4(0xE000_0000, 4) // multicast 224.0.0.0/4
                    || in4(0xF000_0000, 4) // reserved 240.0.0.0/4
            }
            IpAddr::V6(a) => {
                let bits = u128::from(a);
                let in6 = |top: u128, len: u8| bits & v6_mask(len) == top;
                in6(0, 127) // ::/128 and ::1/128
                    || in6(0xfc00 << 112, 7) // unique local fc00::/7
                    || in6(0xfe80 << 112, 10) // link local
                    || in6(0xff00 << 112, 8) // multicast
                    || in6(0x2001_0db8 << 96, 32) // documentation
                    || in6(0x0064_ff9b << 96, 96) // 64:ff9b::/96 NAT64 well-known
            }
        }
    }

    /// Whether the prefix length is within conventional global-table filters
    /// (IPv4: /8–/24, IPv6: /16–/48); announcements outside are usually
    /// leaks, blackholes or more-specific hijacks.
    pub fn is_conventional_size(&self) -> bool {
        match self.addr {
            IpAddr::V4(_) => (8..=24).contains(&self.len),
            IpAddr::V6(_) => (16..=48).contains(&self.len),
        }
    }
}

/// Zeroes host bits of `addr` below `len`.
fn mask_addr(addr: IpAddr, len: u8) -> IpAddr {
    match addr {
        IpAddr::V4(a) => IpAddr::V4(Ipv4Addr::from(u32::from(a) & v4_mask(len))),
        IpAddr::V6(a) => IpAddr::V6(Ipv6Addr::from(u128::from(a) & v6_mask(len))),
    }
}

fn v4_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

fn v6_mask(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl std::str::FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| PrefixError::Malformed(s.into()))?;
        let addr: IpAddr = addr.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Malformed(s.into()))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Prefix::v4(10, 1, 2, 3, 16);
        assert_eq!(p.to_string(), "10.1.0.0/16");
        assert_eq!(p, Prefix::v4(10, 1, 0, 0, 16));
    }

    #[test]
    fn parse_roundtrip() {
        let p: Prefix = "184.84.242.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "184.84.242.0/24");
        let p6: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(p6.to_string(), "2001:db8::/32");
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(Prefix::new("1.2.3.4".parse().unwrap(), 33).is_err());
        assert!(Prefix::new("::1".parse().unwrap(), 129).is_err());
        assert!("10.0.0.0/40".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let p = Prefix::v4(192, 0, 2, 0, 24);
        assert!(p.contains_addr("192.0.2.77".parse().unwrap()));
        assert!(!p.contains_addr("192.0.3.1".parse().unwrap()));
        assert!(!p.contains_addr("2001:db8::1".parse().unwrap()));
        assert!(p.covers(&Prefix::v4(192, 0, 2, 128, 25)));
        assert!(!Prefix::v4(192, 0, 2, 128, 25).covers(&p));
    }

    #[test]
    fn default_route_contains_everything_v4() {
        let d = Prefix::v4(0, 0, 0, 0, 0);
        assert!(d.contains_addr("8.8.8.8".parse().unwrap()));
        assert!(d.is_empty());
    }

    #[test]
    fn bogons() {
        assert!(Prefix::v4(10, 20, 0, 0, 16).is_bogon());
        assert!(Prefix::v4(192, 168, 5, 0, 24).is_bogon());
        assert!(Prefix::v4(203, 0, 113, 0, 24).is_bogon());
        assert!(!Prefix::v4(184, 84, 242, 0, 24).is_bogon());
        assert!("fe80::/10".parse::<Prefix>().unwrap().is_bogon());
        assert!("2001:db8:1::/48".parse::<Prefix>().unwrap().is_bogon());
        assert!(!"2600::/24".parse::<Prefix>().unwrap().is_bogon());
    }

    #[test]
    fn conventional_sizes() {
        assert!(Prefix::v4(184, 84, 242, 0, 24).is_conventional_size());
        assert!(!Prefix::v4(184, 84, 242, 0, 28).is_conventional_size());
        assert!("2600::/32".parse::<Prefix>().unwrap().is_conventional_size());
        assert!(!"2600::/64".parse::<Prefix>().unwrap().is_conventional_size());
    }
}

//! BGP UPDATE and session state-change messages as seen by route collectors.

use crate::attrs::PathAttributes;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A decoded BGP UPDATE: withdrawals plus announcements sharing one
/// attribute bundle (RFC 4271 §4.3). Either list may be empty.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// Prefixes explicitly withdrawn.
    pub withdrawn: Vec<Prefix>,
    /// Attributes applying to every announced prefix, absent if the message
    /// is withdraw-only.
    pub attrs: Option<PathAttributes>,
    /// Prefixes announced with `attrs`.
    pub announced: Vec<Prefix>,
}

impl BgpUpdate {
    /// An announcement of `prefixes` with `attrs`.
    pub fn announce(prefixes: Vec<Prefix>, attrs: PathAttributes) -> Self {
        BgpUpdate { withdrawn: Vec::new(), attrs: Some(attrs), announced: prefixes }
    }

    /// A withdraw-only message.
    pub fn withdraw(prefixes: Vec<Prefix>) -> Self {
        BgpUpdate { withdrawn: prefixes, attrs: None, announced: Vec::new() }
    }

    /// True if the message neither announces nor withdraws anything
    /// (a pathological but legal encoding; collectors skip them).
    pub fn is_empty(&self) -> bool {
        self.withdrawn.is_empty() && self.announced.is_empty()
    }
}

/// BGP finite-state-machine states (RFC 4271 §8.2.2), as reported in MRT
/// `BGP4MP_STATE_CHANGE` records. Kepler watches for session flaps on the
/// collector feed itself to avoid mistaking feed gaps for outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeerState {
    /// Initial state.
    Idle,
    /// TCP connection attempt in progress.
    Connect,
    /// Listening after a failed attempt.
    Active,
    /// OPEN sent.
    OpenSent,
    /// OPEN received and acceptable.
    OpenConfirm,
    /// Session up; routes flow.
    Established,
}

impl PeerState {
    /// MRT wire code (1-based per RFC 6396 §4.4.1).
    pub fn code(self) -> u16 {
        match self {
            PeerState::Idle => 1,
            PeerState::Connect => 2,
            PeerState::Active => 3,
            PeerState::OpenSent => 4,
            PeerState::OpenConfirm => 5,
            PeerState::Established => 6,
        }
    }

    /// Decodes the MRT wire code.
    pub fn from_code(c: u16) -> Option<Self> {
        match c {
            1 => Some(PeerState::Idle),
            2 => Some(PeerState::Connect),
            3 => Some(PeerState::Active),
            4 => Some(PeerState::OpenSent),
            5 => Some(PeerState::OpenConfirm),
            6 => Some(PeerState::Established),
            _ => None,
        }
    }
}

impl fmt::Display for PeerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PeerState::Idle => "Idle",
            PeerState::Connect => "Connect",
            PeerState::Active => "Active",
            PeerState::OpenSent => "OpenSent",
            PeerState::OpenConfirm => "OpenConfirm",
            PeerState::Established => "Established",
        };
        f.write_str(s)
    }
}

/// A collector-peer session state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateChange {
    /// State before the transition.
    pub old: PeerState,
    /// State after the transition.
    pub new: PeerState,
}

impl StateChange {
    /// Whether the transition tore an Established session down — the event
    /// that makes Kepler disregard the affected feed's bins.
    pub fn is_session_loss(&self) -> bool {
        self.old == PeerState::Established && self.new != PeerState::Established
    }

    /// Whether the transition brought the session up.
    pub fn is_session_up(&self) -> bool {
        self.new == PeerState::Established && self.old != PeerState::Established
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Prefix;

    #[test]
    fn announce_and_withdraw_shapes() {
        let a =
            BgpUpdate::announce(vec![Prefix::v4(184, 84, 242, 0, 24)], PathAttributes::default());
        assert!(!a.is_empty());
        assert!(a.attrs.is_some());
        let w = BgpUpdate::withdraw(vec![Prefix::v4(184, 84, 242, 0, 24)]);
        assert!(w.attrs.is_none());
        assert!(!w.is_empty());
        assert!(BgpUpdate::default().is_empty());
    }

    #[test]
    fn state_codes_roundtrip() {
        for s in [
            PeerState::Idle,
            PeerState::Connect,
            PeerState::Active,
            PeerState::OpenSent,
            PeerState::OpenConfirm,
            PeerState::Established,
        ] {
            assert_eq!(PeerState::from_code(s.code()), Some(s));
        }
        assert_eq!(PeerState::from_code(0), None);
        assert_eq!(PeerState::from_code(7), None);
    }

    #[test]
    fn session_loss_detection() {
        let down = StateChange { old: PeerState::Established, new: PeerState::Idle };
        assert!(down.is_session_loss());
        assert!(!down.is_session_up());
        let up = StateChange { old: PeerState::OpenConfirm, new: PeerState::Established };
        assert!(up.is_session_up());
        let lateral = StateChange { old: PeerState::Connect, new: PeerState::Active };
        assert!(!lateral.is_session_loss() && !lateral.is_session_up());
    }
}

//! Autonomous system numbers.
//!
//! Kepler discards routes whose AS path contains private or special-purpose
//! ASNs (paper §4.1, citing the Team Cymru bogon reference), so the
//! classification predicates here follow the IANA special-purpose AS number
//! registry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 4-byte autonomous system number (RFC 6793).
///
/// Stored as the full 32-bit value; 2-byte ASNs are the subset `< 65536`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// `AS_TRANS` (RFC 6793): stands in for 4-byte ASNs on 2-byte sessions.
    pub const TRANS: Asn = Asn(23456);

    /// Returns `true` for the RFC 6996 private-use ranges
    /// (64512–65534 and 4200000000–4294967294).
    pub fn is_private(self) -> bool {
        (64512..=65534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }

    /// Returns `true` for the RFC 5398 documentation ranges
    /// (64496–64511 and 65536–65551).
    pub fn is_documentation(self) -> bool {
        (64496..=64511).contains(&self.0) || (65536..=65551).contains(&self.0)
    }

    /// Returns `true` for AS 0 (RFC 7607) and AS 4294967295 (RFC 7300).
    pub fn is_reserved(self) -> bool {
        self.0 == 0 || self.0 == u32::MAX || (65552..=131071).contains(&self.0)
    }

    /// Any ASN that must never appear in a public AS path: private,
    /// documentation, reserved, or `AS_TRANS`.
    pub fn is_special_purpose(self) -> bool {
        self.is_private() || self.is_documentation() || self.is_reserved() || self == Self::TRANS
    }

    /// Whether the ASN is a plausible public, routable ASN.
    pub fn is_public(self) -> bool {
        !self.is_special_purpose()
    }

    /// Whether the ASN fits in two bytes (pre-RFC 6793 space).
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<u16> for Asn {
    fn from(v: u16) -> Self {
        Asn(v as u32)
    }
}

impl std::str::FromStr for Asn {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("AS").or_else(|| s.strip_prefix("as")).unwrap_or(s);
        s.parse::<u32>().map(Asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(4_199_999_999).is_private());
    }

    #[test]
    fn documentation_ranges() {
        assert!(Asn(64496).is_documentation());
        assert!(Asn(65551).is_documentation());
        assert!(!Asn(65552).is_documentation());
    }

    #[test]
    fn reserved() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(u32::MAX).is_reserved());
        assert!(!Asn(3356).is_reserved());
    }

    #[test]
    fn public_asns() {
        for asn in [Asn(3356), Asn(13030), Asn(20940), Asn(6939)] {
            assert!(asn.is_public(), "{asn} should be public");
        }
        assert!(!Asn::TRANS.is_public());
    }

    #[test]
    fn parse_with_and_without_prefix() {
        assert_eq!("AS13030".parse::<Asn>().unwrap(), Asn(13030));
        assert_eq!("13030".parse::<Asn>().unwrap(), Asn(13030));
        assert!("ASx".parse::<Asn>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Asn(13030).to_string(), "AS13030");
    }
}

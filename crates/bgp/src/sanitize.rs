//! Input hygiene (paper §4.1): Kepler "sanitizes the collected paths by
//! discarding paths with AS loops, private ASNs, or special-purpose ASNs",
//! and drops bogon prefixes before any analysis.

use crate::asn::Asn;
use crate::aspath::AsPath;
use crate::message::BgpUpdate;
use crate::prefix::Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a route failed sanitization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The AS path revisits an ASN non-adjacently.
    AsLoop,
    /// The AS path contains a private/reserved/documentation ASN.
    SpecialPurposeAsn,
    /// The prefix is special-purpose address space.
    BogonPrefix,
    /// The prefix length is outside conventional global-table filters.
    UnconventionalPrefixLength,
    /// The AS path is empty on an eBGP feed.
    EmptyAsPath,
    /// The AS path is implausibly long (leak/poisoning artifact).
    ExcessivePathLength,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::AsLoop => "AS loop",
            RejectReason::SpecialPurposeAsn => "special-purpose ASN in path",
            RejectReason::BogonPrefix => "bogon prefix",
            RejectReason::UnconventionalPrefixLength => "unconventional prefix length",
            RejectReason::EmptyAsPath => "empty AS path",
            RejectReason::ExcessivePathLength => "excessive AS path length",
        };
        f.write_str(s)
    }
}

/// Sanitizer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SanitizerConfig {
    /// Maximum collapsed hop count tolerated (default 64: far above any
    /// legitimate path; poisoned/leaked paths can be hundreds long).
    pub max_hops: usize,
    /// Whether to enforce conventional prefix-length filters.
    pub enforce_prefix_length: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig { max_hops: 64, enforce_prefix_length: true }
    }
}

/// Running counters of rejected inputs, for observability.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizeStats {
    /// Routes rejected for AS loops.
    pub as_loops: u64,
    /// Routes rejected for special-purpose ASNs.
    pub special_asns: u64,
    /// Prefixes rejected as bogons.
    pub bogons: u64,
    /// Prefixes rejected for unconventional length.
    pub bad_lengths: u64,
    /// Routes rejected for empty paths.
    pub empty_paths: u64,
    /// Routes rejected for excessive length.
    pub long_paths: u64,
    /// Routes accepted.
    pub accepted: u64,
}

impl SanitizeStats {
    /// Total rejected routes.
    pub fn rejected(&self) -> u64 {
        self.as_loops
            + self.special_asns
            + self.bogons
            + self.bad_lengths
            + self.empty_paths
            + self.long_paths
    }

    fn count(&mut self, r: RejectReason) {
        match r {
            RejectReason::AsLoop => self.as_loops += 1,
            RejectReason::SpecialPurposeAsn => self.special_asns += 1,
            RejectReason::BogonPrefix => self.bogons += 1,
            RejectReason::UnconventionalPrefixLength => self.bad_lengths += 1,
            RejectReason::EmptyAsPath => self.empty_paths += 1,
            RejectReason::ExcessivePathLength => self.long_paths += 1,
        }
    }
}

/// Stateful sanitizer applying the paper's hygiene rules.
#[derive(Debug, Default, Clone)]
pub struct Sanitizer {
    config: SanitizerConfig,
    stats: SanitizeStats,
}

impl Sanitizer {
    /// Builds a sanitizer with the given configuration.
    pub fn new(config: SanitizerConfig) -> Self {
        Sanitizer { config, stats: SanitizeStats::default() }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SanitizeStats {
        &self.stats
    }

    /// Checks a single announced route (path + prefix). `Ok(())` means keep.
    pub fn check_route(&mut self, path: &AsPath, prefix: &Prefix) -> Result<(), RejectReason> {
        let verdict = self.verdict(path, prefix);
        match verdict {
            Ok(()) => self.stats.accepted += 1,
            Err(r) => self.stats.count(r),
        }
        verdict
    }

    /// Checks a prefix alone (withdrawals carry no path).
    pub fn check_prefix(&mut self, prefix: &Prefix) -> Result<(), RejectReason> {
        let v = self.prefix_verdict(prefix);
        match v {
            Ok(()) => self.stats.accepted += 1,
            Err(r) => self.stats.count(r),
        }
        v
    }

    /// Splits an update into the sanitized update (possibly smaller) or
    /// `None` if nothing survives.
    pub fn sanitize_update(&mut self, update: &BgpUpdate) -> Option<BgpUpdate> {
        let withdrawn: Vec<Prefix> =
            update.withdrawn.iter().filter(|p| self.check_prefix(p).is_ok()).copied().collect();
        let (attrs, announced) = match &update.attrs {
            Some(attrs) => {
                let announced: Vec<Prefix> = update
                    .announced
                    .iter()
                    .filter(|p| self.check_route(&attrs.as_path, p).is_ok())
                    .copied()
                    .collect();
                if announced.is_empty() {
                    (None, Vec::new())
                } else {
                    (Some(attrs.clone()), announced)
                }
            }
            None => (None, Vec::new()),
        };
        let out = BgpUpdate { withdrawn, attrs, announced };
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Path-level verdict alone, without touching the counters. `hops`
    /// must be the collapsed hop list of `path` (see
    /// [`AsPath::hops`]); passing it in lets the batch ingest decoder
    /// check a multi-prefix update's path once and then account per
    /// prefix via [`assess_prefix`](Self::assess_prefix) +
    /// [`tally`](Self::tally), with byte-identical statistics to calling
    /// [`check_route`](Self::check_route) per prefix.
    pub fn path_verdict(&self, path: &AsPath, hops: &[Asn]) -> Result<(), RejectReason> {
        self.path_verdict_parts(path.is_empty(), hops, || path.has_special_purpose_asn())
    }

    /// [`path_verdict`](Self::path_verdict) decomposed for callers that
    /// never materialize an [`AsPath`] (the zero-copy wire decoder):
    /// `path_is_empty` is whether the raw path carries no ASNs, and
    /// `has_special` is consulted lazily (only when the loop check
    /// passes) to preserve the exact reject-reason precedence — and thus
    /// byte-identical [`SanitizeStats`] — of the materializing path.
    pub fn path_verdict_parts(
        &self,
        path_is_empty: bool,
        hops: &[Asn],
        has_special: impl FnOnce() -> bool,
    ) -> Result<(), RejectReason> {
        if path_is_empty {
            return Err(RejectReason::EmptyAsPath);
        }
        // Collapsed hop lists are short (median 3-5, capped at max_hops);
        // a quadratic slice scan beats hashing every ASN.
        if hops.iter().enumerate().any(|(i, a)| hops[..i].contains(a)) {
            return Err(RejectReason::AsLoop);
        }
        if has_special() {
            return Err(RejectReason::SpecialPurposeAsn);
        }
        if hops.len() > self.config.max_hops {
            return Err(RejectReason::ExcessivePathLength);
        }
        Ok(())
    }

    /// Prefix-level verdict alone, without touching the counters.
    pub fn assess_prefix(&self, prefix: &Prefix) -> Result<(), RejectReason> {
        self.prefix_verdict(prefix)
    }

    /// Applies one verdict to the counters (one accepted/rejected entry,
    /// exactly what [`check_route`](Self::check_route) /
    /// [`check_prefix`](Self::check_prefix) record internally).
    pub fn tally(&mut self, verdict: Result<(), RejectReason>) {
        match verdict {
            Ok(()) => self.stats.accepted += 1,
            Err(r) => self.stats.count(r),
        }
    }

    fn verdict(&self, path: &AsPath, prefix: &Prefix) -> Result<(), RejectReason> {
        self.path_verdict(path, &path.hops())?;
        self.prefix_verdict(prefix)
    }

    fn prefix_verdict(&self, prefix: &Prefix) -> Result<(), RejectReason> {
        if prefix.is_bogon() {
            return Err(RejectReason::BogonPrefix);
        }
        if self.config.enforce_prefix_length && !prefix.is_conventional_size() {
            return Err(RejectReason::UnconventionalPrefixLength);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::PathAttributes;

    fn ok_prefix() -> Prefix {
        Prefix::v4(184, 84, 242, 0, 24)
    }

    #[test]
    fn accepts_clean_route() {
        let mut s = Sanitizer::default();
        let p = AsPath::from_sequence([3356, 13030, 20940]);
        assert!(s.check_route(&p, &ok_prefix()).is_ok());
        assert_eq!(s.stats().accepted, 1);
    }

    #[test]
    fn rejects_loop() {
        let mut s = Sanitizer::default();
        let p = AsPath::from_sequence([3356, 13030, 3356, 20940]);
        assert_eq!(s.check_route(&p, &ok_prefix()), Err(RejectReason::AsLoop));
        assert_eq!(s.stats().as_loops, 1);
    }

    #[test]
    fn rejects_private_asn() {
        let mut s = Sanitizer::default();
        let p = AsPath::from_sequence([3356, 64512, 20940]);
        assert_eq!(s.check_route(&p, &ok_prefix()), Err(RejectReason::SpecialPurposeAsn));
    }

    #[test]
    fn rejects_bogon_and_bad_length() {
        let mut s = Sanitizer::default();
        let p = AsPath::from_sequence([3356, 20940]);
        assert_eq!(s.check_route(&p, &Prefix::v4(10, 0, 0, 0, 16)), Err(RejectReason::BogonPrefix));
        assert_eq!(
            s.check_route(&p, &Prefix::v4(184, 84, 242, 0, 28)),
            Err(RejectReason::UnconventionalPrefixLength)
        );
        let mut lax =
            Sanitizer::new(SanitizerConfig { enforce_prefix_length: false, ..Default::default() });
        assert!(lax.check_route(&p, &Prefix::v4(184, 84, 242, 0, 28)).is_ok());
    }

    #[test]
    fn rejects_empty_and_long_paths() {
        let mut s = Sanitizer::new(SanitizerConfig { max_hops: 4, ..Default::default() });
        assert_eq!(s.check_route(&AsPath::empty(), &ok_prefix()), Err(RejectReason::EmptyAsPath));
        let long = AsPath::from_sequence([1, 2, 3, 4, 5]);
        assert_eq!(s.check_route(&long, &ok_prefix()), Err(RejectReason::ExcessivePathLength));
    }

    #[test]
    fn sanitize_update_filters_partially() {
        let mut s = Sanitizer::default();
        let attrs =
            PathAttributes::with_path_and_communities(AsPath::from_sequence([3356, 20940]), vec![]);
        let upd = BgpUpdate {
            withdrawn: vec![Prefix::v4(10, 0, 0, 0, 16), Prefix::v4(184, 84, 0, 0, 16)],
            attrs: Some(attrs),
            announced: vec![Prefix::v4(192, 168, 0, 0, 16), Prefix::v4(184, 84, 242, 0, 24)],
        };
        let out = s.sanitize_update(&upd).expect("something survives");
        assert_eq!(out.withdrawn, vec![Prefix::v4(184, 84, 0, 0, 16)]);
        assert_eq!(out.announced, vec![Prefix::v4(184, 84, 242, 0, 24)]);
        assert_eq!(s.stats().bogons, 2);
    }

    #[test]
    fn sanitize_update_drops_everything() {
        let mut s = Sanitizer::default();
        let upd = BgpUpdate::withdraw(vec![Prefix::v4(10, 0, 0, 0, 8)]);
        assert!(s.sanitize_update(&upd).is_none());
    }
}

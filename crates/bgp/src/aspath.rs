//! AS paths with SEQUENCE/SET segments (RFC 4271 §4.3, path attribute
//! `AS_PATH`), including the loop and prepending semantics Kepler's
//! sanitization and path-comparison logic rely on.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsPathSegment {
    /// An ordered sequence of traversed ASNs (`AS_SEQUENCE`).
    Sequence(Vec<Asn>),
    /// An unordered set, produced by route aggregation (`AS_SET`).
    Set(Vec<Asn>),
}

impl AsPathSegment {
    fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// RFC 4271 path-length contribution: each sequence member counts 1,
    /// a whole set counts 1.
    fn hop_len(&self) -> usize {
        match self {
            AsPathSegment::Sequence(v) => v.len(),
            AsPathSegment::Set(v) => usize::from(!v.is_empty()),
        }
    }
}

/// A full AS path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// An empty path (locally originated route).
    pub fn empty() -> Self {
        AsPath { segments: Vec::new() }
    }

    /// Builds a pure-sequence path from `asns`, first element nearest to the
    /// vantage point, last element the origin.
    pub fn from_sequence<I: IntoIterator<Item = u32>>(asns: I) -> Self {
        let seq: Vec<Asn> = asns.into_iter().map(Asn).collect();
        if seq.is_empty() {
            Self::empty()
        } else {
            AsPath { segments: vec![AsPathSegment::Sequence(seq)] }
        }
    }

    /// Builds a path from explicit segments.
    pub fn from_segments(segments: Vec<AsPathSegment>) -> Self {
        AsPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// Iterates every ASN in order of appearance (sets flattened in place).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// The ASNs with consecutive duplicates (prepending) collapsed —
    /// the "hops" Kepler matches community tags against.
    pub fn hops(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::new();
        self.hops_into(&mut out);
        out
    }

    /// [`hops`](Self::hops) into a caller-provided buffer (cleared first),
    /// so the batch ingest decoder pays no per-record allocation.
    pub fn hops_into(&self, out: &mut Vec<Asn>) {
        out.clear();
        for asn in self.asns() {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
    }

    /// The origin AS (last ASN), if the path is non-empty and ends in a
    /// sequence. Paths ending in an AS_SET have ambiguous origins.
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            AsPathSegment::Sequence(v) => v.last().copied(),
            AsPathSegment::Set(_) => None,
        }
    }

    /// The first (nearest) ASN — the collector peer's neighbor.
    pub fn head(&self) -> Option<Asn> {
        self.asns().next()
    }

    /// RFC 4271 path length used in best-path selection.
    pub fn path_len(&self) -> usize {
        self.segments.iter().map(|s| s.hop_len()).sum()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.asns().is_empty())
    }

    /// Whether `asn` appears anywhere in the path.
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Detects AS loops: the same ASN appearing in two non-adjacent
    /// positions (plain prepending is *not* a loop).
    pub fn has_loop(&self) -> bool {
        let hops = self.hops();
        let mut seen = std::collections::HashSet::with_capacity(hops.len());
        hops.iter().any(|a| !seen.insert(*a))
    }

    /// Whether any ASN in the path is private/reserved/documentation.
    pub fn has_special_purpose_asn(&self) -> bool {
        self.asns().any(|a| a.is_special_purpose())
    }

    /// Prepends `asn` `count` times (what an AS does when exporting).
    pub fn prepend(&mut self, asn: Asn, count: usize) {
        if count == 0 {
            return;
        }
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => {
                for _ in 0..count {
                    v.insert(0, asn);
                }
            }
            _ => {
                self.segments.insert(0, AsPathSegment::Sequence(vec![asn; count]));
            }
        }
    }

    /// Returns the neighbor pairs `(near, far)` along the collapsed path,
    /// ordered from the vantage point toward the origin. These are the AS
    /// links whose physical instantiation Kepler localizes.
    pub fn links(&self) -> Vec<(Asn, Asn)> {
        self.hops().windows(2).map(|w| (w[0], w[1])).collect()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            match seg {
                AsPathSegment::Sequence(v) => {
                    for a in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", a.0)?;
                        first = false;
                    }
                }
                AsPathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, a) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", a.0)?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_basics() {
        let p = AsPath::from_sequence([3356, 13030, 20940]);
        assert_eq!(p.origin(), Some(Asn(20940)));
        assert_eq!(p.head(), Some(Asn(3356)));
        assert_eq!(p.path_len(), 3);
        assert!(p.contains(Asn(13030)));
        assert!(!p.contains(Asn(1)));
    }

    #[test]
    fn prepending_is_not_a_loop() {
        let p = AsPath::from_sequence([3356, 13030, 13030, 13030, 20940]);
        assert!(!p.has_loop());
        assert_eq!(p.hops(), vec![Asn(3356), Asn(13030), Asn(20940)]);
    }

    #[test]
    fn detects_real_loop() {
        let p = AsPath::from_sequence([3356, 13030, 3356, 20940]);
        assert!(p.has_loop());
    }

    #[test]
    fn set_counts_one_hop() {
        let p = AsPath::from_segments(vec![
            AsPathSegment::Sequence(vec![Asn(3356), Asn(174)]),
            AsPathSegment::Set(vec![Asn(20940), Asn(16509)]),
        ]);
        assert_eq!(p.path_len(), 3);
        assert_eq!(p.origin(), None);
        assert_eq!(p.to_string(), "3356 174 {20940,16509}");
    }

    #[test]
    fn prepend_front() {
        let mut p = AsPath::from_sequence([13030, 20940]);
        p.prepend(Asn(3356), 2);
        assert_eq!(p.to_string(), "3356 3356 13030 20940");
        assert_eq!(p.path_len(), 4);
    }

    #[test]
    fn prepend_onto_empty() {
        let mut p = AsPath::empty();
        p.prepend(Asn(3356), 1);
        assert_eq!(p.to_string(), "3356");
    }

    #[test]
    fn links_are_adjacent_hop_pairs() {
        let p = AsPath::from_sequence([1, 2, 2, 3]);
        assert_eq!(p.links(), vec![(Asn(1), Asn(2)), (Asn(2), Asn(3))]);
    }

    #[test]
    fn special_purpose_detection() {
        assert!(AsPath::from_sequence([3356, 64512]).has_special_purpose_asn());
        assert!(!AsPath::from_sequence([3356, 13030]).has_special_purpose_asn());
    }
}

//! The BGP path-attribute bundle carried by UPDATE messages.

use crate::aspath::AsPath;
use crate::community::{Community, ExtendedCommunity, LargeCommunity};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

/// The ORIGIN attribute (RFC 4271 §5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Origin {
    /// Learned from an IGP (`0`).
    Igp,
    /// Learned from EGP (`1`).
    Egp,
    /// Unknown provenance (`2`).
    Incomplete,
}

impl Origin {
    /// Wire encoding.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Decodes the wire value.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Origin::Igp),
            1 => Some(Origin::Egp),
            2 => Some(Origin::Incomplete),
            _ => None,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Igp => write!(f, "IGP"),
            Origin::Egp => write!(f, "EGP"),
            Origin::Incomplete => write!(f, "INCOMPLETE"),
        }
    }
}

/// All path attributes Kepler cares about, in decoded form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathAttributes {
    /// ORIGIN.
    pub origin: Origin,
    /// AS_PATH (merged with AS4_PATH where applicable).
    pub as_path: AsPath,
    /// NEXT_HOP for IPv4, or the MP_REACH next hop for IPv6.
    pub next_hop: IpAddr,
    /// MULTI_EXIT_DISC, if present.
    pub med: Option<u32>,
    /// LOCAL_PREF, if present (only meaningful on iBGP feeds).
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE flag.
    pub atomic_aggregate: bool,
    /// Standard RFC 1997 communities — Kepler's primary signal.
    pub communities: Vec<Community>,
    /// RFC 4360 extended communities.
    pub extended_communities: Vec<ExtendedCommunity>,
    /// RFC 8092 large communities.
    pub large_communities: Vec<LargeCommunity>,
}

impl Default for PathAttributes {
    fn default() -> Self {
        PathAttributes {
            origin: Origin::Igp,
            as_path: AsPath::empty(),
            next_hop: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            med: None,
            local_pref: None,
            atomic_aggregate: false,
            communities: Vec::new(),
            extended_communities: Vec::new(),
            large_communities: Vec::new(),
        }
    }
}

impl PathAttributes {
    /// Convenience constructor for the common simulator case.
    pub fn with_path_and_communities(as_path: AsPath, communities: Vec<Community>) -> Self {
        PathAttributes { as_path, communities, ..Default::default() }
    }

    /// Whether any standard community from `asn16` is attached.
    pub fn has_community_from(&self, asn16: u16) -> bool {
        self.communities.iter().any(|c| c.asn16() == asn16)
    }

    /// All communities attached by `asn16`.
    pub fn communities_from(&self, asn16: u16) -> impl Iterator<Item = Community> + '_ {
        self.communities.iter().copied().filter(move |c| c.asn16() == asn16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_codes_roundtrip() {
        for o in [Origin::Igp, Origin::Egp, Origin::Incomplete] {
            assert_eq!(Origin::from_code(o.code()), Some(o));
        }
        assert_eq!(Origin::from_code(7), None);
    }

    #[test]
    fn community_filtering() {
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([13030, 20940]),
            vec![
                Community::new(13030, 51904),
                Community::new(13030, 4006),
                Community::new(2914, 410),
            ],
        );
        assert!(attrs.has_community_from(13030));
        assert!(attrs.has_community_from(2914));
        assert!(!attrs.has_community_from(3356));
        assert_eq!(attrs.communities_from(13030).count(), 2);
    }
}

//! BGP-4 wire encoding shared by BGP4MP message bodies and TABLE_DUMP_V2
//! RIB entries: NLRI prefix encoding, the path-attribute TLV soup, and the
//! UPDATE message framing (RFC 4271 §4.3, RFC 4760 for IPv6 NLRI).

use super::error::MrtError;
use crate::aspath::{AsPath, AsPathSegment};
use crate::attrs::{Origin, PathAttributes};
use crate::community::{Community, ExtendedCommunity, LargeCommunity};
use crate::message::BgpUpdate;
use crate::prefix::Prefix;
use crate::Asn;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Attribute-encoding context: BGP4MP carries full MP_REACH_NLRI, while
/// TABLE_DUMP_V2 RIB entries use the abbreviated form (next hop only,
/// RFC 6396 §4.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AttrMode {
    Bgp4mp,
    TableDumpV2,
}

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_ATOMIC_AGGREGATE: u8 = 6;
const ATTR_COMMUNITY: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;
const ATTR_EXTENDED_COMMUNITIES: u8 = 16;
const ATTR_LARGE_COMMUNITY: u8 = 32;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXTENDED_LEN: u8 = 0x10;

/// Bounds-checked big-endian cursor over a byte slice.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], MrtError> {
        if self.remaining() < n {
            return Err(MrtError::UnexpectedEof { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, MrtError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, MrtError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, MrtError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn ip(&mut self, v6: bool, context: &'static str) -> Result<IpAddr, MrtError> {
        if v6 {
            let b = self.take(16, context)?;
            let mut a = [0u8; 16];
            a.copy_from_slice(b);
            Ok(IpAddr::V6(Ipv6Addr::from(a)))
        } else {
            let b = self.take(4, context)?;
            Ok(IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
        }
    }
}

/// Encodes one NLRI prefix: length byte + minimal octets.
pub(crate) fn encode_nlri_prefix(prefix: &Prefix, out: &mut Vec<u8>) {
    out.push(prefix.len());
    let nbytes = (prefix.len() as usize).div_ceil(8);
    match prefix.addr() {
        IpAddr::V4(a) => out.extend_from_slice(&a.octets()[..nbytes]),
        IpAddr::V6(a) => out.extend_from_slice(&a.octets()[..nbytes]),
    }
}

/// Decodes one NLRI prefix of the given family.
pub(crate) fn decode_nlri_prefix(cur: &mut Cursor<'_>, v6: bool) -> Result<Prefix, MrtError> {
    let len = cur.u8("NLRI prefix length")?;
    let max: u8 = if v6 { 128 } else { 32 };
    if len > max {
        return Err(MrtError::BadValue { context: "NLRI prefix length" });
    }
    let nbytes = (len as usize).div_ceil(8);
    let raw = cur.take(nbytes, "NLRI prefix bytes")?;
    let addr = if v6 {
        let mut a = [0u8; 16];
        a[..nbytes].copy_from_slice(raw);
        IpAddr::V6(Ipv6Addr::from(a))
    } else {
        let mut a = [0u8; 4];
        a[..nbytes].copy_from_slice(raw);
        IpAddr::V4(Ipv4Addr::from(a))
    };
    Prefix::new(addr, len).map_err(|_| MrtError::BadValue { context: "NLRI prefix" })
}

fn push_attr(out: &mut Vec<u8>, flags: u8, attr_type: u8, body: &[u8]) {
    if body.len() > 255 {
        out.push(flags | FLAG_EXTENDED_LEN);
        out.push(attr_type);
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    } else {
        out.push(flags);
        out.push(attr_type);
        out.push(body.len() as u8);
    }
    out.extend_from_slice(body);
}

fn encode_as_path(path: &AsPath) -> Vec<u8> {
    let mut body = Vec::new();
    for seg in path.segments() {
        let (code, asns): (u8, &[Asn]) = match seg {
            AsPathSegment::Set(v) => (1, v),
            AsPathSegment::Sequence(v) => (2, v),
        };
        // RFC 4271 limits a segment to 255 ASNs; split longer ones.
        for chunk in asns.chunks(255) {
            body.push(code);
            body.push(chunk.len() as u8);
            for asn in chunk {
                body.extend_from_slice(&asn.0.to_be_bytes());
            }
        }
    }
    body
}

fn decode_as_path(raw: &[u8]) -> Result<AsPath, MrtError> {
    let mut cur = Cursor::new(raw);
    let mut segments = Vec::new();
    while cur.remaining() > 0 {
        let code = cur.u8("AS_PATH segment type")?;
        let count = cur.u8("AS_PATH segment count")? as usize;
        let mut asns = Vec::with_capacity(count);
        for _ in 0..count {
            asns.push(Asn(cur.u32("AS_PATH asn")?));
        }
        let seg = match code {
            1 => AsPathSegment::Set(asns),
            2 => AsPathSegment::Sequence(asns),
            _ => return Err(MrtError::BadValue { context: "AS_PATH segment type" }),
        };
        // Merge adjacent sequences that we split for the 255 limit.
        match (segments.last_mut(), &seg) {
            (Some(AsPathSegment::Sequence(prev)), AsPathSegment::Sequence(new))
                if !prev.is_empty() && prev.len() % 255 == 0 =>
            {
                prev.extend_from_slice(new);
            }
            _ => segments.push(seg),
        }
    }
    Ok(AsPath::from_segments(segments))
}

/// Encodes the attribute block. `v6_announced`/`v6_withdrawn` go into
/// MP_REACH / MP_UNREACH (BGP4MP mode only; TDV2 RIB entries never carry
/// NLRI inside attributes).
pub(crate) fn encode_attrs(
    attrs: &PathAttributes,
    v6_announced: &[Prefix],
    v6_withdrawn: &[Prefix],
    mode: AttrMode,
) -> Vec<u8> {
    let mut out = Vec::new();
    push_attr(&mut out, FLAG_TRANSITIVE, ATTR_ORIGIN, &[attrs.origin.code()]);
    push_attr(&mut out, FLAG_TRANSITIVE, ATTR_AS_PATH, &encode_as_path(&attrs.as_path));
    if let IpAddr::V4(nh) = attrs.next_hop {
        push_attr(&mut out, FLAG_TRANSITIVE, ATTR_NEXT_HOP, &nh.octets());
    }
    if let Some(med) = attrs.med {
        push_attr(&mut out, FLAG_OPTIONAL, ATTR_MED, &med.to_be_bytes());
    }
    if let Some(lp) = attrs.local_pref {
        push_attr(&mut out, FLAG_TRANSITIVE, ATTR_LOCAL_PREF, &lp.to_be_bytes());
    }
    if attrs.atomic_aggregate {
        push_attr(&mut out, FLAG_TRANSITIVE, ATTR_ATOMIC_AGGREGATE, &[]);
    }
    if !attrs.communities.is_empty() {
        let mut body = Vec::with_capacity(attrs.communities.len() * 4);
        for c in &attrs.communities {
            body.extend_from_slice(&c.0.to_be_bytes());
        }
        push_attr(&mut out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_COMMUNITY, &body);
    }
    match mode {
        AttrMode::Bgp4mp => {
            if !v6_announced.is_empty() {
                let mut body = Vec::new();
                body.extend_from_slice(&2u16.to_be_bytes()); // AFI: IPv6
                body.push(1); // SAFI: unicast
                let nh = match attrs.next_hop {
                    IpAddr::V6(a) => a,
                    IpAddr::V4(_) => Ipv6Addr::UNSPECIFIED,
                };
                body.push(16);
                body.extend_from_slice(&nh.octets());
                body.push(0); // reserved
                for p in v6_announced {
                    encode_nlri_prefix(p, &mut body);
                }
                push_attr(&mut out, FLAG_OPTIONAL, ATTR_MP_REACH, &body);
            }
            if !v6_withdrawn.is_empty() {
                let mut body = Vec::new();
                body.extend_from_slice(&2u16.to_be_bytes());
                body.push(1);
                for p in v6_withdrawn {
                    encode_nlri_prefix(p, &mut body);
                }
                push_attr(&mut out, FLAG_OPTIONAL, ATTR_MP_UNREACH, &body);
            }
        }
        AttrMode::TableDumpV2 => {
            if let IpAddr::V6(nh) = attrs.next_hop {
                let mut body = Vec::with_capacity(17);
                body.push(16);
                body.extend_from_slice(&nh.octets());
                push_attr(&mut out, FLAG_OPTIONAL, ATTR_MP_REACH, &body);
            }
        }
    }
    if !attrs.extended_communities.is_empty() {
        let mut body = Vec::with_capacity(attrs.extended_communities.len() * 8);
        for e in &attrs.extended_communities {
            body.extend_from_slice(&e.0);
        }
        push_attr(&mut out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_EXTENDED_COMMUNITIES, &body);
    }
    if !attrs.large_communities.is_empty() {
        let mut body = Vec::with_capacity(attrs.large_communities.len() * 12);
        for l in &attrs.large_communities {
            body.extend_from_slice(&l.global.to_be_bytes());
            body.extend_from_slice(&l.local1.to_be_bytes());
            body.extend_from_slice(&l.local2.to_be_bytes());
        }
        push_attr(&mut out, FLAG_OPTIONAL | FLAG_TRANSITIVE, ATTR_LARGE_COMMUNITY, &body);
    }
    out
}

/// Result of decoding an attribute block.
pub(crate) struct DecodedAttrs {
    pub attrs: PathAttributes,
    pub v6_announced: Vec<Prefix>,
    pub v6_withdrawn: Vec<Prefix>,
}

/// Decodes an attribute block; unknown attribute types are skipped.
pub(crate) fn decode_attrs(raw: &[u8], mode: AttrMode) -> Result<DecodedAttrs, MrtError> {
    let mut cur = Cursor::new(raw);
    let mut attrs = PathAttributes::default();
    let mut v6_announced = Vec::new();
    let mut v6_withdrawn = Vec::new();
    let mut saw_next_hop = false;
    let mut mp_next_hop: Option<IpAddr> = None;

    while cur.remaining() > 0 {
        let flags = cur.u8("attribute flags")?;
        let attr_type = cur.u8("attribute type")?;
        let len = if flags & FLAG_EXTENDED_LEN != 0 {
            cur.u16("attribute extended length")? as usize
        } else {
            cur.u8("attribute length")? as usize
        };
        let body = cur.take(len, "attribute body")?;
        match attr_type {
            ATTR_ORIGIN => {
                let code = *body.first().ok_or(MrtError::BadValue { context: "ORIGIN" })?;
                attrs.origin =
                    Origin::from_code(code).ok_or(MrtError::BadValue { context: "ORIGIN code" })?;
            }
            ATTR_AS_PATH => attrs.as_path = decode_as_path(body)?,
            ATTR_NEXT_HOP => {
                if body.len() != 4 {
                    return Err(MrtError::BadValue { context: "NEXT_HOP length" });
                }
                attrs.next_hop = IpAddr::V4(Ipv4Addr::new(body[0], body[1], body[2], body[3]));
                saw_next_hop = true;
            }
            ATTR_MED => {
                if body.len() != 4 {
                    return Err(MrtError::BadValue { context: "MED length" });
                }
                attrs.med = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            ATTR_LOCAL_PREF => {
                if body.len() != 4 {
                    return Err(MrtError::BadValue { context: "LOCAL_PREF length" });
                }
                attrs.local_pref = Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
            }
            ATTR_ATOMIC_AGGREGATE => attrs.atomic_aggregate = true,
            ATTR_COMMUNITY => {
                if body.len() % 4 != 0 {
                    return Err(MrtError::BadValue { context: "COMMUNITY length" });
                }
                attrs.communities = body
                    .chunks_exact(4)
                    .map(|c| Community(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
            }
            ATTR_MP_REACH => match mode {
                AttrMode::Bgp4mp => {
                    let mut mp = Cursor::new(body);
                    let afi = mp.u16("MP_REACH AFI")?;
                    let _safi = mp.u8("MP_REACH SAFI")?;
                    let nhlen = mp.u8("MP_REACH next-hop length")? as usize;
                    let nh_raw = mp.take(nhlen, "MP_REACH next hop")?;
                    if nhlen >= 16 {
                        let mut a = [0u8; 16];
                        a.copy_from_slice(&nh_raw[..16]);
                        mp_next_hop = Some(IpAddr::V6(Ipv6Addr::from(a)));
                    }
                    mp.u8("MP_REACH reserved")?;
                    let v6 = afi == 2;
                    while mp.remaining() > 0 {
                        v6_announced.push(decode_nlri_prefix(&mut mp, v6)?);
                    }
                }
                AttrMode::TableDumpV2 => {
                    let mut mp = Cursor::new(body);
                    let nhlen = mp.u8("TDV2 MP_REACH next-hop length")? as usize;
                    let nh_raw = mp.take(nhlen, "TDV2 MP_REACH next hop")?;
                    if nhlen >= 16 {
                        let mut a = [0u8; 16];
                        a.copy_from_slice(&nh_raw[..16]);
                        mp_next_hop = Some(IpAddr::V6(Ipv6Addr::from(a)));
                    }
                }
            },
            ATTR_MP_UNREACH => {
                let mut mp = Cursor::new(body);
                let afi = mp.u16("MP_UNREACH AFI")?;
                let _safi = mp.u8("MP_UNREACH SAFI")?;
                let v6 = afi == 2;
                while mp.remaining() > 0 {
                    v6_withdrawn.push(decode_nlri_prefix(&mut mp, v6)?);
                }
            }
            ATTR_EXTENDED_COMMUNITIES => {
                if body.len() % 8 != 0 {
                    return Err(MrtError::BadValue { context: "EXTENDED_COMMUNITIES length" });
                }
                attrs.extended_communities = body
                    .chunks_exact(8)
                    .map(|c| {
                        let mut a = [0u8; 8];
                        a.copy_from_slice(c);
                        ExtendedCommunity(a)
                    })
                    .collect();
            }
            ATTR_LARGE_COMMUNITY => {
                if body.len() % 12 != 0 {
                    return Err(MrtError::BadValue { context: "LARGE_COMMUNITY length" });
                }
                attrs.large_communities = body
                    .chunks_exact(12)
                    .map(|c| {
                        LargeCommunity::new(
                            u32::from_be_bytes([c[0], c[1], c[2], c[3]]),
                            u32::from_be_bytes([c[4], c[5], c[6], c[7]]),
                            u32::from_be_bytes([c[8], c[9], c[10], c[11]]),
                        )
                    })
                    .collect();
            }
            _ => {} // unknown attribute: skip (we already consumed the body)
        }
    }
    if !saw_next_hop {
        if let Some(nh) = mp_next_hop {
            attrs.next_hop = nh;
        }
    }
    Ok(DecodedAttrs { attrs, v6_announced, v6_withdrawn })
}

/// Encodes a full BGP UPDATE message (marker + header + body).
pub(crate) fn encode_bgp_update(update: &BgpUpdate) -> Vec<u8> {
    let (w4, w6): (Vec<&Prefix>, Vec<&Prefix>) = update.withdrawn.iter().partition(|p| p.is_ipv4());
    let (a4, a6): (Vec<&Prefix>, Vec<&Prefix>) = update.announced.iter().partition(|p| p.is_ipv4());

    let mut withdrawn_bytes = Vec::new();
    for p in &w4 {
        encode_nlri_prefix(p, &mut withdrawn_bytes);
    }

    let attr_bytes = match &update.attrs {
        Some(attrs) => {
            let v6a: Vec<Prefix> = a6.iter().map(|p| **p).collect();
            let v6w: Vec<Prefix> = w6.iter().map(|p| **p).collect();
            encode_attrs(attrs, &v6a, &v6w, AttrMode::Bgp4mp)
        }
        None => {
            if !w6.is_empty() {
                // Withdraw-only IPv6 update: MP_UNREACH with no other attrs.
                let v6w: Vec<Prefix> = w6.iter().map(|p| **p).collect();
                let mut body = Vec::new();
                body.extend_from_slice(&2u16.to_be_bytes());
                body.push(1);
                for p in &v6w {
                    encode_nlri_prefix(p, &mut body);
                }
                let mut out = Vec::new();
                push_attr(&mut out, FLAG_OPTIONAL, ATTR_MP_UNREACH, &body);
                out
            } else {
                Vec::new()
            }
        }
    };

    let mut nlri = Vec::new();
    for p in &a4 {
        encode_nlri_prefix(p, &mut nlri);
    }

    let body_len = 2 + withdrawn_bytes.len() + 2 + attr_bytes.len() + nlri.len();
    let total = 19 + body_len;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&[0xFF; 16]);
    out.extend_from_slice(&(total as u16).to_be_bytes());
    out.push(2); // message type: UPDATE
    out.extend_from_slice(&(withdrawn_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(&withdrawn_bytes);
    out.extend_from_slice(&(attr_bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(&attr_bytes);
    out.extend_from_slice(&nlri);
    out
}

/// Decodes a full BGP UPDATE message (marker + header + body).
pub(crate) fn decode_bgp_update(cur: &mut Cursor<'_>) -> Result<BgpUpdate, MrtError> {
    let marker = cur.take(16, "BGP marker")?;
    if marker.iter().any(|&b| b != 0xFF) {
        return Err(MrtError::BadMarker);
    }
    let total = cur.u16("BGP message length")? as usize;
    if total < 19 {
        return Err(MrtError::BadValue { context: "BGP message length" });
    }
    let msg_type = cur.u8("BGP message type")?;
    if msg_type != 2 {
        return Err(MrtError::BadValue { context: "BGP message type (expected UPDATE)" });
    }
    let body = cur.take(total - 19, "BGP message body")?;
    let mut bc = Cursor::new(body);

    let wlen = bc.u16("withdrawn routes length")? as usize;
    let wraw = bc.take(wlen, "withdrawn routes")?;
    let mut wcur = Cursor::new(wraw);
    let mut withdrawn = Vec::new();
    while wcur.remaining() > 0 {
        withdrawn.push(decode_nlri_prefix(&mut wcur, false)?);
    }

    let alen = bc.u16("path attributes length")? as usize;
    let araw = bc.take(alen, "path attributes")?;
    let decoded = decode_attrs(araw, AttrMode::Bgp4mp)?;

    let mut announced = Vec::new();
    while bc.remaining() > 0 {
        announced.push(decode_nlri_prefix(&mut bc, false)?);
    }
    announced.extend(decoded.v6_announced);
    withdrawn.extend(decoded.v6_withdrawn);

    // A message with no announcements carries no meaningful attribute
    // bundle (withdraw-only); normalize so round-trips compare equal.
    let attrs = if announced.is_empty() { None } else { Some(decoded.attrs) };
    Ok(BgpUpdate { withdrawn, attrs, announced })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;

    #[test]
    fn nlri_prefix_roundtrip_various_lengths() {
        for len in [0u8, 1, 7, 8, 9, 16, 17, 24, 32] {
            let p = Prefix::new("203.5.113.0".parse().unwrap(), len).unwrap();
            let mut buf = Vec::new();
            encode_nlri_prefix(&p, &mut buf);
            assert_eq!(buf.len(), 1 + (len as usize).div_ceil(8));
            let mut cur = Cursor::new(&buf);
            assert_eq!(decode_nlri_prefix(&mut cur, false).unwrap(), p);
        }
    }

    #[test]
    fn nlri_rejects_overlong() {
        let buf = [40u8, 1, 2, 3, 4, 5];
        let mut cur = Cursor::new(&buf);
        assert!(decode_nlri_prefix(&mut cur, false).is_err());
    }

    #[test]
    fn long_as_path_splits_and_merges() {
        let path = AsPath::from_sequence((1..=600u32).collect::<Vec<_>>());
        let body = encode_as_path(&path);
        let decoded = decode_as_path(&body).unwrap();
        assert_eq!(decoded, path);
    }

    #[test]
    fn update_with_both_families() {
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([13030, 20940]),
            vec![Community::new(13030, 51904)],
        );
        let upd = BgpUpdate {
            withdrawn: vec![Prefix::v4(100, 0, 0, 0, 8), "2600:1::/32".parse().unwrap()],
            attrs: Some(attrs),
            announced: vec![Prefix::v4(184, 84, 242, 0, 24), "2600:2::/32".parse().unwrap()],
        };
        let bytes = encode_bgp_update(&upd);
        let mut cur = Cursor::new(&bytes);
        let back = decode_bgp_update(&mut cur).unwrap();
        assert_eq!(back, upd);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn withdraw_only_v6() {
        let upd = BgpUpdate::withdraw(vec!["2600:9::/32".parse().unwrap()]);
        let bytes = encode_bgp_update(&upd);
        let mut cur = Cursor::new(&bytes);
        assert_eq!(decode_bgp_update(&mut cur).unwrap(), upd);
    }

    #[test]
    fn bad_marker_detected() {
        let upd = BgpUpdate::withdraw(vec![Prefix::v4(184, 84, 0, 0, 16)]);
        let mut bytes = encode_bgp_update(&upd);
        bytes[3] = 0;
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(decode_bgp_update(&mut cur), Err(MrtError::BadMarker)));
    }

    #[test]
    fn unknown_attribute_is_skipped() {
        let attrs =
            PathAttributes::with_path_and_communities(AsPath::from_sequence([1, 2]), vec![]);
        let mut raw = encode_attrs(&attrs, &[], &[], AttrMode::Bgp4mp);
        // Append an unknown optional-transitive attribute type 99.
        raw.extend_from_slice(&[FLAG_OPTIONAL | FLAG_TRANSITIVE, 99, 2, 0xAB, 0xCD]);
        let decoded = decode_attrs(&raw, AttrMode::Bgp4mp).unwrap();
        assert_eq!(decoded.attrs.as_path, attrs.as_path);
    }

    #[test]
    fn tdv2_mode_encodes_abbreviated_v6_next_hop() {
        let attrs = PathAttributes {
            next_hop: "2001:7f8::1".parse::<std::net::Ipv6Addr>().unwrap().into(),
            as_path: AsPath::from_sequence([3356, 20940]),
            ..Default::default()
        };
        let raw = encode_attrs(&attrs, &[], &[], AttrMode::TableDumpV2);
        let decoded = decode_attrs(&raw, AttrMode::TableDumpV2).unwrap();
        assert_eq!(decoded.attrs.next_hop, attrs.next_hop);
    }
}

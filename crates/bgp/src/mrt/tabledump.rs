//! TABLE_DUMP_V2 record bodies (RFC 6396 §4.3): periodic RIB snapshots.
//!
//! Kepler uses RIB snapshots to seed its stable-path baseline without
//! waiting two days of updates when it starts on archived data.

use super::error::MrtError;
use super::wire::{
    decode_attrs, decode_nlri_prefix, encode_attrs, encode_nlri_prefix, AttrMode, Cursor,
};
use crate::attrs::PathAttributes;
use crate::prefix::Prefix;
use crate::Asn;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// One collector peer in the PEER_INDEX_TABLE.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerEntry {
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The peer's address.
    pub addr: IpAddr,
    /// The peer's ASN.
    pub asn: Asn,
}

/// The PEER_INDEX_TABLE record heading every TABLE_DUMP_V2 snapshot; RIB
/// entries refer to peers by index into this table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerIndexTable {
    /// The collector's BGP identifier.
    pub collector_id: u32,
    /// Optional view name.
    pub view_name: String,
    /// The peer table.
    pub peers: Vec<PeerEntry>,
}

/// One peer's RIB entry for a prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    /// Index into the preceding [`PeerIndexTable`].
    pub peer_index: u16,
    /// When the route was originated (Unix seconds).
    pub originated_time: u32,
    /// The route's attributes.
    pub attrs: PathAttributes,
}

/// All RIB entries for one prefix (`RIB_IPV4_UNICAST` or
/// `RIB_IPV6_UNICAST`, chosen by the prefix family).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibPrefixEntries {
    /// Monotonic sequence number within the dump.
    pub sequence: u32,
    /// The prefix these entries describe.
    pub prefix: Prefix,
    /// Per-peer entries.
    pub entries: Vec<RibEntry>,
}

impl PeerIndexTable {
    /// Serializes the record body.
    pub fn encode_body(&self) -> Result<Vec<u8>, MrtError> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.collector_id.to_be_bytes());
        let name = self.view_name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(MrtError::BadValue { context: "view name length" });
        }
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.peers.len() as u16).to_be_bytes());
        for p in &self.peers {
            // peer type: bit 0 = IPv6 address, bit 1 = 4-byte ASN (always).
            let mut t = 0b10u8;
            if p.addr.is_ipv6() {
                t |= 0b01;
            }
            out.push(t);
            out.extend_from_slice(&p.bgp_id.to_be_bytes());
            match p.addr {
                IpAddr::V4(a) => out.extend_from_slice(&a.octets()),
                IpAddr::V6(a) => out.extend_from_slice(&a.octets()),
            }
            out.extend_from_slice(&p.asn.0.to_be_bytes());
        }
        Ok(out)
    }

    /// Parses a record body.
    pub fn decode_body(raw: &[u8]) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(raw);
        let collector_id = cur.u32("collector BGP id")?;
        let nlen = cur.u16("view name length")? as usize;
        let name = cur.take(nlen, "view name")?;
        let view_name = String::from_utf8(name.to_vec())
            .map_err(|_| MrtError::BadValue { context: "view name utf-8" })?;
        let count = cur.u16("peer count")? as usize;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            let t = cur.u8("peer type")?;
            let bgp_id = cur.u32("peer BGP id")?;
            let addr = cur.ip(t & 0b01 != 0, "peer address")?;
            let asn = if t & 0b10 != 0 {
                Asn(cur.u32("peer ASN")?)
            } else {
                Asn(cur.u16("peer ASN (2-byte)")? as u32)
            };
            peers.push(PeerEntry { bgp_id, addr, asn });
        }
        Ok(PeerIndexTable { collector_id, view_name, peers })
    }
}

impl RibPrefixEntries {
    /// The TABLE_DUMP_V2 subtype this record serializes as.
    pub fn subtype(&self) -> u16 {
        if self.prefix.is_ipv4() {
            super::TDV2_RIB_IPV4_UNICAST
        } else {
            super::TDV2_RIB_IPV6_UNICAST
        }
    }

    /// Serializes the record body.
    pub fn encode_body(&self) -> Result<Vec<u8>, MrtError> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.sequence.to_be_bytes());
        encode_nlri_prefix(&self.prefix, &mut out);
        out.extend_from_slice(&(self.entries.len() as u16).to_be_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.peer_index.to_be_bytes());
            out.extend_from_slice(&e.originated_time.to_be_bytes());
            let attrs = encode_attrs(&e.attrs, &[], &[], AttrMode::TableDumpV2);
            if attrs.len() > u16::MAX as usize {
                return Err(MrtError::BadValue { context: "RIB entry attribute length" });
            }
            out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
            out.extend_from_slice(&attrs);
        }
        Ok(out)
    }

    /// Parses a record body; `v6` selects the address family (from the MRT
    /// subtype).
    pub fn decode_body(raw: &[u8], v6: bool) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(raw);
        let sequence = cur.u32("RIB sequence")?;
        let prefix = decode_nlri_prefix(&mut cur, v6)?;
        let count = cur.u16("RIB entry count")? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let peer_index = cur.u16("RIB peer index")?;
            let originated_time = cur.u32("RIB originated time")?;
            let alen = cur.u16("RIB attribute length")? as usize;
            let araw = cur.take(alen, "RIB attributes")?;
            let decoded = decode_attrs(araw, AttrMode::TableDumpV2)?;
            entries.push(RibEntry { peer_index, originated_time, attrs: decoded.attrs });
        }
        Ok(RibPrefixEntries { sequence, prefix, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::community::Community;

    #[test]
    fn peer_index_roundtrip_mixed_families() {
        let t = PeerIndexTable {
            collector_id: 0x0A00_0001,
            view_name: "rrc00".into(),
            peers: vec![
                PeerEntry { bgp_id: 1, addr: "192.0.2.1".parse().unwrap(), asn: Asn(13030) },
                PeerEntry { bgp_id: 2, addr: "2001:7f8::2".parse().unwrap(), asn: Asn(20940) },
            ],
        };
        let body = t.encode_body().unwrap();
        assert_eq!(PeerIndexTable::decode_body(&body).unwrap(), t);
    }

    #[test]
    fn rib_v4_roundtrip() {
        let r = RibPrefixEntries {
            sequence: 42,
            prefix: Prefix::v4(184, 84, 242, 0, 24),
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 1_431_500_000,
                attrs: PathAttributes::with_path_and_communities(
                    AsPath::from_sequence([13030, 20940]),
                    vec![Community::new(13030, 51904)],
                ),
            }],
        };
        assert_eq!(r.subtype(), super::super::TDV2_RIB_IPV4_UNICAST);
        let body = r.encode_body().unwrap();
        assert_eq!(RibPrefixEntries::decode_body(&body, false).unwrap(), r);
    }

    #[test]
    fn rib_v6_roundtrip_with_v6_next_hop() {
        let r = RibPrefixEntries {
            sequence: 7,
            prefix: "2a02:2e0::/32".parse().unwrap(),
            entries: vec![RibEntry {
                peer_index: 3,
                originated_time: 100,
                attrs: PathAttributes {
                    as_path: AsPath::from_sequence([6939, 3320]),
                    next_hop: "2001:7f8::3".parse::<std::net::Ipv6Addr>().unwrap().into(),
                    ..Default::default()
                },
            }],
        };
        assert_eq!(r.subtype(), super::super::TDV2_RIB_IPV6_UNICAST);
        let body = r.encode_body().unwrap();
        assert_eq!(RibPrefixEntries::decode_body(&body, true).unwrap(), r);
    }

    #[test]
    fn empty_rib_entries_allowed() {
        let r =
            RibPrefixEntries { sequence: 0, prefix: Prefix::v4(10, 0, 0, 0, 8), entries: vec![] };
        let body = r.encode_body().unwrap();
        assert_eq!(RibPrefixEntries::decode_body(&body, false).unwrap(), r);
    }
}

//! BGP4MP record bodies (RFC 6396 §4.4): archived BGP messages and
//! collector-peer state changes, both in their AS4 variants.

use super::error::MrtError;
use super::wire::{decode_bgp_update, encode_bgp_update, Cursor};
use crate::message::{BgpUpdate, PeerState, StateChange};
use crate::Asn;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// A `BGP4MP_MESSAGE_AS4` record: one BGP UPDATE received by a collector
/// from one of its peers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bgp4mpMessage {
    /// ASN of the collector peer that sent the message.
    pub peer_as: Asn,
    /// ASN of the collector.
    pub local_as: Asn,
    /// Interface index (informational).
    pub interface_index: u16,
    /// Peer address; its family sets the record's AFI.
    pub peer_ip: IpAddr,
    /// Collector-side address (must match the peer's family).
    pub local_ip: IpAddr,
    /// The archived UPDATE.
    pub update: BgpUpdate,
}

/// A `BGP4MP_STATE_CHANGE_AS4` record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bgp4mpStateChange {
    /// ASN of the collector peer.
    pub peer_as: Asn,
    /// ASN of the collector.
    pub local_as: Asn,
    /// Interface index (informational).
    pub interface_index: u16,
    /// Peer address.
    pub peer_ip: IpAddr,
    /// Collector-side address.
    pub local_ip: IpAddr,
    /// The FSM transition.
    pub change: StateChange,
}

fn encode_peer_header(
    out: &mut Vec<u8>,
    peer_as: Asn,
    local_as: Asn,
    ifindex: u16,
    peer_ip: IpAddr,
    local_ip: IpAddr,
) -> Result<(), MrtError> {
    if peer_ip.is_ipv4() != local_ip.is_ipv4() {
        return Err(MrtError::BadValue { context: "BGP4MP peer/local address family mismatch" });
    }
    out.extend_from_slice(&peer_as.0.to_be_bytes());
    out.extend_from_slice(&local_as.0.to_be_bytes());
    out.extend_from_slice(&ifindex.to_be_bytes());
    let afi: u16 = if peer_ip.is_ipv4() { 1 } else { 2 };
    out.extend_from_slice(&afi.to_be_bytes());
    match (peer_ip, local_ip) {
        (IpAddr::V4(p), IpAddr::V4(l)) => {
            out.extend_from_slice(&p.octets());
            out.extend_from_slice(&l.octets());
        }
        (IpAddr::V6(p), IpAddr::V6(l)) => {
            out.extend_from_slice(&p.octets());
            out.extend_from_slice(&l.octets());
        }
        _ => unreachable!("family mismatch checked above"),
    }
    Ok(())
}

struct PeerHeader {
    peer_as: Asn,
    local_as: Asn,
    interface_index: u16,
    peer_ip: IpAddr,
    local_ip: IpAddr,
}

fn decode_peer_header(cur: &mut Cursor<'_>) -> Result<PeerHeader, MrtError> {
    let peer_as = Asn(cur.u32("BGP4MP peer AS")?);
    let local_as = Asn(cur.u32("BGP4MP local AS")?);
    let interface_index = cur.u16("BGP4MP interface index")?;
    let afi = cur.u16("BGP4MP AFI")?;
    let v6 = match afi {
        1 => false,
        2 => true,
        _ => return Err(MrtError::BadValue { context: "BGP4MP AFI" }),
    };
    let peer_ip = cur.ip(v6, "BGP4MP peer IP")?;
    let local_ip = cur.ip(v6, "BGP4MP local IP")?;
    Ok(PeerHeader { peer_as, local_as, interface_index, peer_ip, local_ip })
}

impl Bgp4mpMessage {
    /// Serializes the record body (everything after the MRT header).
    pub fn encode_body(&self) -> Result<Vec<u8>, MrtError> {
        let mut out = Vec::new();
        encode_peer_header(
            &mut out,
            self.peer_as,
            self.local_as,
            self.interface_index,
            self.peer_ip,
            self.local_ip,
        )?;
        out.extend_from_slice(&encode_bgp_update(&self.update));
        Ok(out)
    }

    /// Parses a record body.
    pub fn decode_body(raw: &[u8]) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(raw);
        let h = decode_peer_header(&mut cur)?;
        let update = decode_bgp_update(&mut cur)?;
        Ok(Bgp4mpMessage {
            peer_as: h.peer_as,
            local_as: h.local_as,
            interface_index: h.interface_index,
            peer_ip: h.peer_ip,
            local_ip: h.local_ip,
            update,
        })
    }
}

impl Bgp4mpStateChange {
    /// Serializes the record body.
    pub fn encode_body(&self) -> Result<Vec<u8>, MrtError> {
        let mut out = Vec::new();
        encode_peer_header(
            &mut out,
            self.peer_as,
            self.local_as,
            self.interface_index,
            self.peer_ip,
            self.local_ip,
        )?;
        out.extend_from_slice(&self.change.old.code().to_be_bytes());
        out.extend_from_slice(&self.change.new.code().to_be_bytes());
        Ok(out)
    }

    /// Parses a record body.
    pub fn decode_body(raw: &[u8]) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(raw);
        let h = decode_peer_header(&mut cur)?;
        let old = PeerState::from_code(cur.u16("state-change old state")?)
            .ok_or(MrtError::BadValue { context: "old peer state" })?;
        let new = PeerState::from_code(cur.u16("state-change new state")?)
            .ok_or(MrtError::BadValue { context: "new peer state" })?;
        Ok(Bgp4mpStateChange {
            peer_as: h.peer_as,
            local_as: h.local_as,
            interface_index: h.interface_index,
            peer_ip: h.peer_ip,
            local_ip: h.local_ip,
            change: StateChange { old, new },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::PathAttributes;
    use crate::prefix::Prefix;

    #[test]
    fn family_mismatch_rejected() {
        let msg = Bgp4mpMessage {
            peer_as: Asn(1),
            local_as: Asn(2),
            interface_index: 0,
            peer_ip: "10.0.0.1".parse().unwrap(),
            local_ip: "::1".parse().unwrap(),
            update: BgpUpdate::withdraw(vec![Prefix::v4(184, 84, 0, 0, 16)]),
        };
        assert!(msg.encode_body().is_err());
    }

    #[test]
    fn message_roundtrip_v6_peer() {
        let msg = Bgp4mpMessage {
            peer_as: Asn(20940),
            local_as: Asn(6447),
            interface_index: 9,
            peer_ip: "2001:7f8::14bc:0:1".parse().unwrap(),
            local_ip: "2001:7f8::1".parse().unwrap(),
            update: BgpUpdate::announce(
                vec![Prefix::v4(184, 84, 242, 0, 24)],
                PathAttributes::with_path_and_communities(
                    crate::aspath::AsPath::from_sequence([20940]),
                    vec![crate::community::Community::new(20940, 100)],
                ),
            ),
        };
        let body = msg.encode_body().unwrap();
        assert_eq!(Bgp4mpMessage::decode_body(&body).unwrap(), msg);
    }

    #[test]
    fn state_change_roundtrip() {
        let sc = Bgp4mpStateChange {
            peer_as: Asn(13030),
            local_as: Asn(6447),
            interface_index: 0,
            peer_ip: "192.0.2.1".parse().unwrap(),
            local_ip: "192.0.2.2".parse().unwrap(),
            change: StateChange { old: PeerState::Established, new: PeerState::Idle },
        };
        let body = sc.encode_body().unwrap();
        assert_eq!(Bgp4mpStateChange::decode_body(&body).unwrap(), sc);
    }
}

//! MRT archive format (RFC 6396) — the on-disk format of RouteViews and
//! RIPE RIS, which are Kepler's BGP data sources.
//!
//! Implemented subset (everything the collectors actually emit for BGP):
//!
//! * `BGP4MP` / `BGP4MP_MESSAGE_AS4` — one archived BGP UPDATE, with the
//!   full BGP-4 wire encoding of the message (RFC 4271) including
//!   multiprotocol NLRI for IPv6 (RFC 4760).
//! * `BGP4MP` / `BGP4MP_STATE_CHANGE_AS4` — collector-peer FSM transitions.
//! * `TABLE_DUMP_V2` / `PEER_INDEX_TABLE` + `RIB_IPV4_UNICAST` +
//!   `RIB_IPV6_UNICAST` — periodic RIB snapshots.
//!
//! Records round-trip byte-exactly (`encode` ∘ `decode` = id), which the
//! property tests in this module verify; this is what lets `kepler-netsim`
//! produce archives that standard MRT tooling can read.

mod bgp4mp;
mod error;
mod reader;
mod tabledump;
mod view;
mod wire;
mod writer;

pub use bgp4mp::{Bgp4mpMessage, Bgp4mpStateChange};
pub use error::MrtError;
pub use reader::MrtReader;
pub use tabledump::{PeerEntry, PeerIndexTable, RibEntry, RibPrefixEntries};
pub use view::{AsPathView, CommunitiesView, FrameView, MessageView, PrefixIter, UpdateView};
pub use writer::MrtWriter;

use serde::{Deserialize, Serialize};

/// MRT type code for BGP4MP records.
pub const MRT_TYPE_BGP4MP: u16 = 16;
/// MRT type code for TABLE_DUMP_V2 records.
pub const MRT_TYPE_TABLE_DUMP_V2: u16 = 13;

/// BGP4MP subtype: state change with 4-byte ASNs.
pub const BGP4MP_STATE_CHANGE_AS4: u16 = 5;
/// BGP4MP subtype: BGP message with 4-byte ASNs.
pub const BGP4MP_MESSAGE_AS4: u16 = 4;

/// TABLE_DUMP_V2 subtype: peer index table.
pub const TDV2_PEER_INDEX_TABLE: u16 = 1;
/// TABLE_DUMP_V2 subtype: IPv4 unicast RIB entries.
pub const TDV2_RIB_IPV4_UNICAST: u16 = 2;
/// TABLE_DUMP_V2 subtype: IPv6 unicast RIB entries.
pub const TDV2_RIB_IPV6_UNICAST: u16 = 4;

/// One decoded MRT record: a Unix timestamp plus a typed body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrtRecord {
    /// Seconds since the Unix epoch (MRT header field).
    pub timestamp: u32,
    /// The decoded payload.
    pub body: MrtBody,
}

/// The payload of an [`MrtRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MrtBody {
    /// An archived BGP UPDATE message.
    Message(Bgp4mpMessage),
    /// A collector-peer session state change.
    StateChange(Bgp4mpStateChange),
    /// The peer index table heading a TABLE_DUMP_V2 snapshot.
    PeerIndexTable(PeerIndexTable),
    /// RIB entries for one prefix.
    RibEntries(RibPrefixEntries),
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::attrs::{Origin, PathAttributes};
    use crate::community::{Community, LargeCommunity};
    use crate::message::{BgpUpdate, PeerState, StateChange};
    use crate::prefix::Prefix;
    use crate::Asn;
    use proptest::prelude::*;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

    fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32)
            .prop_map(|(addr, len)| Prefix::new(IpAddr::V4(Ipv4Addr::from(addr)), len).unwrap())
    }

    fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
        (any::<u128>(), 0u8..=128)
            .prop_map(|(addr, len)| Prefix::new(IpAddr::V6(Ipv6Addr::from(addr)), len).unwrap())
    }

    fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
        (
            prop::sample::select(vec![Origin::Igp, Origin::Egp, Origin::Incomplete]),
            prop::collection::vec(1u32..400_000, 1..6),
            any::<u32>(),
            prop::option::of(any::<u32>()),
            prop::option::of(any::<u32>()),
            any::<bool>(),
            prop::collection::vec(any::<u32>(), 0..8),
            prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..3),
        )
            .prop_map(|(origin, path, nh, med, lp, atomic, comms, larges)| {
                PathAttributes {
                    origin,
                    as_path: AsPath::from_sequence(path),
                    next_hop: IpAddr::V4(Ipv4Addr::from(nh)),
                    med,
                    local_pref: lp,
                    atomic_aggregate: atomic,
                    communities: comms.into_iter().map(Community).collect(),
                    extended_communities: vec![],
                    large_communities: larges
                        .into_iter()
                        .map(|(g, l1, l2)| LargeCommunity::new(g, l1, l2))
                        .collect(),
                }
            })
    }

    fn arb_update() -> impl Strategy<Value = BgpUpdate> {
        (
            prop::collection::vec(arb_prefix_v4(), 0..5),
            prop::collection::vec(arb_prefix_v6(), 0..4),
            arb_attrs(),
            prop::collection::vec(arb_prefix_v4(), 0..5),
            prop::collection::vec(arb_prefix_v6(), 0..4),
            any::<bool>(),
        )
            .prop_map(|(w4, w6, attrs, a4, a6, announce)| {
                let mut withdrawn = w4;
                withdrawn.extend(w6);
                let mut announced = a4;
                announced.extend(a6);
                if announce && !announced.is_empty() {
                    BgpUpdate { withdrawn, attrs: Some(attrs), announced }
                } else {
                    BgpUpdate { withdrawn, attrs: None, announced: vec![] }
                }
            })
            .prop_filter("non-empty update", |u| !u.is_empty())
    }

    proptest! {
        #[test]
        fn bgp4mp_message_roundtrips(update in arb_update(), ts in any::<u32>(), peer in 1u32..1_000_000) {
            let rec = MrtRecord {
                timestamp: ts,
                body: MrtBody::Message(Bgp4mpMessage {
                    peer_as: Asn(peer),
                    local_as: Asn(64_700),
                    interface_index: 0,
                    peer_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
                    local_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
                    update,
                }),
            };
            let mut buf = Vec::new();
            MrtWriter::new(&mut buf).write_record(&rec).unwrap();
            let decoded: Vec<_> = MrtReader::new(&buf[..]).map(|r| r.unwrap()).collect();
            prop_assert_eq!(decoded, vec![rec]);
        }

        #[test]
        fn state_change_roundtrips(ts in any::<u32>(), old in 1u16..=6, new in 1u16..=6) {
            let rec = MrtRecord {
                timestamp: ts,
                body: MrtBody::StateChange(Bgp4mpStateChange {
                    peer_as: Asn(65_001 % 64_000 + 1),
                    local_as: Asn(64_700),
                    interface_index: 3,
                    peer_ip: IpAddr::V6(Ipv6Addr::LOCALHOST),
                    local_ip: IpAddr::V6(Ipv6Addr::UNSPECIFIED),
                    change: StateChange {
                        old: PeerState::from_code(old).unwrap(),
                        new: PeerState::from_code(new).unwrap(),
                    },
                }),
            };
            let mut buf = Vec::new();
            MrtWriter::new(&mut buf).write_record(&rec).unwrap();
            let decoded: Vec<_> = MrtReader::new(&buf[..]).map(|r| r.unwrap()).collect();
            prop_assert_eq!(decoded, vec![rec]);
        }

        #[test]
        fn rib_entries_roundtrip(
            prefix in arb_prefix_v4(),
            seq in any::<u32>(),
            attrs in arb_attrs(),
            otime in any::<u32>(),
        ) {
            let rec = MrtRecord {
                timestamp: 0,
                body: MrtBody::RibEntries(RibPrefixEntries {
                    sequence: seq,
                    prefix,
                    entries: vec![RibEntry { peer_index: 1, originated_time: otime, attrs }],
                }),
            };
            let mut buf = Vec::new();
            MrtWriter::new(&mut buf).write_record(&rec).unwrap();
            let decoded: Vec<_> = MrtReader::new(&buf[..]).map(|r| r.unwrap()).collect();
            prop_assert_eq!(decoded, vec![rec]);
        }
    }
}

//! Zero-copy views over MRT / BGP-4 wire data.
//!
//! The materializing decoder ([`decode_bgp_update`](super::wire)) allocates
//! per record: AS-path segment `Vec`s, community `Vec`s, prefix `Vec`s, all
//! just to be flattened again by the dense ingest layer. The view types
//! here borrow the attribute / AS-path / community byte regions straight
//! from the input buffer and decode lazily into caller-owned scratch
//! (extending the [`AsPath::hops_into`](crate::aspath::AsPath::hops_into) idiom down to the wire), so the
//! per-record cost is one bounds-checked TLV walk with zero heap traffic.
//!
//! Equivalence contract, checked by `tests/mrt_corpus.rs` and by the
//! `decode_differential` suite in `kepler-core`:
//!
//! * [`UpdateView::parse`] accepts a message only if the materializing
//!   decoder accepts it. The view is strictly no more permissive — it
//!   additionally rejects duplicate tracked attributes, which the
//!   materializing decoder resolves last-wins, so every accepted message
//!   has unambiguous attribute regions.
//! * On any accepted message, [`UpdateView::materialize`] equals the
//!   materializing decoder's output exactly, and the lazy iterators yield
//!   the same prefixes / hops / communities in the same order.

use super::error::MrtError;
use super::wire::{decode_bgp_update, Cursor};
use crate::attrs::Origin;
use crate::community::Community;
use crate::message::BgpUpdate;
use crate::prefix::Prefix;
use crate::Asn;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MED: u8 = 4;
const ATTR_LOCAL_PREF: u8 = 5;
const ATTR_COMMUNITY: u8 = 8;
const ATTR_MP_REACH: u8 = 14;
const ATTR_MP_UNREACH: u8 = 15;
const ATTR_EXTENDED_COMMUNITIES: u8 = 16;
const ATTR_LARGE_COMMUNITY: u8 = 32;
const FLAG_EXTENDED_LEN: u8 = 0x10;

/// One MRT frame header plus its borrowed body bytes.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    /// Seconds since the Unix epoch (MRT header field).
    pub timestamp: u32,
    /// MRT type code.
    pub mrt_type: u16,
    /// MRT subtype code.
    pub subtype: u16,
    /// The raw record body (everything after the 12-byte MRT header).
    pub body: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parses one frame from the start of `buf`. Returns `Ok(None)` on a
    /// clean EOF (empty buffer), otherwise the frame plus the total number
    /// of bytes it occupies (header + body), so callers can walk a
    /// concatenated archive without copying.
    pub fn parse(buf: &'a [u8]) -> Result<Option<(FrameView<'a>, usize)>, MrtError> {
        if buf.is_empty() {
            return Ok(None);
        }
        let mut cur = Cursor::new(buf);
        let timestamp = cur.u32("MRT timestamp")?;
        let mrt_type = cur.u16("MRT type")?;
        let subtype = cur.u16("MRT subtype")?;
        let length = cur.u32("MRT record length")? as usize;
        let body = cur.take(length, "MRT record body")?;
        Ok(Some((FrameView { timestamp, mrt_type, subtype, body }, 12 + length)))
    }

    /// Parses the body as a `BGP4MP_MESSAGE_AS4` update. Returns
    /// `Ok(None)` for any other type/subtype (state changes, RIB dumps),
    /// which carry no route events for the dense path.
    pub fn message(&self) -> Result<Option<MessageView<'a>>, MrtError> {
        if self.mrt_type != super::MRT_TYPE_BGP4MP || self.subtype != super::BGP4MP_MESSAGE_AS4 {
            return Ok(None);
        }
        MessageView::parse(self.body).map(Some)
    }
}

/// A `BGP4MP_MESSAGE_AS4` body: decoded peer header plus a borrowed
/// [`UpdateView`] of the archived UPDATE.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    /// ASN of the collector peer that sent the message.
    pub peer_as: Asn,
    /// ASN of the collector.
    pub local_as: Asn,
    /// Interface index (informational).
    pub interface_index: u16,
    /// Peer address.
    pub peer_ip: IpAddr,
    /// Collector-side address.
    pub local_ip: IpAddr,
    /// The archived UPDATE, still in wire form.
    pub update: UpdateView<'a>,
}

impl<'a> MessageView<'a> {
    /// Parses a BGP4MP message body (everything after the MRT header).
    pub fn parse(body: &'a [u8]) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(body);
        let peer_as = Asn(cur.u32("BGP4MP peer AS")?);
        let local_as = Asn(cur.u32("BGP4MP local AS")?);
        let interface_index = cur.u16("BGP4MP interface index")?;
        let afi = cur.u16("BGP4MP AFI")?;
        let v6 = match afi {
            1 => false,
            2 => true,
            _ => return Err(MrtError::BadValue { context: "BGP4MP AFI" }),
        };
        let peer_ip = cur.ip(v6, "BGP4MP peer IP")?;
        let local_ip = cur.ip(v6, "BGP4MP local IP")?;
        let update = UpdateView::parse(cur.take(cur.remaining(), "BGP4MP message")?)?;
        Ok(MessageView { peer_as, local_as, interface_index, peer_ip, local_ip, update })
    }
}

/// A validated BGP UPDATE whose withdrawn / attribute / NLRI regions are
/// borrowed from the input buffer.
#[derive(Debug, Clone, Copy)]
pub struct UpdateView<'a> {
    msg: &'a [u8],
    withdrawn: &'a [u8],
    nlri: &'a [u8],
    as_path: &'a [u8],
    communities: &'a [u8],
    mp_announced: &'a [u8],
    mp_announced_v6: bool,
    mp_withdrawn: &'a [u8],
    mp_withdrawn_v6: bool,
}

fn validate_nlri(raw: &[u8], v6: bool) -> Result<(), MrtError> {
    let mut cur = Cursor::new(raw);
    let max: u8 = if v6 { 128 } else { 32 };
    while cur.remaining() > 0 {
        let len = cur.u8("NLRI prefix length")?;
        if len > max {
            return Err(MrtError::BadValue { context: "NLRI prefix length" });
        }
        cur.take((len as usize).div_ceil(8), "NLRI prefix bytes")?;
    }
    Ok(())
}

fn validate_as_path(raw: &[u8]) -> Result<(), MrtError> {
    let mut cur = Cursor::new(raw);
    while cur.remaining() > 0 {
        let code = cur.u8("AS_PATH segment type")?;
        if code != 1 && code != 2 {
            return Err(MrtError::BadValue { context: "AS_PATH segment type" });
        }
        let count = cur.u8("AS_PATH segment count")? as usize;
        cur.take(count * 4, "AS_PATH asn")?;
    }
    Ok(())
}

impl<'a> UpdateView<'a> {
    /// Parses and fully validates an UPDATE message (marker + header +
    /// body), borrowing every region instead of materializing. All the
    /// framing and per-attribute checks of the materializing decoder run
    /// here, so the lazy iterators below are infallible.
    pub fn parse(msg: &'a [u8]) -> Result<Self, MrtError> {
        let mut cur = Cursor::new(msg);
        let marker = cur.take(16, "BGP marker")?;
        if marker.iter().any(|&b| b != 0xFF) {
            return Err(MrtError::BadMarker);
        }
        let total = cur.u16("BGP message length")? as usize;
        if total < 19 {
            return Err(MrtError::BadValue { context: "BGP message length" });
        }
        let msg_type = cur.u8("BGP message type")?;
        if msg_type != 2 {
            return Err(MrtError::BadValue { context: "BGP message type (expected UPDATE)" });
        }
        let body = cur.take(total - 19, "BGP message body")?;
        let mut bc = Cursor::new(body);

        let wlen = bc.u16("withdrawn routes length")? as usize;
        let withdrawn = bc.take(wlen, "withdrawn routes")?;
        validate_nlri(withdrawn, false)?;

        let alen = bc.u16("path attributes length")? as usize;
        let attrs_raw = bc.take(alen, "path attributes")?;
        let nlri = bc.take(bc.remaining(), "announced routes")?;
        validate_nlri(nlri, false)?;

        let mut view = UpdateView {
            msg: &msg[..19 + (total - 19)],
            withdrawn,
            nlri,
            as_path: &[],
            communities: &[],
            mp_announced: &[],
            mp_announced_v6: false,
            mp_withdrawn: &[],
            mp_withdrawn_v6: false,
        };
        let mut seen = [false; 4]; // AS_PATH, COMMUNITY, MP_REACH, MP_UNREACH

        let mut ac = Cursor::new(attrs_raw);
        while ac.remaining() > 0 {
            let flags = ac.u8("attribute flags")?;
            let attr_type = ac.u8("attribute type")?;
            let len = if flags & FLAG_EXTENDED_LEN != 0 {
                ac.u16("attribute extended length")? as usize
            } else {
                ac.u8("attribute length")? as usize
            };
            let body = ac.take(len, "attribute body")?;
            let dup = |seen: &mut bool| {
                if std::mem::replace(seen, true) {
                    Err(MrtError::BadValue { context: "duplicate attribute" })
                } else {
                    Ok(())
                }
            };
            match attr_type {
                ATTR_ORIGIN => {
                    let code = *body.first().ok_or(MrtError::BadValue { context: "ORIGIN" })?;
                    Origin::from_code(code).ok_or(MrtError::BadValue { context: "ORIGIN code" })?;
                }
                ATTR_AS_PATH => {
                    dup(&mut seen[0])?;
                    validate_as_path(body)?;
                    view.as_path = body;
                }
                ATTR_NEXT_HOP if body.len() != 4 => {
                    return Err(MrtError::BadValue { context: "NEXT_HOP length" });
                }
                ATTR_MED if body.len() != 4 => {
                    return Err(MrtError::BadValue { context: "MED length" });
                }
                ATTR_LOCAL_PREF if body.len() != 4 => {
                    return Err(MrtError::BadValue { context: "LOCAL_PREF length" });
                }
                ATTR_COMMUNITY => {
                    dup(&mut seen[1])?;
                    if body.len() % 4 != 0 {
                        return Err(MrtError::BadValue { context: "COMMUNITY length" });
                    }
                    view.communities = body;
                }
                ATTR_MP_REACH => {
                    dup(&mut seen[2])?;
                    let mut mp = Cursor::new(body);
                    let afi = mp.u16("MP_REACH AFI")?;
                    let _safi = mp.u8("MP_REACH SAFI")?;
                    let nhlen = mp.u8("MP_REACH next-hop length")? as usize;
                    mp.take(nhlen, "MP_REACH next hop")?;
                    mp.u8("MP_REACH reserved")?;
                    let region = mp.take(mp.remaining(), "MP_REACH NLRI")?;
                    view.mp_announced_v6 = afi == 2;
                    validate_nlri(region, view.mp_announced_v6)?;
                    view.mp_announced = region;
                }
                ATTR_MP_UNREACH => {
                    dup(&mut seen[3])?;
                    let mut mp = Cursor::new(body);
                    let afi = mp.u16("MP_UNREACH AFI")?;
                    let _safi = mp.u8("MP_UNREACH SAFI")?;
                    let region = mp.take(mp.remaining(), "MP_UNREACH NLRI")?;
                    view.mp_withdrawn_v6 = afi == 2;
                    validate_nlri(region, view.mp_withdrawn_v6)?;
                    view.mp_withdrawn = region;
                }
                ATTR_EXTENDED_COMMUNITIES if body.len() % 8 != 0 => {
                    return Err(MrtError::BadValue { context: "EXTENDED_COMMUNITIES length" });
                }
                ATTR_LARGE_COMMUNITY if body.len() % 12 != 0 => {
                    return Err(MrtError::BadValue { context: "LARGE_COMMUNITY length" });
                }
                _ => {} // unknown attribute: skip (body already consumed)
            }
        }
        Ok(view)
    }

    /// Withdrawn IPv4 prefixes, in wire order.
    pub fn withdrawn_v4(&self) -> PrefixIter<'a> {
        PrefixIter { cur: Cursor::new(self.withdrawn), v6: false }
    }

    /// Withdrawn MP prefixes (usually IPv6), in wire order. The
    /// materializing decoder appends these after the IPv4 withdrawals.
    pub fn mp_withdrawn(&self) -> PrefixIter<'a> {
        PrefixIter { cur: Cursor::new(self.mp_withdrawn), v6: self.mp_withdrawn_v6 }
    }

    /// Announced IPv4 prefixes (the trailing NLRI), in wire order.
    pub fn announced_v4(&self) -> PrefixIter<'a> {
        PrefixIter { cur: Cursor::new(self.nlri), v6: false }
    }

    /// Announced MP prefixes (usually IPv6), in wire order. The
    /// materializing decoder appends these after the IPv4 NLRI.
    pub fn mp_announced(&self) -> PrefixIter<'a> {
        PrefixIter { cur: Cursor::new(self.mp_announced), v6: self.mp_announced_v6 }
    }

    /// Whether the message announces any prefix (either family). Mirrors
    /// the materializing decoder's `announced.is_empty()` normalization:
    /// a message with no announcements carries no meaningful attributes.
    pub fn has_announcements(&self) -> bool {
        !self.nlri.is_empty() || !self.mp_announced.is_empty()
    }

    /// Borrowed AS_PATH attribute body (empty when the attribute is
    /// absent, which decodes to the empty path either way).
    pub fn as_path(&self) -> AsPathView<'a> {
        AsPathView { raw: self.as_path }
    }

    /// Borrowed COMMUNITY attribute body (empty when absent).
    pub fn communities(&self) -> CommunitiesView<'a> {
        CommunitiesView { raw: self.communities }
    }

    /// Decodes the full message through the materializing decoder —
    /// byte-identical to never having used the view at all. This is the
    /// bridge the differential tests pivot on.
    pub fn materialize(&self) -> Result<BgpUpdate, MrtError> {
        decode_bgp_update(&mut Cursor::new(self.msg))
    }
}

/// Infallible prefix iterator over a validated NLRI region.
#[derive(Debug, Clone)]
pub struct PrefixIter<'a> {
    cur: Cursor<'a>,
    v6: bool,
}

impl Iterator for PrefixIter<'_> {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        if self.cur.remaining() == 0 {
            return None;
        }
        // The region was validated at parse time; any failure here would
        // be a bug in `validate_nlri`, so we stop rather than panic.
        let len = self.cur.u8("NLRI prefix length").ok()?;
        let nbytes = (len as usize).div_ceil(8);
        let raw = self.cur.take(nbytes, "NLRI prefix bytes").ok()?;
        let addr = if self.v6 {
            let mut a = [0u8; 16];
            a.get_mut(..nbytes)?.copy_from_slice(raw);
            IpAddr::V6(Ipv6Addr::from(a))
        } else {
            let mut a = [0u8; 4];
            a.get_mut(..nbytes)?.copy_from_slice(raw);
            IpAddr::V4(Ipv4Addr::from(a))
        };
        Prefix::new(addr, len).ok()
    }
}

/// A borrowed AS_PATH attribute body.
#[derive(Debug, Clone, Copy)]
pub struct AsPathView<'a> {
    raw: &'a [u8],
}

impl AsPathView<'_> {
    /// Flat iterator over every ASN in segment order — the same sequence
    /// [`AsPath::asns`](crate::aspath::AsPath::asns) yields after materialization (255-split segment
    /// merging preserves flat order).
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        AsnIter { cur: Cursor::new(self.raw), left: 0 }
    }

    /// Whether the path carries no ASNs at all, matching
    /// [`AsPath::is_empty`](crate::aspath::AsPath::is_empty) on the materialized path.
    pub fn is_empty(&self) -> bool {
        self.asns().next().is_none()
    }

    /// Collapses prepending into `out` straight from the wire bytes —
    /// [`AsPath::hops_into`](crate::aspath::AsPath::hops_into) without the intermediate segment `Vec`s.
    pub fn hops_into(&self, out: &mut Vec<Asn>) {
        out.clear();
        for asn in self.asns() {
            if out.last() != Some(&asn) {
                out.push(asn);
            }
        }
    }

    /// Whether any ASN in the path is special-purpose, matching
    /// [`AsPath::has_special_purpose_asn`](crate::aspath::AsPath::has_special_purpose_asn).
    pub fn has_special_purpose_asn(&self) -> bool {
        self.asns().any(|a| a.is_special_purpose())
    }
}

struct AsnIter<'a> {
    cur: Cursor<'a>,
    left: usize,
}

impl Iterator for AsnIter<'_> {
    type Item = Asn;

    fn next(&mut self) -> Option<Asn> {
        while self.left == 0 {
            if self.cur.remaining() == 0 {
                return None;
            }
            let _code = self.cur.u8("AS_PATH segment type").ok()?;
            self.left = self.cur.u8("AS_PATH segment count").ok()? as usize;
        }
        self.left -= 1;
        self.cur.u32("AS_PATH asn").ok().map(Asn)
    }
}

/// A borrowed COMMUNITY attribute body.
#[derive(Debug, Clone, Copy)]
pub struct CommunitiesView<'a> {
    raw: &'a [u8],
}

impl CommunitiesView<'_> {
    /// The communities in wire order.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.raw.chunks_exact(4).map(|c| Community(u32::from_be_bytes([c[0], c[1], c[2], c[3]])))
    }

    /// Whether the list is empty (or the attribute absent).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::super::writer::MrtWriter;
    use super::super::{Bgp4mpMessage, MrtBody, MrtRecord};
    use super::*;
    use crate::aspath::AsPath;
    use crate::attrs::PathAttributes;

    fn frame_bytes(update: BgpUpdate) -> Vec<u8> {
        let rec = MrtRecord {
            timestamp: 1_400_000_000,
            body: MrtBody::Message(Bgp4mpMessage {
                peer_as: Asn(13030),
                local_as: Asn(6447),
                interface_index: 0,
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.2".parse().unwrap(),
                update,
            }),
        };
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write_record(&rec).unwrap();
        buf
    }

    #[test]
    fn view_matches_materializing_decoder() {
        let update = BgpUpdate {
            withdrawn: vec![Prefix::v4(100, 0, 0, 0, 8), "2600:1::/32".parse().unwrap()],
            attrs: Some(PathAttributes::with_path_and_communities(
                AsPath::from_sequence([3356, 3356, 13030, 20940]),
                vec![Community::new(13030, 51904), Community::new(3356, 2001)],
            )),
            announced: vec![Prefix::v4(184, 84, 242, 0, 24), "2600:2::/32".parse().unwrap()],
        };
        let buf = frame_bytes(update.clone());
        let (frame, used) = FrameView::parse(&buf).unwrap().unwrap();
        assert_eq!(used, buf.len());
        let msg = frame.message().unwrap().unwrap();
        assert_eq!(msg.peer_as, Asn(13030));
        assert_eq!(msg.update.materialize().unwrap(), update);

        let withdrawn: Vec<Prefix> =
            msg.update.withdrawn_v4().chain(msg.update.mp_withdrawn()).collect();
        assert_eq!(withdrawn, update.withdrawn);
        let announced: Vec<Prefix> =
            msg.update.announced_v4().chain(msg.update.mp_announced()).collect();
        assert_eq!(announced, update.announced);

        let attrs = update.attrs.as_ref().unwrap();
        let mut hops = Vec::new();
        msg.update.as_path().hops_into(&mut hops);
        assert_eq!(hops, attrs.as_path.hops());
        assert!(!msg.update.as_path().is_empty());
        assert!(!msg.update.as_path().has_special_purpose_asn());
        let comms: Vec<Community> = msg.update.communities().iter().collect();
        assert_eq!(comms, attrs.communities);
    }

    #[test]
    fn empty_buffer_is_clean_eof() {
        assert!(FrameView::parse(&[]).unwrap().is_none());
    }

    #[test]
    fn non_message_frames_yield_none() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(&11u16.to_be_bytes()); // OSPFv2
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let (frame, _) = FrameView::parse(&buf).unwrap().unwrap();
        assert!(frame.message().unwrap().is_none());
    }
}

//! Streaming MRT writer over any `io::Write`.

use super::error::MrtError;
use super::{MrtBody, MrtRecord};
use std::io::Write;

/// Serializes [`MrtRecord`]s to a byte stream, one RFC 6396 record at a
/// time. Flushing is left to the caller / the underlying writer.
pub struct MrtWriter<W: Write> {
    inner: W,
}

impl<W: Write> MrtWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        MrtWriter { inner }
    }

    /// Serializes one record (header + body).
    pub fn write_record(&mut self, record: &MrtRecord) -> Result<(), MrtError> {
        let (mrt_type, subtype, body) = match &record.body {
            MrtBody::Message(m) => {
                (super::MRT_TYPE_BGP4MP, super::BGP4MP_MESSAGE_AS4, m.encode_body()?)
            }
            MrtBody::StateChange(s) => {
                (super::MRT_TYPE_BGP4MP, super::BGP4MP_STATE_CHANGE_AS4, s.encode_body()?)
            }
            MrtBody::PeerIndexTable(t) => {
                (super::MRT_TYPE_TABLE_DUMP_V2, super::TDV2_PEER_INDEX_TABLE, t.encode_body()?)
            }
            MrtBody::RibEntries(r) => {
                (super::MRT_TYPE_TABLE_DUMP_V2, r.subtype(), r.encode_body()?)
            }
        };
        let mut header = [0u8; 12];
        header[0..4].copy_from_slice(&record.timestamp.to_be_bytes());
        header[4..6].copy_from_slice(&mrt_type.to_be_bytes());
        header[6..8].copy_from_slice(&subtype.to_be_bytes());
        header[8..12].copy_from_slice(&(body.len() as u32).to_be_bytes());
        self.inner.write_all(&header)?;
        self.inner.write_all(&body)?;
        Ok(())
    }

    /// Unwraps the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

//! Streaming MRT reader over any `io::Read`.

use super::bgp4mp::{Bgp4mpMessage, Bgp4mpStateChange};
use super::error::MrtError;
use super::tabledump::{PeerIndexTable, RibPrefixEntries};
use super::{MrtBody, MrtRecord};
use std::io::Read;

/// Iterator of [`MrtRecord`]s decoded from a byte stream.
///
/// Unsupported record types yield an [`MrtError::UnsupportedRecord`] item
/// and the reader continues with the next record, mirroring how real MRT
/// tooling skips unknown types in mixed archives.
pub struct MrtReader<R: Read> {
    inner: R,
    done: bool,
}

impl<R: Read> MrtReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        MrtReader { inner, done: false }
    }

    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, MrtError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled == 0 {
                        return Ok(false); // clean EOF at a record boundary
                    }
                    return Err(MrtError::UnexpectedEof { context: "MRT header/body" });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(MrtError::Io(e)),
            }
        }
        Ok(true)
    }

    fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let mut header = [0u8; 12];
        if !self.read_exact_or_eof(&mut header)? {
            return Ok(None);
        }
        let timestamp = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
        let mrt_type = u16::from_be_bytes([header[4], header[5]]);
        let subtype = u16::from_be_bytes([header[6], header[7]]);
        let length = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
        let mut body = vec![0u8; length];
        if length > 0 && !self.read_exact_or_eof(&mut body)? {
            return Err(MrtError::UnexpectedEof { context: "MRT record body" });
        }
        let body = match (mrt_type, subtype) {
            (super::MRT_TYPE_BGP4MP, super::BGP4MP_MESSAGE_AS4) => {
                MrtBody::Message(Bgp4mpMessage::decode_body(&body)?)
            }
            (super::MRT_TYPE_BGP4MP, super::BGP4MP_STATE_CHANGE_AS4) => {
                MrtBody::StateChange(Bgp4mpStateChange::decode_body(&body)?)
            }
            (super::MRT_TYPE_TABLE_DUMP_V2, super::TDV2_PEER_INDEX_TABLE) => {
                MrtBody::PeerIndexTable(PeerIndexTable::decode_body(&body)?)
            }
            (super::MRT_TYPE_TABLE_DUMP_V2, super::TDV2_RIB_IPV4_UNICAST) => {
                MrtBody::RibEntries(RibPrefixEntries::decode_body(&body, false)?)
            }
            (super::MRT_TYPE_TABLE_DUMP_V2, super::TDV2_RIB_IPV6_UNICAST) => {
                MrtBody::RibEntries(RibPrefixEntries::decode_body(&body, true)?)
            }
            _ => return Err(MrtError::UnsupportedRecord { mrt_type, subtype }),
        };
        Ok(Some(MrtRecord { timestamp, body }))
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e @ MrtError::UnsupportedRecord { .. }) => Some(Err(e)),
            Err(e) => {
                // Framing is lost on hard decode errors: stop after reporting.
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::writer::MrtWriter;
    use super::*;
    use crate::attrs::PathAttributes;
    use crate::message::BgpUpdate;
    use crate::prefix::Prefix;
    use crate::Asn;

    fn sample_record(ts: u32) -> MrtRecord {
        MrtRecord {
            timestamp: ts,
            body: MrtBody::Message(Bgp4mpMessage {
                peer_as: Asn(13030),
                local_as: Asn(6447),
                interface_index: 0,
                peer_ip: "192.0.2.1".parse().unwrap(),
                local_ip: "192.0.2.2".parse().unwrap(),
                update: BgpUpdate::announce(
                    vec![Prefix::v4(184, 84, 242, 0, 24)],
                    PathAttributes::with_path_and_communities(
                        crate::aspath::AsPath::from_sequence([13030, 20940]),
                        vec![crate::community::Community::new(13030, 51904)],
                    ),
                ),
            }),
        }
    }

    #[test]
    fn stream_of_records_roundtrips() {
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for ts in 0..10 {
                w.write_record(&sample_record(ts)).unwrap();
            }
        }
        let records: Result<Vec<_>, _> = MrtReader::new(&buf[..]).collect();
        let records = records.unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3], sample_record(3));
    }

    #[test]
    fn empty_input_is_clean_eof() {
        assert_eq!(MrtReader::new(&[][..]).count(), 0);
    }

    #[test]
    fn truncated_record_reports_eof() {
        let mut buf = Vec::new();
        MrtWriter::new(&mut buf).write_record(&sample_record(1)).unwrap();
        buf.truncate(buf.len() - 3);
        let results: Vec<_> = MrtReader::new(&buf[..]).collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn unsupported_record_is_skipped_and_stream_continues() {
        let mut buf = Vec::new();
        // Hand-craft an unsupported record: type 11 (OSPFv2), 4-byte body.
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(&11u16.to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4]);
        MrtWriter::new(&mut buf).write_record(&sample_record(8)).unwrap();
        let results: Vec<_> = MrtReader::new(&buf[..]).collect();
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], Err(MrtError::UnsupportedRecord { mrt_type: 11, .. })));
        assert_eq!(*results[1].as_ref().unwrap(), sample_record(8));
    }
}

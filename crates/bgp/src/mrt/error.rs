//! Error type shared by the MRT reader/writer.

use std::fmt;
use std::io;

/// Errors produced while encoding or decoding MRT records.
#[derive(Debug)]
pub enum MrtError {
    /// The input ended inside a record.
    UnexpectedEof { context: &'static str },
    /// The 16-byte BGP marker was not all-ones.
    BadMarker,
    /// A record carried a (type, subtype) pair we do not implement.
    UnsupportedRecord { mrt_type: u16, subtype: u16 },
    /// A field held an invalid value.
    BadValue { context: &'static str },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::UnexpectedEof { context } => {
                write!(f, "unexpected EOF while reading {context}")
            }
            MrtError::BadMarker => write!(f, "BGP message marker is not all-ones"),
            MrtError::UnsupportedRecord { mrt_type, subtype } => {
                write!(f, "unsupported MRT record type {mrt_type} subtype {subtype}")
            }
            MrtError::BadValue { context } => write!(f, "invalid value in {context}"),
            MrtError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MrtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrtError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

//! BGP communities (RFC 1997), extended communities (RFC 4360) and large
//! communities (RFC 8092).
//!
//! Communities are the information source at the heart of Kepler. A standard
//! community is a 32-bit value conventionally written `X:Y` where the top 16
//! bits `X` are the ASN of the operator that attached it and the bottom 16
//! bits `Y` are an operator-defined code — e.g. `13030:51904` means
//! *"route received at the CoreSite LAX1 facility"* in Init7's scheme.

use crate::asn::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A standard RFC 1997 community, stored as the raw 32-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// `NO_EXPORT` well-known community.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// `NO_ADVERTISE` well-known community.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// `NO_EXPORT_SUBCONFED` well-known community.
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);
    /// `BLACKHOLE` (RFC 7999).
    pub const BLACKHOLE: Community = Community(0xFFFF_029A);

    /// Builds a community from its `X:Y` halves.
    pub fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The top 16 bits: by convention, the ASN of the tagging operator.
    pub fn asn16(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The tagging operator as an [`Asn`].
    pub fn asn(self) -> Asn {
        Asn(self.asn16() as u32)
    }

    /// The bottom 16 bits: the operator-defined code.
    pub fn value(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Whether the community sits in the IANA well-known block `0xFFFF....`.
    pub fn is_well_known(self) -> bool {
        self.asn16() == 0xFFFF
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn16(), self.value())
    }
}

/// Errors from parsing community textual forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityParseError(pub String);

impl fmt::Display for CommunityParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed community: {:?}", self.0)
    }
}

impl std::error::Error for CommunityParseError {}

impl std::str::FromStr for Community {
    type Err = CommunityParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s.split_once(':').ok_or_else(|| CommunityParseError(s.into()))?;
        let a: u16 = a.parse().map_err(|_| CommunityParseError(s.into()))?;
        let v: u16 = v.parse().map_err(|_| CommunityParseError(s.into()))?;
        Ok(Community::new(a, v))
    }
}

/// An RFC 4360 extended community: 8 opaque bytes with a typed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExtendedCommunity(pub [u8; 8]);

impl ExtendedCommunity {
    /// Two-octet-AS-specific extended community (type 0x00, subtype given).
    pub fn as2_specific(subtype: u8, asn: u16, local: u32) -> Self {
        let mut b = [0u8; 8];
        b[0] = 0x00;
        b[1] = subtype;
        b[2..4].copy_from_slice(&asn.to_be_bytes());
        b[4..8].copy_from_slice(&local.to_be_bytes());
        ExtendedCommunity(b)
    }

    /// The high-order type byte.
    pub fn type_byte(self) -> u8 {
        self.0[0]
    }
}

impl fmt::Display for ExtendedCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ext:")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// An RFC 8092 large community: three 32-bit fields `GA:L1:L2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LargeCommunity {
    /// Global administrator — the ASN attaching the community.
    pub global: u32,
    /// First operator-defined field.
    pub local1: u32,
    /// Second operator-defined field.
    pub local2: u32,
}

impl LargeCommunity {
    /// Builds a large community from its three parts.
    pub fn new(global: u32, local1: u32, local2: u32) -> Self {
        LargeCommunity { global, local1, local2 }
    }
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.local1, self.local2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_halves() {
        let c = Community::new(13030, 51904);
        assert_eq!(c.asn16(), 13030);
        assert_eq!(c.value(), 51904);
        assert_eq!(c.asn(), Asn(13030));
        assert_eq!(c.0, (13030u32 << 16) | 51904);
    }

    #[test]
    fn display_and_parse() {
        let c: Community = "13030:51702".parse().unwrap();
        assert_eq!(c.to_string(), "13030:51702");
        assert!("13030".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
    }

    #[test]
    fn well_known() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::BLACKHOLE.is_well_known());
        assert!(!Community::new(13030, 4006).is_well_known());
    }

    #[test]
    fn extended_layout() {
        let e = ExtendedCommunity::as2_specific(0x02, 2914, 450);
        assert_eq!(e.type_byte(), 0x00);
        assert_eq!(&e.0[2..4], &2914u16.to_be_bytes());
        assert_eq!(&e.0[4..8], &450u32.to_be_bytes());
    }

    #[test]
    fn large_display() {
        assert_eq!(LargeCommunity::new(196_615, 1, 2).to_string(), "196615:1:2");
    }
}

//! BGP protocol substrate for the Kepler outage-detection system.
//!
//! This crate implements, from scratch, everything Kepler needs to speak and
//! archive BGP:
//!
//! * [`asn`] — autonomous system numbers and their IANA special-purpose
//!   classifications (private-use, documentation, reserved ranges).
//! * [`prefix`] — IPv4/IPv6 prefixes with canonicalization, containment
//!   checks and bogon classification.
//! * [`community`] — the RFC 1997 communities attribute, plus RFC 4360
//!   extended and RFC 8092 large communities. Communities are the central
//!   data source of the paper: operators tag routes at their ingress points
//!   with values that encode *where* (facility, IXP, city) a route entered
//!   their network.
//! * [`aspath`] — AS paths with SEQUENCE/SET segments, loop detection and
//!   prepending.
//! * [`attrs`] — the BGP path-attribute bundle carried by UPDATE messages.
//! * [`message`] — UPDATE and session state-change messages as exposed by
//!   route collectors.
//! * [`sanitize`] — the input hygiene rules Kepler applies before any
//!   analysis (AS loops, private/special-purpose ASNs, bogon prefixes).
//! * [`mrt`] — a reader/writer for the MRT archive format (RFC 6396) subset
//!   used by RouteViews and RIPE RIS: `BGP4MP` message/state records and
//!   `TABLE_DUMP_V2` RIB snapshots.
//!
//! # Key types
//!
//! [`Asn`], [`Prefix`], [`Community`], [`AsPath`], [`PathAttributes`],
//! [`BgpUpdate`], and the [`mrt`] reader/writer.
//!
//! # Invariants
//!
//! * **The wire formats are real**: an UPDATE serialized here is a valid
//!   BGP-4 message (RFC 4271, with RFC 4760 multiprotocol NLRI for
//!   IPv6), and the MRT records round-trip byte-for-byte, so archives
//!   produced by the simulator in `kepler-netsim` could be consumed by
//!   any standard MRT tooling.
//! * **Sanitization is lossless about its reasons** — [`sanitize`]
//!   classifies every rejection (AS loop, special-purpose ASN, bogon
//!   prefix) so input statistics stay auditable.
//! * Parsing never panics on malformed input; [`mrt`] errors carry byte
//!   offsets.

pub mod asn;
pub mod aspath;
pub mod attrs;
pub mod community;
pub mod message;
pub mod mrt;
pub mod prefix;
pub mod sanitize;

pub use asn::Asn;
pub use aspath::{AsPath, AsPathSegment};
pub use attrs::{Origin, PathAttributes};
pub use community::{Community, ExtendedCommunity, LargeCommunity};
pub use message::{BgpUpdate, PeerState, StateChange};
pub use prefix::Prefix;

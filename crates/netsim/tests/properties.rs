//! Property-based tests over generated worlds: structural invariants that
//! must hold for *any* seed, not just the ones unit tests happen to use.

use kepler_netsim::routing::policy::FailedSet;
use kepler_netsim::routing::propagate::compute_tree;
use kepler_netsim::world::{AsIdx, Rel, World, WorldConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// World structural invariants for arbitrary seeds.
    #[test]
    fn world_invariants(seed in 0u64..10_000) {
        let w = World::generate(WorldConfig::tiny(seed));
        // Adjacency lists are symmetric and consistent with the table.
        for (i, node) in w.ases.iter().enumerate() {
            for (nbr, adj_idx) in &node.neighbors {
                let adj = &w.adjacencies[adj_idx.0 as usize];
                let me = AsIdx(i as u32);
                prop_assert!(adj.a == me || adj.b == me);
                prop_assert_eq!(adj.other(me), *nbr);
                // The neighbor's list contains the mirror entry.
                let back = &w.ases[nbr.0 as usize].neighbors;
                prop_assert!(back.iter().any(|(n2, a2)| *n2 == me && a2 == adj_idx));
            }
        }
        // Ground-truth colocation is bidirectional.
        for node in &w.ases {
            for f in &node.facilities {
                prop_assert!(w.colo.members_of_facility(*f).contains(&node.asn));
            }
            for x in node.local_ixps.iter().chain(node.remote_ixps.iter()) {
                prop_assert!(w.colo.members_of_ixp(*x).contains(&node.asn));
            }
        }
        // ASN map is a bijection onto the node vector.
        prop_assert_eq!(w.asn_to_idx.len(), w.ases.len());
        for (asn, idx) in &w.asn_to_idx {
            prop_assert_eq!(&w.ases[idx.0 as usize].asn, asn);
        }
        // Every prefix has a live origin and is globally routable space.
        for (p, origin) in &w.prefixes {
            prop_assert!(!p.is_bogon());
            prop_assert!((origin.0 as usize) < w.ases.len());
        }
    }

    /// Routing is monotone under failures: breaking things never *adds*
    /// reachability, and restoring the empty failure set returns to the
    /// baseline exactly (same seed ⇒ same tree).
    #[test]
    fn failures_never_add_reachability(seed in 0u64..5_000, fac_pick in 0usize..16) {
        let w = World::generate(WorldConfig::tiny(seed));
        let clean = FailedSet::default();
        let origin = AsIdx((seed % w.ases.len() as u64) as u32);
        let base = compute_tree(&w, &clean, origin);
        let facs = w.colo.facilities();
        let fac = facs[fac_pick % facs.len()].id;
        let mut failed = FailedSet::default();
        failed.facilities.insert(fac);
        let broken = compute_tree(&w, &failed, origin);
        prop_assert!(broken.routed_count() <= base.routed_count());
        // Any AS routed under failure is also routed when healthy.
        for v in 0..w.ases.len() {
            if broken.routes[v].is_some() {
                prop_assert!(base.routes[v].is_some(), "failure created reachability at {v}");
            }
        }
        let again = compute_tree(&w, &clean, origin);
        for v in 0..w.ases.len() {
            prop_assert_eq!(again.routes[v], base.routes[v]);
        }
    }

    /// Customer/provider edges always climb the hierarchy in phase-1
    /// customer routes: the parent of a customer-route holder is reached
    /// over an adjacency where the child is provider or peer — never a
    /// valley (re-checked here across random seeds; the unit test checks
    /// one seed).
    #[test]
    fn tree_parents_use_live_adjacencies(seed in 0u64..5_000) {
        let w = World::generate(WorldConfig::tiny(seed));
        let clean = FailedSet::default();
        let tree = compute_tree(&w, &clean, AsIdx(0));
        for v in 0..w.ases.len() {
            if let Some(info) = tree.routes[v] {
                if let Some((parent, adj_idx)) = info.parent {
                    let adj = &w.adjacencies[adj_idx.0 as usize];
                    let me = AsIdx(v as u32);
                    prop_assert!(
                        (adj.a == me && adj.b == parent) || (adj.b == me && adj.a == parent)
                    );
                    prop_assert!(clean.adjacency_up(&w, adj_idx));
                    prop_assert!(matches!(adj.rel, Rel::C2P | Rel::P2P));
                    // Hop counts decrease toward the origin.
                    let p_info = tree.routes[parent.0 as usize].expect("parent routed");
                    prop_assert_eq!(p_info.hops + 1, info.hops);
                }
            }
        }
    }
}

//! The generated ground-truth world: physical infrastructure, AS ecosystem,
//! peering fabric, community schemes and colocation-source snapshots.

use kepler_bgp::{Asn, Prefix};
use kepler_docmine::scheme::{CommunityScheme, DocStyle, SchemeEntry, SchemeTarget};
use kepler_topology::entities::{AsInfo, AsType, CityId, Facility, FacilityId, Ixp, IxpId};
use kepler_topology::geo::{CityGazetteer, Continent};
use kepler_topology::merge::merge_snapshots;
use kepler_topology::sources::{ColoSnapshot, SourceFacility, SourceIxp};
use kepler_topology::{ColocationMap, OrgMap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;

/// Dense AS index into [`World::ases`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsIdx(pub u32);

/// Dense prefix index into [`World::prefixes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrefixIdx(pub u32);

/// Dense adjacency index into [`World::adjacencies`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdjIdx(pub u32);

/// Business relationship of adjacency endpoint `a` toward `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `a` is a customer of `b` (a pays b for transit).
    C2P,
    /// Settlement-free peers.
    P2P,
}

/// Where one side of a physical link instance attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortLoc {
    /// Facility of the port; `None` only for the remote side of remote
    /// peering reached through an L2 reseller.
    pub facility: Option<FacilityId>,
    /// IXP fabric the port is on, if this is public peering.
    pub ixp: Option<IxpId>,
}

/// One physical instantiation of an AS-level adjacency. Adjacencies may
/// have several (PNI in two cities, plus a public session), ordered by
/// preference: when instance *i* fails, traffic shifts to instance *i+1*
/// without any AS-path change — exactly the implicit-withdrawal signal
/// Kepler keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjInstance {
    /// Attachment of endpoint `a`.
    pub a_side: PortLoc,
    /// Attachment of endpoint `b`.
    pub b_side: PortLoc,
    /// Route-server ASN when this is multilateral peering.
    pub via_rs: Option<Asn>,
}

/// An AS-level adjacency with its physical instantiations.
#[derive(Debug, Clone)]
pub struct Adjacency {
    /// First endpoint.
    pub a: AsIdx,
    /// Second endpoint.
    pub b: AsIdx,
    /// Relationship of `a` toward `b`.
    pub rel: Rel,
    /// Physical instances in preference order (never empty).
    pub instances: Vec<AdjInstance>,
}

impl Adjacency {
    /// The other endpoint as seen from `from`.
    pub fn other(&self, from: AsIdx) -> AsIdx {
        if from == self.a {
            self.b
        } else {
            self.a
        }
    }
}

/// One AS in the generated world.
#[derive(Debug, Clone)]
pub struct AsNode {
    /// The AS number.
    pub asn: Asn,
    /// Directory info (type, name, home city).
    pub info: AsInfo,
    /// Facilities the AS is a tenant of (ground truth).
    pub facilities: Vec<FacilityId>,
    /// IXPs joined locally (via a facility hosting the fabric).
    pub local_ixps: Vec<IxpId>,
    /// IXPs joined remotely through an L2 reseller.
    pub remote_ixps: Vec<IxpId>,
    /// Prefixes originated.
    pub prefixes: Vec<PrefixIdx>,
    /// The community scheme, if this operator tags ingress locations.
    pub scheme: Option<CommunityScheme>,
    /// Whether the operator also tags IPv6 routes (v6 tagging lags v4;
    /// drives the paper's 50% v4 vs 30% v6 coverage split).
    pub tags_v6: bool,
    /// Adjacency list: (neighbor, adjacency id).
    pub neighbors: Vec<(AsIdx, AdjIdx)>,
}

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Tier-1 backbone count.
    pub n_tier1: usize,
    /// Tier-2 transit count.
    pub n_tier2: usize,
    /// Content/CDN count.
    pub n_content: usize,
    /// Eyeball/access count.
    pub n_eyeball: usize,
    /// Stub/enterprise count.
    pub n_stub: usize,
    /// Facilities per continent, in [`Continent::ALL`] order. The paper's
    /// Table 1 "All" column is (878, 529, 233, 76, 26).
    pub facilities_per_continent: [usize; 5],
    /// Total IXP count (assigned to cities, biased to Europe).
    pub n_ixps: usize,
    /// Max facilities one IXP fabric spans (DE-CIX Frankfurt: 12).
    pub max_ixp_facilities: usize,
    /// Per-member cap of bilateral peers picked at each IXP.
    pub ixp_peers_per_member: usize,
    /// Probability a facility-colocated pair with peering incentive gets a
    /// PNI.
    pub pni_rate: f64,
    /// Fraction of IXP memberships that are remote (paper cites ≈20% at
    /// large IXPs).
    pub remote_peering_rate: f64,
    /// Probability that a scheme-holding operator documents it publicly.
    pub documentation_rate: f64,
    /// Probability that a scheme holder also tags IPv6.
    pub v6_tagging_rate: f64,
}

impl WorldConfig {
    /// Tiny world for unit tests (fast, still exercises every feature).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_tier1: 3,
            n_tier2: 10,
            n_content: 8,
            n_eyeball: 14,
            n_stub: 25,
            facilities_per_continent: [18, 10, 5, 2, 1],
            n_ixps: 6,
            max_ixp_facilities: 3,
            ixp_peers_per_member: 4,
            pni_rate: 0.5,
            remote_peering_rate: 0.2,
            documentation_rate: 0.9,
            v6_tagging_rate: 0.6,
        }
    }

    /// Mid-size world for integration tests and case-study scenarios.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_tier1: 8,
            n_tier2: 60,
            n_content: 40,
            n_eyeball: 120,
            n_stub: 300,
            facilities_per_continent: [180, 110, 50, 16, 6],
            n_ixps: 40,
            max_ixp_facilities: 6,
            ixp_peers_per_member: 5,
            pni_rate: 0.35,
            remote_peering_rate: 0.2,
            documentation_rate: 0.9,
            v6_tagging_rate: 0.6,
        }
    }

    /// Paper-scale world: Table 1's facility census (1,742 facilities)
    /// and a few thousand ASes.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_tier1: 12,
            n_tier2: 250,
            n_content: 150,
            n_eyeball: 500,
            n_stub: 1300,
            facilities_per_continent: [878, 529, 233, 76, 26],
            n_ixps: 300,
            max_ixp_facilities: 12,
            ixp_peers_per_member: 5,
            pni_rate: 0.3,
            remote_peering_rate: 0.2,
            documentation_rate: 0.9,
            v6_tagging_rate: 0.6,
        }
    }

    /// Total AS count.
    pub fn total_ases(&self) -> usize {
        self.n_tier1 + self.n_tier2 + self.n_content + self.n_eyeball + self.n_stub
    }
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// The shared gazetteer.
    pub gazetteer: CityGazetteer,
    /// Ground-truth colocation map (simulator's view).
    pub colo: ColocationMap,
    /// AS-to-organization map (with generated sibling groups).
    pub orgs: OrgMap,
    /// All ASes; `AsIdx` indexes this.
    pub ases: Vec<AsNode>,
    /// ASN → index.
    pub asn_to_idx: HashMap<Asn, AsIdx>,
    /// All adjacencies; `AdjIdx` indexes this.
    pub adjacencies: Vec<Adjacency>,
    /// Unordered-pair lookup into [`World::adjacencies`].
    pub adj_of: HashMap<(AsIdx, AsIdx), AdjIdx>,
    /// All originated prefixes with their origin AS.
    pub prefixes: Vec<(Prefix, AsIdx)>,
    /// All community schemes (documented or not), ground truth.
    pub schemes: Vec<CommunityScheme>,
    /// The two noisy colocation-source snapshots (detector input).
    pub snapshots: Vec<ColoSnapshot>,
}

impl World {
    /// Generates a world from `config`. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> World {
        Generator::new(config).run()
    }

    /// Node lookup by ASN.
    pub fn node(&self, asn: Asn) -> Option<&AsNode> {
        self.asn_to_idx.get(&asn).map(|&i| &self.ases[i.0 as usize])
    }

    /// The merged colocation map a detector would build from the published
    /// snapshots (ids align with ground truth by construction).
    pub fn detector_colomap(&self) -> ColocationMap {
        let (mut map, _) = merge_snapshots(&self.snapshots, &self.gazetteer);
        for a in &self.ases {
            map.add_as_info(a.info.clone());
        }
        map
    }

    /// IP address deterministically assigned to a collector peer slot.
    pub fn peer_addr(slot: usize) -> IpAddr {
        IpAddr::V4(std::net::Ipv4Addr::new(10, 9, (slot >> 8) as u8, (slot & 0xFF) as u8))
    }

    /// The prefix for `idx`.
    pub fn prefix(&self, idx: PrefixIdx) -> Prefix {
        self.prefixes[idx.0 as usize].0
    }

    /// The origin AS of a prefix.
    pub fn origin_of(&self, idx: PrefixIdx) -> AsIdx {
        self.prefixes[idx.0 as usize].1
    }

    /// The first IPv4 prefix originated by an AS — the canonical probe
    /// destination for data-plane campaigns toward that network.
    pub fn v4_prefix_of(&self, idx: AsIdx) -> Option<PrefixIdx> {
        self.ases[idx.0 as usize].prefixes.iter().copied().find(|p| self.prefix(*p).is_ipv4())
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

const FACILITY_OPERATORS: &[&str] = &[
    "Equinix",
    "Telehouse",
    "Interxion",
    "Coresite",
    "Digital Realty",
    "Telx",
    "Global Switch",
    "e-shelter",
    "NTT",
    "KDDI",
    "Cologix",
    "CyrusOne",
    "Sabey",
    "Iron Mountain",
];

struct Generator {
    config: WorldConfig,
    rng: StdRng,
    gazetteer: CityGazetteer,
    colo: ColocationMap,
    orgs: OrgMap,
    ases: Vec<AsNode>,
    adjacencies: Vec<Adjacency>,
    adj_index: HashMap<(AsIdx, AsIdx), AdjIdx>,
    prefixes: Vec<(Prefix, AsIdx)>,
    city_facilities: HashMap<CityId, Vec<FacilityId>>,
    // facility -> (weight used for preferential attachment)
    fac_weight: Vec<f64>,
    next_asn: u32,
}

impl Generator {
    fn new(config: WorldConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Generator {
            config,
            rng,
            gazetteer: CityGazetteer::new(),
            colo: ColocationMap::new(),
            orgs: OrgMap::new(),
            ases: Vec::new(),
            adjacencies: Vec::new(),
            adj_index: HashMap::new(),
            prefixes: Vec::new(),
            city_facilities: HashMap::new(),
            fac_weight: Vec::new(),
            next_asn: 100,
        }
    }

    fn run(mut self) -> World {
        self.make_facilities();
        self.make_ixps();
        self.make_ases();
        self.make_transit_edges();
        self.make_peering_edges();
        self.make_prefixes();
        self.make_schemes();
        self.finalize_neighbors();
        let snapshots = self.make_snapshots();
        let schemes: Vec<CommunityScheme> =
            self.ases.iter().filter_map(|a| a.scheme.clone()).collect();
        let asn_to_idx: HashMap<Asn, AsIdx> =
            self.ases.iter().enumerate().map(|(i, a)| (a.asn, AsIdx(i as u32))).collect();
        World {
            config: self.config,
            gazetteer: self.gazetteer,
            colo: self.colo,
            orgs: self.orgs,
            ases: self.ases,
            asn_to_idx,
            adjacencies: self.adjacencies,
            adj_of: self.adj_index,
            prefixes: self.prefixes,
            schemes,
            snapshots,
        }
    }

    fn cities_of(&self, continent: Continent) -> Vec<usize> {
        self.gazetteer
            .cities()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.continent == continent)
            .map(|(i, _)| i)
            .collect()
    }

    fn make_facilities(&mut self) {
        let per_continent = self.config.facilities_per_continent;
        let mut next_id = 0u32;
        for (ci, &count) in Continent::ALL.iter().zip(per_continent.iter()) {
            let cities = self.cities_of(*ci);
            if cities.is_empty() {
                continue;
            }
            // Zipf-ish weights: first cities of a continent are its hubs.
            let weights: Vec<f64> = (0..cities.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let total: f64 = weights.iter().sum();
            for _ in 0..count {
                let mut pick = self.rng.gen_range(0.0..total);
                let mut chosen = cities[0];
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        chosen = cities[i];
                        break;
                    }
                    pick -= w;
                }
                let city = &self.gazetteer.cities()[chosen];
                let op = FACILITY_OPERATORS.choose(&mut self.rng).expect("ops");
                let id = FacilityId(next_id);
                next_id += 1;
                // Per-city ordinal keeps names globally unique (the NER in
                // kepler-docmine relies on unambiguous facility names).
                let ordinal =
                    self.city_facilities.get(&CityId(chosen as u32)).map(Vec::len).unwrap_or(0) + 1;
                let name = format!("{op} {}{}", city.iata, ordinal);
                self.colo.add_facility(Facility {
                    id,
                    name,
                    address: format!("{} Infrastructure Way", id.0 + 1),
                    postcode: format!("{}{:05}", city.iata, id.0),
                    country: city.country.to_string(),
                    city: CityId(chosen as u32),
                    continent: *ci,
                    point: city.point,
                    operator: op.to_string(),
                });
                self.city_facilities.entry(CityId(chosen as u32)).or_default().push(id);
                // Facility attractiveness: early ids in big cities dominate.
                let w = 1.0 / ((self.fac_weight.len() % 97) as f64 + 1.0);
                self.fac_weight.push(w);
            }
        }
    }

    fn make_ixps(&mut self) {
        // Cities ranked by facility count host IXPs first; Europe gets extra.
        let mut ranked: Vec<(CityId, usize)> =
            self.city_facilities.iter().map(|(c, f)| (*c, f.len())).collect();
        ranked.sort_by_key(|(c, n)| (std::cmp::Reverse(*n), c.0));
        let mut rs_asn = 59000u32;
        for k in 0..self.config.n_ixps {
            let (city_id, _) = ranked[k % ranked.len()];
            let city = &self.gazetteer.cities()[city_id.0 as usize];
            let nth = k / ranked.len();
            let name = if nth == 0 {
                format!("{}-IX", city.alias)
            } else {
                format!("{}-IX{}", city.alias, nth + 1)
            };
            let id = IxpId(k as u32);
            let has_rs = self.rng.gen_bool(0.7);
            let rs = if has_rs {
                let a = Asn(rs_asn);
                rs_asn += 1;
                Some(a)
            } else {
                None
            };
            self.colo.add_ixp(Ixp {
                id,
                name: name.clone(),
                url: format!("{}.example.net", name.to_ascii_lowercase()),
                city: city_id,
                continent: city.continent,
                route_server_asn: rs,
            });
            // Spread the fabric over 1..=max facilities of the city (hubs
            // get bigger fabrics).
            let facs = self.city_facilities.get(&city_id).cloned().unwrap_or_default();
            if facs.is_empty() {
                continue;
            }
            let span =
                self.rng.gen_range(1..=self.config.max_ixp_facilities.min(facs.len()).max(1));
            let mut shuffled = facs;
            shuffled.shuffle(&mut self.rng);
            for f in shuffled.into_iter().take(span) {
                self.colo.link_ixp_facility(id, f);
            }
        }
    }

    fn alloc_asn(&mut self) -> Asn {
        let a = Asn(self.next_asn);
        self.next_asn += 7; // keep ASNs sparse-ish and 16-bit for a while
        a
    }

    fn pick_weighted_facility(&mut self, candidates: &[FacilityId]) -> Option<FacilityId> {
        if candidates.is_empty() {
            return None;
        }
        let total: f64 = candidates.iter().map(|f| self.fac_weight[f.0 as usize]).sum();
        let mut pick = self.rng.gen_range(0.0..total.max(1e-12));
        for f in candidates {
            let w = self.fac_weight[f.0 as usize];
            if pick < w {
                return Some(*f);
            }
            pick -= w;
        }
        candidates.last().copied()
    }

    fn make_one_as(&mut self, as_type: AsType, n_cities: usize, facs_per_city: usize) {
        let asn = self.alloc_asn();
        let all_cities: Vec<CityId> = self.city_facilities.keys().copied().collect();
        let mut cities = all_cities;
        cities.sort_by_key(|c| c.0);
        // Home city biased toward hubs for big players, uniform for edge.
        let home = match as_type {
            AsType::Tier1 | AsType::Content => {
                let hubs: Vec<CityId> = {
                    let mut v: Vec<(CityId, usize)> =
                        self.city_facilities.iter().map(|(c, f)| (*c, f.len())).collect();
                    v.sort_by_key(|(c, n)| (std::cmp::Reverse(*n), c.0));
                    v.into_iter().take(10).map(|(c, _)| c).collect()
                };
                *hubs.choose(&mut self.rng).expect("hubs")
            }
            _ => *cities.choose(&mut self.rng).expect("cities"),
        };
        let mut chosen_cities: BTreeSet<CityId> = BTreeSet::new();
        chosen_cities.insert(home);
        while chosen_cities.len() < n_cities.min(cities.len()) {
            chosen_cities.insert(*cities.choose(&mut self.rng).expect("cities"));
        }
        let mut facilities: BTreeSet<FacilityId> = BTreeSet::new();
        for city in &chosen_cities {
            let cands = self.city_facilities.get(city).cloned().unwrap_or_default();
            for _ in 0..facs_per_city {
                if let Some(f) = self.pick_weighted_facility(&cands) {
                    facilities.insert(f);
                }
            }
        }
        let idx = AsIdx(self.ases.len() as u32);
        for &f in &facilities {
            self.colo.add_fac_member(f, asn);
        }
        // Local IXP memberships: any IXP with fabric in one of our
        // facilities, joined with a type-dependent probability.
        let join_p = match as_type {
            AsType::Tier1 => 0.35,
            AsType::Tier2 => 0.7,
            AsType::Content => 0.9,
            AsType::Eyeball => 0.8,
            AsType::Stub => 0.4,
            AsType::RouteServer => 0.0,
        };
        let mut local_ixps: BTreeSet<IxpId> = BTreeSet::new();
        for &f in &facilities {
            for &x in self.colo.ixps_at_facility(f) {
                if self.rng.gen_bool(join_p) {
                    local_ixps.insert(x);
                }
            }
        }
        // Remote memberships through resellers: pick big faraway IXPs.
        let mut remote_ixps: BTreeSet<IxpId> = BTreeSet::new();
        if matches!(as_type, AsType::Content | AsType::Eyeball | AsType::Tier2)
            && self.rng.gen_bool(self.config.remote_peering_rate)
        {
            let n_ixp = self.colo.ixps().len();
            if n_ixp > 0 {
                let target = IxpId(self.rng.gen_range(0..n_ixp.min(8)) as u32);
                if !local_ixps.contains(&target) {
                    remote_ixps.insert(target);
                }
            }
        }
        for &x in local_ixps.iter().chain(remote_ixps.iter()) {
            self.colo.add_ixp_member(x, asn);
        }
        let info =
            AsInfo { asn, name: format!("{:?}-{}", as_type, asn.0), as_type, home_city: home };
        self.colo.add_as_info(info.clone());
        self.ases.push(AsNode {
            asn,
            info,
            facilities: facilities.into_iter().collect(),
            local_ixps: local_ixps.into_iter().collect(),
            remote_ixps: remote_ixps.into_iter().collect(),
            prefixes: Vec::new(),
            scheme: None,
            tags_v6: false,
            neighbors: Vec::new(),
        });
        let _ = idx;
    }

    fn make_ases(&mut self) {
        let spec: Vec<(AsType, usize, usize, usize)> = vec![
            // (type, count, cities, facilities-per-city)
            (AsType::Tier1, self.config.n_tier1, 18, 2),
            (AsType::Tier2, self.config.n_tier2, 5, 2),
            (AsType::Content, self.config.n_content, 8, 1),
            (AsType::Eyeball, self.config.n_eyeball, 2, 2),
            (AsType::Stub, self.config.n_stub, 1, 1),
        ];
        for (t, count, cities, fpc) in spec {
            for _ in 0..count {
                self.make_one_as(t, cities, fpc);
            }
        }
        // Sibling organizations: group a few ASes under shared operators
        // (used by the operator-level classifier).
        let mut i = 0usize;
        while i + 2 < self.ases.len() {
            if self.rng.gen_bool(0.04) {
                let org = self.orgs.add_org(&format!("Org-{i}"));
                for j in 0..self.rng.gen_range(2..=3usize) {
                    self.orgs.assign(self.ases[i + j].asn, org);
                }
                i += 3;
            } else {
                i += 1;
            }
        }
    }

    fn type_ranges(&self) -> BTreeMap<AsType, std::ops::Range<usize>> {
        let c = &self.config;
        let mut m = BTreeMap::new();
        let mut at = 0usize;
        for (t, n) in [
            (AsType::Tier1, c.n_tier1),
            (AsType::Tier2, c.n_tier2),
            (AsType::Content, c.n_content),
            (AsType::Eyeball, c.n_eyeball),
            (AsType::Stub, c.n_stub),
        ] {
            m.insert(t, at..at + n);
            at += n;
        }
        m
    }

    /// Creates a transit (C2P) adjacency with a physical instantiation.
    fn add_transit(&mut self, customer: AsIdx, provider: AsIdx) {
        if customer == provider || self.adj_index.contains_key(&key(customer, provider)) {
            return;
        }
        // Prefer a common facility; otherwise use a provider facility near
        // the customer's home (a tethered cross-metro circuit).
        let c_facs: BTreeSet<FacilityId> =
            self.ases[customer.0 as usize].facilities.iter().copied().collect();
        let p_facs = &self.ases[provider.0 as usize].facilities;
        let common: Vec<FacilityId> =
            p_facs.iter().copied().filter(|f| c_facs.contains(f)).collect();
        let fac = if let Some(f) = common.first() {
            *f
        } else if let Some(f) = p_facs.first() {
            *f
        } else if let Some(f) = self.ases[customer.0 as usize].facilities.first() {
            *f
        } else {
            return; // both facility-less: skip (no physical path)
        };
        let inst = AdjInstance {
            a_side: PortLoc { facility: Some(fac), ixp: None },
            b_side: PortLoc { facility: Some(fac), ixp: None },
            via_rs: None,
        };
        // Big customers buy redundant transit at a second site when possible.
        let mut instances = vec![inst];
        if common.len() > 1 && self.rng.gen_bool(0.5) {
            let f2 = common[1];
            instances.push(AdjInstance {
                a_side: PortLoc { facility: Some(f2), ixp: None },
                b_side: PortLoc { facility: Some(f2), ixp: None },
                via_rs: None,
            });
        }
        let id = AdjIdx(self.adjacencies.len() as u32);
        self.adjacencies.push(Adjacency { a: customer, b: provider, rel: Rel::C2P, instances });
        self.adj_index.insert(key(customer, provider), id);
    }

    fn make_transit_edges(&mut self) {
        let ranges = self.type_ranges();
        let t1 = ranges[&AsType::Tier1].clone();
        let t2 = ranges[&AsType::Tier2].clone();
        let content = ranges[&AsType::Content].clone();
        let eyeball = ranges[&AsType::Eyeball].clone();
        let stub = ranges[&AsType::Stub].clone();

        // Tier-1 full mesh (peers, PNI at shared hubs).
        let t1v: Vec<usize> = t1.clone().collect();
        for i in 0..t1v.len() {
            for j in i + 1..t1v.len() {
                let (a, b) = (AsIdx(t1v[i] as u32), AsIdx(t1v[j] as u32));
                let common = self.common_facilities(a, b);
                let fac = common
                    .first()
                    .copied()
                    .or_else(|| self.ases[a.0 as usize].facilities.first().copied());
                let Some(fac) = fac else { continue };
                let inst = AdjInstance {
                    a_side: PortLoc { facility: Some(fac), ixp: None },
                    b_side: PortLoc { facility: Some(fac), ixp: None },
                    via_rs: None,
                };
                let mut instances = vec![inst];
                for f2 in common.iter().skip(1).take(2) {
                    instances.push(AdjInstance {
                        a_side: PortLoc { facility: Some(*f2), ixp: None },
                        b_side: PortLoc { facility: Some(*f2), ixp: None },
                        via_rs: None,
                    });
                }
                let id = AdjIdx(self.adjacencies.len() as u32);
                self.adjacencies.push(Adjacency { a, b, rel: Rel::P2P, instances });
                self.adj_index.insert(key(a, b), id);
            }
        }
        // Tier-2 -> 1..3 Tier-1 providers.
        for i in t2.clone() {
            let n = self.rng.gen_range(1..=3usize);
            for _ in 0..n {
                let p = AsIdx(self.rng.gen_range(t1.clone()) as u32);
                self.add_transit(AsIdx(i as u32), p);
            }
        }
        // Content -> tier2/tier1.
        for i in content.clone() {
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let p = if self.rng.gen_bool(0.5) {
                    self.rng.gen_range(t1.clone())
                } else {
                    self.rng.gen_range(t2.clone())
                };
                self.add_transit(AsIdx(i as u32), AsIdx(p as u32));
            }
        }
        // Eyeballs -> tier2 (and rarely tier1).
        for i in eyeball.clone() {
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let p = if self.rng.gen_bool(0.15) {
                    self.rng.gen_range(t1.clone())
                } else {
                    self.rng.gen_range(t2.clone())
                };
                self.add_transit(AsIdx(i as u32), AsIdx(p as u32));
            }
        }
        // Stubs -> eyeball/tier2.
        for i in stub {
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let p = if self.rng.gen_bool(0.4) {
                    self.rng.gen_range(eyeball.clone())
                } else {
                    self.rng.gen_range(t2.clone())
                };
                self.add_transit(AsIdx(i as u32), AsIdx(p as u32));
            }
        }
    }

    fn common_facilities(&self, a: AsIdx, b: AsIdx) -> Vec<FacilityId> {
        let fa: BTreeSet<FacilityId> = self.ases[a.0 as usize].facilities.iter().copied().collect();
        self.ases[b.0 as usize].facilities.iter().copied().filter(|f| fa.contains(f)).collect()
    }

    /// The facility where `asx` attaches to `ixp` (its tenant facility
    /// hosting the fabric), or a reseller port for remote members.
    fn ixp_port(&mut self, asx: AsIdx, ixp: IxpId) -> PortLoc {
        let node = &self.ases[asx.0 as usize];
        let fabric = self.colo.facilities_of_ixp(ixp).clone();
        let mine: Vec<FacilityId> =
            node.facilities.iter().copied().filter(|f| fabric.contains(f)).collect();
        if let Some(f) = mine.first() {
            PortLoc { facility: Some(*f), ixp: Some(ixp) }
        } else {
            // Remote member: the reseller lands on some fabric facility; the
            // AS itself is *not* a tenant there (the paper's remote-impact
            // mechanism).
            let f = fabric.iter().next().copied();
            PortLoc { facility: f, ixp: Some(ixp) }
        }
    }

    fn add_public_peering(&mut self, a: AsIdx, b: AsIdx, ixp: IxpId, via_rs: Option<Asn>) {
        if a == b {
            return;
        }
        let a_side = self.ixp_port(a, ixp);
        let b_side = self.ixp_port(b, ixp);
        let inst = AdjInstance { a_side, b_side, via_rs };
        if let Some(&id) = self.adj_index.get(&key(a, b)) {
            // Existing adjacency (maybe PNI): append a public instance.
            let adj = &mut self.adjacencies[id.0 as usize];
            if adj.rel == Rel::P2P && !adj.instances.contains(&inst) {
                // Orientation of a/b may be swapped; normalize sides.
                if adj.a == a {
                    adj.instances.push(inst);
                } else {
                    adj.instances.push(AdjInstance { a_side: b_side, b_side: a_side, via_rs });
                }
            }
            return;
        }
        let id = AdjIdx(self.adjacencies.len() as u32);
        self.adjacencies.push(Adjacency { a, b, rel: Rel::P2P, instances: vec![inst] });
        self.adj_index.insert(key(a, b), id);
    }

    fn make_peering_edges(&mut self) {
        // PNIs between co-located content/eyeball/tier2 pairs.
        let n = self.ases.len();
        for i in 0..n {
            let ti = self.ases[i].info.as_type;
            if !matches!(ti, AsType::Content | AsType::Eyeball | AsType::Tier2) {
                continue;
            }
            for j in i + 1..n {
                let tj = self.ases[j].info.as_type;
                let incentive = matches!(
                    (ti, tj),
                    (AsType::Content, AsType::Eyeball)
                        | (AsType::Eyeball, AsType::Content)
                        | (AsType::Tier2, AsType::Tier2)
                        | (AsType::Content, AsType::Tier2)
                        | (AsType::Tier2, AsType::Content)
                );
                if !incentive {
                    continue;
                }
                let (a, b) = (AsIdx(i as u32), AsIdx(j as u32));
                let common = self.common_facilities(a, b);
                if common.is_empty() || !self.rng.gen_bool(self.config.pni_rate) {
                    continue;
                }
                if self.adj_index.contains_key(&key(a, b)) {
                    continue;
                }
                let mut instances = Vec::new();
                for f in common.iter().take(2) {
                    instances.push(AdjInstance {
                        a_side: PortLoc { facility: Some(*f), ixp: None },
                        b_side: PortLoc { facility: Some(*f), ixp: None },
                        via_rs: None,
                    });
                }
                let id = AdjIdx(self.adjacencies.len() as u32);
                self.adjacencies.push(Adjacency { a, b, rel: Rel::P2P, instances });
                self.adj_index.insert(key(a, b), id);
            }
        }
        // Public peering at IXPs: each member peers with up to K others,
        // multilateral via the route server when one exists.
        let n_ixps = self.colo.ixps().len();
        for x in 0..n_ixps {
            let ixp = IxpId(x as u32);
            let rs = self.colo.ixp(ixp).and_then(|i| i.route_server_asn);
            let members: Vec<AsIdx> = self
                .ases
                .iter()
                .enumerate()
                .filter(|(_, a)| a.local_ixps.contains(&ixp) || a.remote_ixps.contains(&ixp))
                .map(|(i, _)| AsIdx(i as u32))
                .collect();
            if members.len() < 2 {
                continue;
            }
            let k = self.config.ixp_peers_per_member;
            for (mi, &m) in members.iter().enumerate() {
                for _ in 0..k {
                    let other = members[self.rng.gen_range(0..members.len())];
                    if other == m {
                        continue;
                    }
                    // Skip pairs with a transit relationship.
                    if let Some(&id) = self.adj_index.get(&key(m, other)) {
                        if self.adjacencies[id.0 as usize].rel == Rel::C2P {
                            continue;
                        }
                    }
                    let via = if self.rng.gen_bool(0.8) { rs } else { None };
                    self.add_public_peering(m, other, ixp, via);
                }
                let _ = mi;
            }
        }
    }

    fn make_prefixes(&mut self) {
        let mut next = 0u32;
        for i in 0..self.ases.len() {
            let t = self.ases[i].info.as_type;
            let (n4, p6) = match t {
                AsType::Tier1 => (3usize, 0.8),
                AsType::Tier2 => (2, 0.5),
                AsType::Content => (3, 0.7),
                AsType::Eyeball => (2, 0.35),
                AsType::Stub => (1, 0.1),
                AsType::RouteServer => (0, 0.0),
            };
            for _ in 0..n4 {
                // /16s from 20.0.0.0 upward, skipping any bogon collision.
                let base = 20u32 * 0x0100_0000 + next * 0x1_0000;
                next += 1;
                let p = Prefix::new(IpAddr::V4(std::net::Ipv4Addr::from(base)), 16)
                    .expect("valid generated prefix");
                debug_assert!(!p.is_bogon());
                let pid = PrefixIdx(self.prefixes.len() as u32);
                self.prefixes.push((p, AsIdx(i as u32)));
                self.ases[i].prefixes.push(pid);
            }
            if self.rng.gen_bool(p6) {
                let bits: u128 = (0x2600u128 << 112) | ((next as u128) << 80);
                next += 1;
                let p = Prefix::new(IpAddr::V6(std::net::Ipv6Addr::from(bits)), 32)
                    .expect("valid generated v6 prefix");
                let pid = PrefixIdx(self.prefixes.len() as u32);
                self.prefixes.push((p, AsIdx(i as u32)));
                self.ases[i].prefixes.push(pid);
            }
        }
    }

    fn make_schemes(&mut self) {
        for i in 0..self.ases.len() {
            let t = self.ases[i].info.as_type;
            let adopt_p = match t {
                AsType::Tier1 => 1.0,
                AsType::Tier2 => 0.8,
                AsType::Content => 0.5,
                AsType::Eyeball => 0.25,
                AsType::Stub => 0.03,
                AsType::RouteServer => 0.0,
            };
            if !self.rng.gen_bool(adopt_p) || !self.ases[i].asn.is_16bit() {
                continue;
            }
            // Granularity style: facility-level (fine), city-level (coarse),
            // or mixed facility+IXP (like the paper's Init7 example).
            let style_roll: f64 = self.rng.gen();
            let mut entries: Vec<SchemeEntry> = Vec::new();
            let mut value = 50_000u16;
            let node_facs = self.ases[i].facilities.clone();
            let node_ixps: Vec<IxpId> = self.ases[i]
                .local_ixps
                .iter()
                .chain(self.ases[i].remote_ixps.iter())
                .copied()
                .collect();
            if style_roll < 0.45 {
                // City-granularity scheme.
                let mut seen = BTreeSet::new();
                for f in &node_facs {
                    let fac = self.colo.facility(*f).expect("facility");
                    if seen.insert(fac.city) {
                        let city = &self.gazetteer.cities()[fac.city.0 as usize];
                        let ident = match self.rng.gen_range(0..3) {
                            0 => city.name.to_string(),
                            1 => city.iata.to_string(),
                            _ => city.alias.to_string(),
                        };
                        entries.push(SchemeEntry {
                            value,
                            target: SchemeTarget::City { ident, city: fac.city },
                        });
                        value += 2;
                    }
                }
            } else {
                // Facility-granularity, plus IXP entries when mixed.
                for f in &node_facs {
                    let fac = self.colo.facility(*f).expect("facility");
                    entries.push(SchemeEntry {
                        value,
                        target: SchemeTarget::Facility { name: fac.name.clone(), id: *f },
                    });
                    value += 2;
                }
                if style_roll > 0.7 {
                    for x in &node_ixps {
                        let ixp = self.colo.ixp(*x).expect("ixp");
                        entries.push(SchemeEntry {
                            value,
                            target: SchemeTarget::Ixp { name: ixp.name.clone(), id: *x },
                        });
                        value += 2;
                    }
                }
            }
            if entries.is_empty() {
                continue;
            }
            let scheme = CommunityScheme {
                asn: self.ases[i].asn,
                entries,
                action_values: vec![9001, 9002, 666],
                documented: self.rng.gen_bool(self.config.documentation_rate),
                style: if self.rng.gen_bool(0.6) {
                    DocStyle::IrrRemarks
                } else {
                    DocStyle::WebPage
                },
            };
            self.ases[i].tags_v6 = self.rng.gen_bool(self.config.v6_tagging_rate);
            self.ases[i].scheme = Some(scheme);
        }
    }

    fn finalize_neighbors(&mut self) {
        for (id, adj) in self.adjacencies.iter().enumerate() {
            let id = AdjIdx(id as u32);
            self.ases[adj.a.0 as usize].neighbors.push((adj.b, id));
            self.ases[adj.b.0 as usize].neighbors.push((adj.a, id));
        }
        for a in &mut self.ases {
            a.neighbors.sort_by_key(|(n, _)| *n);
        }
    }

    /// Publishes the two noisy source snapshots. Snapshot A ("peeringdb")
    /// covers every facility in ground-truth id order — this keeps merged
    /// ids aligned with ground-truth ids, which the whole evaluation relies
    /// on. Snapshot B ("datacentermap") re-lists a subset under different
    /// names with partially overlapping tenant lists.
    fn make_snapshots(&mut self) -> Vec<ColoSnapshot> {
        let mut a = ColoSnapshot::new("peeringdb");
        let mut b = ColoSnapshot::new("datacentermap");
        for f in self.colo.facilities() {
            let tenants: Vec<Asn> = self.colo.members_of_facility(f.id).iter().copied().collect();
            // A omits a small fraction of tenants; B holds a different subset.
            let a_tenants: Vec<Asn> =
                tenants.iter().copied().filter(|_| self.rng.gen_bool(0.95)).collect();
            let b_tenants: Vec<Asn> =
                tenants.iter().copied().filter(|_| self.rng.gen_bool(0.6)).collect();
            let city = self.gazetteer.cities()[f.city.0 as usize].name.to_string();
            a.facilities.push(SourceFacility {
                name: f.name.clone(),
                address: f.address.clone(),
                postcode: f.postcode.clone(),
                country: f.country.clone(),
                city_name: city.clone(),
                operator: f.operator.clone(),
                point: Some(f.point),
                tenants: a_tenants,
            });
            if self.rng.gen_bool(0.7) {
                b.facilities.push(SourceFacility {
                    name: format!("{} Datacenter", f.name.to_ascii_uppercase()),
                    address: f.address.clone(),
                    postcode: f.postcode.to_ascii_lowercase(),
                    country: f.country.to_ascii_lowercase(),
                    city_name: city,
                    operator: String::new(),
                    point: None,
                    tenants: b_tenants,
                });
            }
        }
        for x in self.colo.ixps() {
            let members: Vec<Asn> = self.colo.members_of_ixp(x.id).iter().copied().collect();
            let keys: Vec<(String, String)> = self
                .colo
                .facilities_of_ixp(x.id)
                .iter()
                .filter_map(|f| self.colo.facility(*f))
                .map(|f| (f.postcode.clone(), f.country.clone()))
                .collect();
            let city = self.gazetteer.cities()[x.city.0 as usize].name.to_string();
            a.ixps.push(SourceIxp {
                name: x.name.clone(),
                url: format!("https://www.{}/", x.url),
                city_name: city,
                members,
                facility_keys: keys,
                route_server_asn: x.route_server_asn,
            });
        }
        vec![a, b]
    }
}

fn key(a: AsIdx, b: AsIdx) -> (AsIdx, AsIdx) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_is_deterministic() {
        let w1 = World::generate(WorldConfig::tiny(7));
        let w2 = World::generate(WorldConfig::tiny(7));
        assert_eq!(w1.ases.len(), w2.ases.len());
        assert_eq!(w1.prefixes.len(), w2.prefixes.len());
        assert_eq!(w1.adjacencies.len(), w2.adjacencies.len());
        assert_eq!(
            w1.ases.iter().map(|a| a.asn).collect::<Vec<_>>(),
            w2.ases.iter().map(|a| a.asn).collect::<Vec<_>>()
        );
    }

    #[test]
    fn facility_census_matches_config() {
        let cfg = WorldConfig::tiny(3);
        let w = World::generate(cfg.clone());
        assert_eq!(w.colo.facilities().len(), cfg.facilities_per_continent.iter().sum::<usize>());
        for (ci, &expect) in Continent::ALL.iter().zip(cfg.facilities_per_continent.iter()) {
            let got = w.colo.facilities().iter().filter(|f| f.continent == *ci).count();
            assert_eq!(got, expect, "{ci}");
        }
    }

    #[test]
    fn every_adjacency_has_instances_and_endpoints_exist() {
        let w = World::generate(WorldConfig::tiny(11));
        assert!(!w.adjacencies.is_empty());
        for adj in &w.adjacencies {
            assert!(!adj.instances.is_empty());
            assert!((adj.a.0 as usize) < w.ases.len());
            assert!((adj.b.0 as usize) < w.ases.len());
            assert_ne!(adj.a, adj.b);
        }
    }

    #[test]
    fn stubs_have_providers() {
        let w = World::generate(WorldConfig::tiny(5));
        for (i, a) in w.ases.iter().enumerate() {
            if a.info.as_type == AsType::Stub {
                let has_provider = a.neighbors.iter().any(|(_, adj)| {
                    let adj = &w.adjacencies[adj.0 as usize];
                    adj.rel == Rel::C2P && adj.a == AsIdx(i as u32)
                });
                assert!(has_provider, "stub {} lacks transit", a.asn);
            }
        }
    }

    #[test]
    fn detector_colomap_ids_align_with_ground_truth() {
        let w = World::generate(WorldConfig::tiny(9));
        let det = w.detector_colomap();
        assert_eq!(det.facilities().len(), w.colo.facilities().len());
        for (g, d) in w.colo.facilities().iter().zip(det.facilities()) {
            assert_eq!(g.id, d.id);
            assert_eq!(g.postcode, d.postcode);
            assert_eq!(g.city, d.city);
        }
        assert_eq!(det.ixps().len(), w.colo.ixps().len());
        for (g, d) in w.colo.ixps().iter().zip(det.ixps()) {
            assert_eq!(g.id, d.id);
            assert_eq!(g.route_server_asn, d.route_server_asn);
        }
    }

    #[test]
    fn schemes_reference_real_entities() {
        let w = World::generate(WorldConfig::tiny(13));
        assert!(!w.schemes.is_empty());
        for s in &w.schemes {
            for e in &s.entries {
                match &e.target {
                    SchemeTarget::Facility { id, .. } => assert!(w.colo.facility(*id).is_some()),
                    SchemeTarget::Ixp { id, .. } => assert!(w.colo.ixp(*id).is_some()),
                    SchemeTarget::City { city, .. } => {
                        assert!((city.0 as usize) < w.gazetteer.len())
                    }
                }
            }
        }
    }

    #[test]
    fn prefixes_are_clean_and_owned() {
        let w = World::generate(WorldConfig::tiny(17));
        assert!(!w.prefixes.is_empty());
        for (p, origin) in &w.prefixes {
            assert!(!p.is_bogon());
            assert!(p.is_conventional_size());
            assert!((origin.0 as usize) < w.ases.len());
        }
        // v4 and v6 both present.
        assert!(w.prefixes.iter().any(|(p, _)| p.is_ipv4()));
        assert!(w.prefixes.iter().any(|(p, _)| p.is_ipv6()));
    }

    #[test]
    fn member_count_distribution_is_skewed() {
        let w = World::generate(WorldConfig::small(21));
        let counts: Vec<usize> =
            w.colo.facilities().iter().map(|f| w.colo.members_of_facility(f.id).len()).collect();
        let small = counts.iter().filter(|&&c| c < 6).count();
        let big = counts.iter().filter(|&&c| c >= 20).count();
        assert!(small > counts.len() / 3, "many small facilities ({small}/{})", counts.len());
        assert!(big > 0, "some big hubs exist");
    }

    #[test]
    fn remote_peering_exists() {
        let w = World::generate(WorldConfig::small(23));
        let remote = w.ases.iter().filter(|a| !a.remote_ixps.is_empty()).count();
        assert!(remote > 0, "remote peering generated");
    }
}

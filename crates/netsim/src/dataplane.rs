//! Traceroute data-plane substitute.
//!
//! Stands in for RIPE Atlas / CAIDA Ark / iPlane plus the paper's targeted
//! campaigns: interface-level paths are derived from the same physical
//! topology the control plane routes over, so control-plane inferences can
//! be *validated* against an independent-looking view, exactly as Kepler's
//! data-plane analysis module does (§4.4).
//!
//! Fidelity notes:
//! * interface addresses are synthesized deterministically per (AS,
//!   facility) port and per IXP peering LAN, and the reverse mapping is
//!   exposed through [`DataplaneSim::locate`] — the traIXroute-style
//!   IP-to-infrastructure resolution of [50, 76];
//! * RTTs are great-circle propagation over the traversed facilities plus
//!   per-hop jitter;
//! * after an outage is repaired the data plane converges *faster* than
//!   BGP but not instantly: ≈85% of paths are back within an hour
//!   (Figure 10b), modeled as a deterministic per-(pair, event) delay.

use crate::events::{EventKind, ScheduledEvent};
use crate::routing::policy::FailedSet;
use crate::routing::propagate::{compute_tree, RouteTree};
use crate::routing::tag::snapshot_route;
use crate::world::{AsIdx, PrefixIdx, World};
use kepler_bgp::Asn;
use kepler_probe::splitmix64 as splitmix;
use kepler_topology::{FacilityId, GeoPoint, IxpId};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

// The interface-level trace vocabulary is owned by `kepler-probe` (the
// detector-side path analysis consumes the same types); this module
// re-exports it so simulator callers keep their historical paths.
pub use kepler_probe::{IfaceOwner, TraceHop};

/// A measured (source AS, destination prefix) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbePair {
    /// Probe host's AS.
    pub src: AsIdx,
    /// Target prefix.
    pub dst: PrefixIdx,
}

/// One traceroute measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceroutePath {
    /// What was measured.
    pub pair: ProbePair,
    /// When.
    pub time: u64,
    /// The hops (empty if the destination was unreachable).
    pub hops: Vec<TraceHop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl TraceroutePath {
    /// End-to-end RTT (last hop), if reached.
    pub fn rtt_ms(&self) -> Option<f64> {
        if self.reached {
            self.hops.last().map(|h| h.rtt_ms)
        } else {
            None
        }
    }

    /// Whether any hop crosses the given IXP.
    pub fn crosses_ixp(&self, ixp: IxpId) -> bool {
        kepler_probe::trace::ixp_hop(&self.hops, ixp).is_some()
    }

    /// Whether any hop crosses the given facility.
    pub fn crosses_facility(&self, fac: FacilityId) -> bool {
        kepler_probe::trace::facility_hop(&self.hops, fac).is_some()
    }
}

/// Measurement-fidelity knobs of the simulated data plane. The default is
/// the ideal probe: lossless, jittering like the historical model, with a
/// standard TTL budget — existing callers see identical traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataplaneConfig {
    /// Probability an intermediate hop silently drops the probe (the `*`
    /// rows of a real traceroute): the hop is absent from the result but
    /// the trace continues.
    pub hop_loss: f64,
    /// Fixed extra per-hop latency in milliseconds (busy routers).
    pub extra_hop_latency_ms: f64,
    /// Peak per-hop jitter in milliseconds.
    pub jitter_ms: f64,
    /// TTL budget: traces needing more hops than this are truncated and
    /// reported unreached.
    pub max_ttl: usize,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig { hop_loss: 0.0, extra_hop_latency_ms: 0.0, jitter_ms: 0.4, max_ttl: 30 }
    }
}

/// Shared routing-tree cache for **batched traceroute simulation**.
///
/// Computing a route means building the per-origin routing tree
/// ([`compute_tree`]) — by far the dominant cost of a simulated
/// traceroute. But the tree depends only on the *origin* and the set of
/// timeline events active for the measured (pair, time), so within a
/// campaign (many vantages × few targets, one failure state) the same
/// tree is recomputed over and over. A `TreeCache` keyed on
/// `(origin, active event set)` computes each distinct tree once and
/// shares it across the whole campaign — and, when held by a persistent
/// backend, across campaigns of consecutive bins.
///
/// Caching is exact, not approximate: the key captures everything
/// [`compute_tree`] reads besides the immutable world, so cached and
/// uncached campaigns are bit-identical (tested below).
#[derive(Debug, Default)]
pub struct TreeCache {
    trees: HashMap<(u32, Vec<u32>), RouteTree>,
    hits: u64,
    misses: u64,
}

/// Retained trees before the cache evicts wholesale (bounds memory on
/// multi-year replays; a campaign needs far fewer distinct trees).
const TREE_CACHE_CAP: usize = 4096;

impl TreeCache {
    /// An empty cache.
    pub fn new() -> Self {
        TreeCache::default()
    }

    /// (hits, misses) since construction — the speedup audit trail.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct routing trees currently retained.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the cache holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    fn get_or_compute(
        &mut self,
        world: &World,
        failed: &FailedSet,
        origin: AsIdx,
        active: Vec<u32>,
    ) -> &RouteTree {
        let key = (origin.0, active);
        // Evict wholesale only when a *new* tree would overflow the cap —
        // a hit must never flush the cache it is about to read.
        if self.trees.len() >= TREE_CACHE_CAP && !self.trees.contains_key(&key) {
            self.trees.clear();
        }
        match self.trees.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute_tree(world, failed, origin))
            }
        }
    }
}

/// The data-plane simulator for one event timeline.
pub struct DataplaneSim<'w> {
    world: &'w World,
    timeline: Vec<ScheduledEvent>,
    seed: u64,
    config: DataplaneConfig,
    iface_map: HashMap<IpAddr, IfaceOwner>,
}

impl<'w> DataplaneSim<'w> {
    /// A lean simulator without the pre-registered interface map — enough
    /// for probing (`traceroute`/`campaign`); `locate` only resolves
    /// addresses seen in this instance's own traces.
    pub fn probe_only(world: &'w World, timeline: &[ScheduledEvent], seed: u64) -> Self {
        DataplaneSim {
            world,
            timeline: timeline.to_vec(),
            seed,
            config: DataplaneConfig::default(),
            iface_map: HashMap::new(),
        }
    }

    /// Overrides the measurement-fidelity configuration.
    pub fn with_config(mut self, config: DataplaneConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the simulator (and its interface map) for a timeline.
    pub fn new(world: &'w World, timeline: &[ScheduledEvent], seed: u64) -> Self {
        let mut sim = DataplaneSim {
            world,
            timeline: timeline.to_vec(),
            seed,
            config: DataplaneConfig::default(),
            iface_map: HashMap::new(),
        };
        // Pre-register every (AS, facility) port and IXP LAN address so
        // `locate` works without having traced first.
        for node in &world.ases {
            for &f in &node.facilities {
                let addr = sim.facility_port_addr(node.asn, f);
                sim.iface_map.insert(addr, IfaceOwner::FacilityPort { asn: node.asn, facility: f });
            }
            for &x in node.local_ixps.iter().chain(node.remote_ixps.iter()) {
                let addr = sim.ixp_lan_addr(node.asn, x);
                sim.iface_map.insert(addr, IfaceOwner::IxpLan { asn: node.asn, ixp: x });
            }
        }
        sim
    }

    /// Deterministic facility-port address (11.0.0.0/8 experiment space).
    fn facility_port_addr(&self, asn: Asn, fac: FacilityId) -> IpAddr {
        let h = splitmix((asn.0 as u64) << 32 | fac.0 as u64) as u32;
        IpAddr::V4(Ipv4Addr::from(0x0B00_0000 | (h & 0x00FF_FFFF)))
    }

    /// Deterministic IXP LAN address: 193.<ixp>.<member-hash> style.
    fn ixp_lan_addr(&self, asn: Asn, ixp: IxpId) -> IpAddr {
        let h = splitmix((asn.0 as u64) << 20 | ixp.0 as u64) as u32;
        IpAddr::V4(Ipv4Addr::new(
            193,
            (ixp.0 % 250) as u8,
            ((h >> 8) & 0xFF) as u8,
            (h & 0xFF) as u8,
        ))
    }

    /// Resolves an interface to its infrastructure (the traIXroute role).
    pub fn locate(&self, addr: IpAddr) -> Option<IfaceOwner> {
        self.iface_map.get(&addr).copied()
    }

    /// Indices of the timeline events the *data plane* experiences at `t`
    /// for `pair`: events apply during their window; after restoration
    /// the pair keeps its detour for a deterministic extra delay
    /// (85% < 1 h). This index set — not the time — is what a routing
    /// tree depends on, so it doubles as the [`TreeCache`] key.
    fn active_events(&self, t: u64, pair: ProbePair) -> Vec<u32> {
        let mut active = Vec::new();
        for (i, ev) in self.timeline.iter().enumerate() {
            // Flaps touch no routes; surges touch no routes either (they
            // are pure-latency events read off the timeline per hop), so
            // neither may perturb the tree-cache key.
            if matches!(ev.kind, EventKind::CollectorFlap { .. } | EventKind::LatencySurge { .. }) {
                continue;
            }
            let extra = {
                let h = splitmix(
                    self.seed ^ (i as u64) << 40 ^ (pair.src.0 as u64) << 20 ^ pair.dst.0 as u64,
                );
                let frac = (h % 1000) as f64 / 1000.0;
                if frac < 0.85 {
                    (frac / 0.85 * 3600.0) as u64
                } else {
                    3600 + (((frac - 0.85) / 0.15) * 7200.0) as u64
                }
            };
            if t >= ev.start && t < ev.end() + extra {
                active.push(i as u32);
            }
        }
        active
    }

    /// Materializes the failure set of an active-event index set.
    fn failed_from(&self, active: &[u32]) -> FailedSet {
        let mut failed = FailedSet::default();
        for &i in active {
            apply_to(&mut failed, self.world, i as usize, &self.timeline[i as usize].kind);
        }
        failed
    }

    /// The failure state the *data plane* experiences at `t` for `pair`.
    pub fn failed_at(&self, t: u64, pair: ProbePair) -> FailedSet {
        self.failed_from(&self.active_events(t, pair))
    }

    /// Extra milliseconds from [`EventKind::LatencySurge`] events active
    /// on `facility` at `t`. Congestion has no recovery tail — the queue
    /// drains the moment the event ends — so the window is exact.
    fn surge_ms(&self, t: u64, facility: FacilityId) -> f64 {
        self.timeline
            .iter()
            .filter(|ev| t >= ev.start && t < ev.end())
            .filter_map(|ev| match ev.kind {
                EventKind::LatencySurge { facility: f, extra_ms } if f == facility => {
                    Some(extra_ms)
                }
                _ => None,
            })
            .sum()
    }

    /// Performs one traceroute measurement, answering hop-by-hop: each
    /// traversed port gets a TTL slot, may drop the probe
    /// ([`DataplaneConfig::hop_loss`]), accumulates propagation latency
    /// and jitter, and the trace truncates unreached past the TTL budget.
    /// Outage-consistent unreachability comes from the routing layer: a
    /// destination with no surviving policy path yields an empty,
    /// unreached trace.
    pub fn traceroute(&self, pair: ProbePair, t: u64) -> TraceroutePath {
        self.traceroute_with(&mut TreeCache::new(), pair, t)
    }

    /// Like [`traceroute`](Self::traceroute), but sharing routing trees
    /// through `cache` — the batched form every campaign-shaped caller
    /// should use. Results are bit-identical to the uncached path.
    pub fn traceroute_with(
        &self,
        cache: &mut TreeCache,
        pair: ProbePair,
        t: u64,
    ) -> TraceroutePath {
        let active = self.active_events(t, pair);
        let failed = self.failed_from(&active);
        let origin = self.world.origin_of(pair.dst);
        let tree = cache.get_or_compute(self.world, &failed, origin, active);
        let is_v6 = self.world.prefix(pair.dst).is_ipv6();
        let Some(snap) = snapshot_route(self.world, &failed, tree, pair.src, is_v6) else {
            return TraceroutePath { pair, time: t, hops: Vec::new(), reached: false };
        };
        let mut hops = Vec::new();
        let src_city = self.world.ases[pair.src.0 as usize].info.home_city;
        let mut here: GeoPoint = self.world.gazetteer.cities()[src_city.0 as usize].point;
        let mut rtt = 0.5; // first-hop base
        let mut ttl = 0usize;
        let mut reached = true;
        for v in &snap.visits {
            // The responding interface is the far-end router's ingress port:
            // the IXP LAN address for public peering, else its facility port.
            let (owner, addr, point) = if let Some(x) = v.ixp {
                // A remote member's LAN interface answers from the far
                // end of its reseller circuit — its home metro — not
                // from the exchange's city. This is what makes remote
                // peering *latency-visible*: the RTT step onto the LAN
                // carries the reseller tail, which the detector-side
                // heuristic (`kepler_core::remote`) keys on.
                let remote_home = self
                    .world
                    .asn_to_idx
                    .get(&v.far)
                    .map(|i| &self.world.ases[i.0 as usize])
                    .filter(|n| n.remote_ixps.contains(&x))
                    .map(|n| self.world.gazetteer.cities()[n.info.home_city.0 as usize].point);
                let p = remote_home.or_else(|| {
                    self.world
                        .colo
                        .ixp(x)
                        .map(|i| self.world.gazetteer.cities()[i.city.0 as usize].point)
                });
                (
                    IfaceOwner::IxpLan { asn: v.far, ixp: x },
                    self.ixp_lan_addr(v.far, x),
                    p.unwrap_or(here),
                )
            } else if let Some(f) = v.far_fac.or(v.near_fac) {
                let p = self.world.colo.facility(f).map(|f| f.point).unwrap_or(here);
                (
                    IfaceOwner::FacilityPort { asn: v.far, facility: f },
                    self.facility_port_addr(v.far, f),
                    p,
                )
            } else {
                continue;
            };
            ttl += 1;
            if ttl > self.config.max_ttl {
                reached = false;
                break;
            }
            let km = here.distance_km(&point);
            // ~1 ms RTT per 100 km of great-circle fiber, plus router delay.
            rtt += km * 0.01 * 2.0 + 0.3 + self.config.extra_hop_latency_ms;
            // A congested facility's queueing delay lands on the segment
            // *entering* it and, RTT being cumulative, every hop beyond.
            if let IfaceOwner::FacilityPort { facility, .. } = owner {
                rtt += self.surge_ms(t, facility);
            }
            let jitter = (splitmix(self.seed ^ addr_hash(addr) ^ (t / 60)) % 100) as f64 / 100.0;
            rtt += jitter * self.config.jitter_ms;
            here = point;
            if self.config.hop_loss > 0.0 {
                let roll = splitmix(self.seed ^ addr_hash(addr) ^ t ^ (ttl as u64) << 48);
                if ((roll % 10_000) as f64) < self.config.hop_loss * 10_000.0 {
                    continue; // the `*` row: no answer, trace continues
                }
            }
            hops.push(TraceHop { addr, owner, rtt_ms: rtt });
        }
        TraceroutePath { pair, time: t, hops, reached }
    }

    /// A single reachability/latency probe: end-to-end RTT when the
    /// destination answers at `t`, `None` otherwise.
    pub fn ping(&self, pair: ProbePair, t: u64) -> Option<f64> {
        let tr = self.traceroute(pair, t);
        if tr.reached {
            // A ping answers even when every intermediate hop was lossy.
            Some(tr.hops.last().map(|h| h.rtt_ms).unwrap_or(0.5))
        } else {
            None
        }
    }

    /// Resolves a (vantage AS, target AS) pair to a measurable probe
    /// pair: the target's first originated IPv4 prefix. `None` when
    /// either AS is unknown or the target originates no IPv4 space.
    pub fn pair_between(&self, src: Asn, dst: Asn) -> Option<ProbePair> {
        let s = *self.world.asn_to_idx.get(&src)?;
        let d = *self.world.asn_to_idx.get(&dst)?;
        let pfx = self.world.v4_prefix_of(d)?;
        Some(ProbePair { src: s, dst: pfx })
    }

    /// Measures a whole probe set at `t` (a "weekly dump" when invoked on
    /// archive cadence, a targeted campaign otherwise). One routing tree
    /// per (origin, failure-state) is computed and shared across the
    /// whole campaign.
    pub fn campaign(&self, pairs: &[ProbePair], t: u64) -> Vec<TraceroutePath> {
        let mut cache = TreeCache::new();
        self.campaign_with(&mut cache, pairs, t)
    }

    /// Like [`campaign`](Self::campaign) with a caller-held [`TreeCache`],
    /// so trees also survive *across* campaigns (consecutive bins usually
    /// share the failure state).
    pub fn campaign_with(
        &self,
        cache: &mut TreeCache,
        pairs: &[ProbePair],
        t: u64,
    ) -> Vec<TraceroutePath> {
        pairs.iter().map(|&p| self.traceroute_with(cache, p, t)).collect()
    }

    /// A default probe set: sources in edge (eyeball/stub) ASes — where
    /// Atlas probes actually live — toward content prefixes.
    pub fn default_pairs(&self, n: usize) -> Vec<ProbePair> {
        use kepler_topology::AsType;
        let sources: Vec<AsIdx> = self
            .world
            .ases
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.info.as_type, AsType::Eyeball | AsType::Stub))
            .map(|(i, _)| AsIdx(i as u32))
            .collect();
        let targets: Vec<PrefixIdx> = self
            .world
            .prefixes
            .iter()
            .enumerate()
            .filter(|(_, (p, o))| {
                p.is_ipv4()
                    && matches!(
                        self.world.ases[o.0 as usize].info.as_type,
                        AsType::Content | AsType::Tier2
                    )
            })
            .map(|(i, _)| PrefixIdx(i as u32))
            .collect();
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            if sources.is_empty() || targets.is_empty() {
                break;
            }
            let s = sources[(splitmix(self.seed ^ (k as u64) << 1) as usize) % sources.len()];
            let d = targets[(splitmix(self.seed ^ (k as u64) << 1 | 1) as usize) % targets.len()];
            out.push(ProbePair { src: s, dst: d });
        }
        out.sort_by_key(|p| (p.src.0, p.dst.0));
        out.dedup();
        out
    }
}

fn addr_hash(a: IpAddr) -> u64 {
    match a {
        IpAddr::V4(v) => u32::from(v) as u64,
        IpAddr::V6(v) => u128::from(v) as u64,
    }
}

/// Applies an event to a failure set (shared with the engine's semantics).
fn apply_to(failed: &mut FailedSet, world: &World, id: usize, kind: &EventKind) {
    use crate::events::partial_ports;
    match kind {
        EventKind::FacilityOutage { facility, affected_fraction }
        | EventKind::FiberCut { facility, affected_fraction } => {
            if *affected_fraction >= 1.0 {
                failed.facilities.insert(*facility);
            } else {
                let members: Vec<Asn> =
                    world.colo.members_of_facility(*facility).iter().copied().collect();
                for asn in partial_ports(world, &members, *affected_fraction, id as u64) {
                    failed.facility_ports.insert((*facility, asn));
                }
            }
        }
        EventKind::IxpOutage { ixp, affected_fraction } => {
            if *affected_fraction >= 1.0 {
                failed.ixps.insert(*ixp);
            } else {
                let members: Vec<Asn> = world.colo.members_of_ixp(*ixp).iter().copied().collect();
                for asn in partial_ports(world, &members, *affected_fraction, id as u64) {
                    failed.ixp_ports.insert((*ixp, asn));
                }
            }
        }
        EventKind::Depeering { a, b } => {
            if let (Some(&ia), Some(&ib)) = (world.asn_to_idx.get(a), world.asn_to_idx.get(b)) {
                let k = if ia.0 <= ib.0 { (ia, ib) } else { (ib, ia) };
                if let Some(&adj) = world.adj_of.get(&k) {
                    failed.dead_adjacencies.insert(adj);
                }
            }
        }
        EventKind::IxpMemberLeave { asn, ixp } => {
            failed.dead_memberships.insert((*ixp, *asn));
        }
        EventKind::OperatorWithdraw { asns, facility } => {
            for asn in asns {
                failed.facility_ports.insert((*facility, *asn));
            }
        }
        EventKind::CollectorFlap { .. } | EventKind::LatencySurge { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    const T0: u64 = 1_400_000_000;

    #[test]
    fn traceroutes_resolve_and_accumulate_rtt() {
        let w = World::generate(WorldConfig::tiny(91));
        let dp = DataplaneSim::new(&w, &[], 1);
        let pairs = dp.default_pairs(20);
        assert!(!pairs.is_empty());
        let mut reached = 0;
        for tr in dp.campaign(&pairs, T0) {
            if !tr.reached {
                continue;
            }
            reached += 1;
            let mut last = 0.0;
            for h in &tr.hops {
                assert!(h.rtt_ms >= last, "RTT must be monotone");
                last = h.rtt_ms;
                assert_eq!(dp.locate(h.addr), Some(h.owner), "interface map agrees");
            }
        }
        assert!(reached > pairs.len() / 2, "most probes reach");
    }

    #[test]
    fn outage_window_changes_paths_then_recovers() {
        let w = World::generate(WorldConfig::tiny(93));
        let fac = w
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| w.colo.members_of_facility(f.id).len())
            .unwrap()
            .id;
        let ev = ScheduledEvent {
            start: T0 + 1000,
            duration: 600,
            kind: EventKind::FacilityOutage { facility: fac, affected_fraction: 1.0 },
        };
        let dp = DataplaneSim::new(&w, &[ev], 2);
        let pairs = dp.default_pairs(60);
        let before = dp.campaign(&pairs, T0);
        let during = dp.campaign(&pairs, T0 + 1200);
        let long_after = dp.campaign(&pairs, T0 + 1000 + 600 + 11_000);
        let crossing =
            |paths: &[TraceroutePath]| paths.iter().filter(|p| p.crosses_facility(fac)).count();
        let b = crossing(&before);
        let d = crossing(&during);
        let a = crossing(&long_after);
        assert_eq!(d, 0, "no path crosses a dead facility");
        assert!(a >= d, "paths drift back after restoration");
        // If any path crossed it before, recovery should restore some.
        if b > 0 {
            assert!(a > 0, "recovery restores crossings ({b} before, {a} after)");
        }
    }

    #[test]
    fn dataplane_recovery_is_gradual() {
        let w = World::generate(WorldConfig::tiny(95));
        let fac = w
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| w.colo.members_of_facility(f.id).len())
            .unwrap()
            .id;
        let ev = ScheduledEvent {
            start: T0,
            duration: 600,
            kind: EventKind::FacilityOutage { facility: fac, affected_fraction: 1.0 },
        };
        let dp = DataplaneSim::new(&w, std::slice::from_ref(&ev), 3);
        // For a fixed pair, failed_at transitions from failed to clean at
        // start+duration+extra, with extra bounded by 3 hours.
        let pair = ProbePair { src: AsIdx(0), dst: PrefixIdx(0) };
        assert!(!dp.failed_at(T0 + 1, pair).is_empty());
        assert!(dp.failed_at(T0 + 600 + 3 * 3600 + 7200 + 1, pair).is_empty());
    }

    #[test]
    fn determinism() {
        let w = World::generate(WorldConfig::tiny(97));
        let dp = DataplaneSim::new(&w, &[], 9);
        let pairs = dp.default_pairs(10);
        assert_eq!(dp.campaign(&pairs, T0), dp.campaign(&pairs, T0));
    }

    #[test]
    fn tree_cache_is_exact_and_shares_trees() {
        // Cached and per-trace campaigns must be bit-identical, across the
        // quiet baseline, the outage window and the ragged recovery tail
        // (where per-pair failure states differ).
        let w = World::generate(WorldConfig::tiny(93));
        let fac = w
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| w.colo.members_of_facility(f.id).len())
            .unwrap()
            .id;
        let ev = ScheduledEvent {
            start: T0 + 1000,
            duration: 600,
            kind: EventKind::FacilityOutage { facility: fac, affected_fraction: 1.0 },
        };
        let dp = DataplaneSim::new(&w, &[ev], 2);
        let pairs = dp.default_pairs(60);
        let mut cache = TreeCache::new();
        for t in [T0, T0 + 1200, T0 + 1000 + 600 + 1800, T0 + 1000 + 600 + 11_000] {
            let uncached: Vec<TraceroutePath> =
                pairs.iter().map(|&p| dp.traceroute(p, t)).collect();
            let cached = dp.campaign_with(&mut cache, &pairs, t);
            assert_eq!(uncached, cached, "cache must not change results at t={t}");
        }
        let (hits, misses) = cache.stats();
        assert!(hits > 0, "campaigns over shared origins must hit the cache");
        assert!(
            misses < 4 * pairs.len() as u64,
            "one tree per (origin, failure-state), not per trace: {misses} misses"
        );
        assert_eq!(cache.len() as u64, misses, "every miss retains its tree");
    }

    #[test]
    fn hop_loss_thins_traces_without_breaking_reachability() {
        let w = World::generate(WorldConfig::tiny(91));
        let clean = DataplaneSim::new(&w, &[], 5);
        let pairs = clean.default_pairs(40);
        let lossy = DataplaneSim::probe_only(&w, &[], 5)
            .with_config(DataplaneConfig { hop_loss: 0.5, ..DataplaneConfig::default() });
        let full: usize = clean.campaign(&pairs, T0).iter().map(|p| p.hops.len()).sum();
        let lossy_paths = lossy.campaign(&pairs, T0);
        let thinned: usize = lossy_paths.iter().map(|p| p.hops.len()).sum();
        assert!(thinned < full, "50% hop loss must drop responses ({thinned} vs {full})");
        // Loss hits hop visibility, not reachability.
        let clean_reached = clean.campaign(&pairs, T0).iter().filter(|p| p.reached).count();
        let lossy_reached = lossy_paths.iter().filter(|p| p.reached).count();
        assert_eq!(clean_reached, lossy_reached);
    }

    #[test]
    fn latency_config_and_ttl_budget_apply() {
        let w = World::generate(WorldConfig::tiny(91));
        let pairs = DataplaneSim::new(&w, &[], 5).default_pairs(20);
        let slow = DataplaneSim::probe_only(&w, &[], 5).with_config(DataplaneConfig {
            extra_hop_latency_ms: 50.0,
            ..DataplaneConfig::default()
        });
        let fast = DataplaneSim::probe_only(&w, &[], 5);
        for (s, f) in slow.campaign(&pairs, T0).iter().zip(fast.campaign(&pairs, T0).iter()) {
            if let (Some(rs), Some(rf)) = (s.rtt_ms(), f.rtt_ms()) {
                assert!(rs > rf, "extra latency accumulates");
            }
        }
        // A 1-hop TTL budget truncates multi-hop paths unreached.
        let strangled = DataplaneSim::probe_only(&w, &[], 5)
            .with_config(DataplaneConfig { max_ttl: 1, ..DataplaneConfig::default() });
        let reached = strangled.campaign(&pairs, T0).iter().filter(|p| p.reached).count();
        let baseline = fast.campaign(&pairs, T0).iter().filter(|p| p.reached).count();
        assert!(reached < baseline, "ttl budget must strand long paths");
    }

    #[test]
    fn latency_surge_raises_rtts_without_changing_paths() {
        let w = World::generate(WorldConfig::tiny(93));
        let fac = w
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| w.colo.members_of_facility(f.id).len())
            .unwrap()
            .id;
        let ev = ScheduledEvent {
            start: T0 + 1000,
            duration: 600,
            kind: EventKind::LatencySurge { facility: fac, extra_ms: 80.0 },
        };
        let dp = DataplaneSim::new(&w, &[ev], 4);
        let pairs = dp.default_pairs(60);
        let before = dp.campaign(&pairs, T0 + 900);
        // Jitter differs by at most jitter_ms per hop between instants,
        // far below the 80 ms surge the assertions key on.
        let during = dp.campaign(&pairs, T0 + 900 + 300);
        let mut surged = 0;
        for (b, d) in before.iter().zip(during.iter()) {
            assert_eq!(b.reached, d.reached, "a surge never breaks reachability");
            assert_eq!(
                b.hops.iter().map(|h| h.addr).collect::<Vec<_>>(),
                d.hops.iter().map(|h| h.addr).collect::<Vec<_>>(),
                "a surge never moves a path"
            );
            if b.crosses_facility(fac) {
                let (rb, rd) = (b.rtt_ms().unwrap(), d.rtt_ms().unwrap());
                assert!(rd >= rb + 79.0, "crossing paths surge (before {rb}, during {rd})");
                surged += 1;
            }
        }
        assert!(surged > 0, "some default pair must cross the busiest facility");
        // Outside the window the surge is gone.
        let after = dp.campaign(&pairs, T0 + 900 + 900);
        for (b, a) in before.iter().zip(after.iter()) {
            if let (Some(rb), Some(ra)) = (b.rtt_ms(), a.rtt_ms()) {
                assert!((ra - rb).abs() < 5.0, "queue drains when the event ends");
            }
        }
    }

    #[test]
    fn ping_and_pair_between_answer_by_asn() {
        let w = World::generate(WorldConfig::tiny(93));
        let dp = DataplaneSim::probe_only(&w, &[], 7);
        let src = w.ases.iter().find(|a| w.v4_prefix_of(w.asn_to_idx[&a.asn]).is_some()).unwrap();
        let dst =
            w.ases.iter().rev().find(|a| w.v4_prefix_of(w.asn_to_idx[&a.asn]).is_some()).unwrap();
        let pair = dp.pair_between(src.asn, dst.asn).expect("both originate v4");
        assert_eq!(pair.src, w.asn_to_idx[&src.asn]);
        let tr = dp.traceroute(pair, T0);
        assert_eq!(dp.ping(pair, T0).is_some(), tr.reached);
        assert_eq!(dp.pair_between(Asn(999_999), dst.asn), None, "unknown vantage");
    }
}

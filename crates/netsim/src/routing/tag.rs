//! Observable-route extraction: AS path, communities, physical PoPs.
//!
//! This is where the paper's core phenomenon is synthesized: every AS on
//! the path that runs a community scheme tags the route with its *ingress*
//! location (facility / IXP / city, per its scheme's granularity), and
//! route servers stamp their redistribution communities — so the BGP
//! update that reaches a collector carries a trail of physical locations.

use super::policy::FailedSet;
use super::propagate::RouteTree;
use crate::world::{AsIdx, PortLoc, World};
use kepler_bgp::{Asn, Community};
use kepler_docmine::scheme::SchemeTarget;
use kepler_topology::{FacilityId, IxpId};

/// The physical crossing of one AS-level link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopVisit {
    /// The AS nearer to the vantage point (it *receives* the route here —
    /// the paper's "near-end" AS whose ingress community we see).
    pub near: Asn,
    /// The far-end AS (closer to the origin).
    pub far: Asn,
    /// The adjacency crossed.
    pub adj: crate::world::AdjIdx,
    /// Facility of the near-end port.
    pub near_fac: Option<FacilityId>,
    /// Facility of the far-end port.
    pub far_fac: Option<FacilityId>,
    /// IXP fabric crossed, for public peering.
    pub ixp: Option<IxpId>,
}

/// The route for one (vantage, prefix) pair as a collector would see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSnapshot {
    /// AS path, vantage first, origin last.
    pub as_path: Vec<Asn>,
    /// Communities accumulated along the path (ingress tags + route-server
    /// redistribution marks), in path order.
    pub communities: Vec<Community>,
    /// Physical crossings, vantage side first.
    pub visits: Vec<PopVisit>,
}

/// Communities an AS applies when receiving a route at `port`.
fn ingress_communities(
    world: &World,
    asx: AsIdx,
    port: &PortLoc,
    is_v6: bool,
    out: &mut Vec<Community>,
) {
    let node = &world.ases[asx.0 as usize];
    let Some(scheme) = &node.scheme else { return };
    if is_v6 && !node.tags_v6 {
        return;
    }
    let asn16 = match u16::try_from(node.asn.0) {
        Ok(a) => a,
        Err(_) => return,
    };
    let mut tagged_fac = false;
    let mut tagged_ixp = false;
    for e in &scheme.entries {
        match &e.target {
            SchemeTarget::Facility { id, .. } => {
                if port.facility == Some(*id) {
                    out.push(Community::new(asn16, e.value));
                    tagged_fac = true;
                }
            }
            SchemeTarget::Ixp { id, .. } => {
                if port.ixp == Some(*id) {
                    out.push(Community::new(asn16, e.value));
                    tagged_ixp = true;
                }
            }
            SchemeTarget::City { .. } => {}
        }
    }
    if tagged_fac || tagged_ixp {
        return;
    }
    // City-granularity fallback: the city of the port's facility, else of
    // the IXP.
    let port_city = port
        .facility
        .and_then(|f| world.colo.facility(f))
        .map(|f| f.city)
        .or_else(|| port.ixp.and_then(|x| world.colo.ixp(x)).map(|x| x.city));
    let Some(city) = port_city else { return };
    for e in &scheme.entries {
        if let SchemeTarget::City { city: c, .. } = &e.target {
            if *c == city {
                out.push(Community::new(asn16, e.value));
                return;
            }
        }
    }
}

/// Extracts the observable route at `vantage` from a routing tree, or
/// `None` if the vantage has no route.
pub fn snapshot_route(
    world: &World,
    failed: &FailedSet,
    tree: &RouteTree,
    vantage: AsIdx,
    is_v6: bool,
) -> Option<RouteSnapshot> {
    let chain = tree.path_from(vantage)?;
    let mut as_path = Vec::with_capacity(chain.len());
    let mut communities = Vec::new();
    let mut visits = Vec::new();
    for (i, (node, adj_opt)) in chain.iter().enumerate() {
        as_path.push(world.ases[node.0 as usize].asn);
        let Some(adj_idx) = adj_opt else { continue };
        let adj = &world.adjacencies[adj_idx.0 as usize];
        let far = chain[i + 1].0;
        let inst_i =
            failed.active_instance(world, *adj_idx).expect("tree only uses available adjacencies");
        let inst = &adj.instances[inst_i];
        let (near_side, far_side) = if adj.a == *node {
            (&inst.a_side, &inst.b_side)
        } else {
            (&inst.b_side, &inst.a_side)
        };
        ingress_communities(world, *node, near_side, is_v6, &mut communities);
        if let Some(rs) = inst.via_rs {
            if let Ok(rs16) = u16::try_from(rs.0) {
                communities.push(Community::new(rs16, 1));
            }
        }
        visits.push(PopVisit {
            near: world.ases[node.0 as usize].asn,
            far: world.ases[far.0 as usize].asn,
            adj: *adj_idx,
            near_fac: near_side.facility,
            far_fac: far_side.facility,
            ixp: near_side.ixp.or(far_side.ixp),
        });
    }
    Some(RouteSnapshot { as_path, communities, visits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::propagate::compute_tree;
    use crate::world::{PrefixIdx, World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(51))
    }

    #[test]
    fn snapshots_have_consistent_shapes() {
        let w = world();
        let failed = FailedSet::default();
        let mut any_tagged = false;
        for pi in 0..w.prefixes.len().min(30) {
            let origin = w.origin_of(PrefixIdx(pi as u32));
            let tree = compute_tree(&w, &failed, origin);
            for v in 0..w.ases.len() {
                let Some(snap) = snapshot_route(&w, &failed, &tree, AsIdx(v as u32), false) else {
                    continue;
                };
                assert_eq!(snap.visits.len() + 1, snap.as_path.len());
                assert_eq!(*snap.as_path.last().unwrap(), w.ases[origin.0 as usize].asn);
                if !snap.communities.is_empty() {
                    any_tagged = true;
                    // Every community's top-16 must match an AS on the path
                    // or a route-server ASN (the paper's hop-matching rule).
                    for c in &snap.communities {
                        let on_path = snap.as_path.iter().any(|a| a.0 == c.asn16() as u32);
                        let is_rs = w
                            .colo
                            .ixps()
                            .iter()
                            .any(|x| x.route_server_asn.map(|r| r.0) == Some(c.asn16() as u32));
                        assert!(on_path || is_rs, "community {c} matches no hop");
                    }
                }
            }
        }
        assert!(any_tagged, "some routes must carry communities");
    }

    #[test]
    fn v6_tagging_is_sparser_than_v4() {
        let w = World::generate(WorldConfig::small(61));
        let failed = FailedSet::default();
        let mut v4_tagged = 0usize;
        let mut v4_total = 0usize;
        let mut v6_tagged = 0usize;
        let mut v6_total = 0usize;
        for pi in 0..w.prefixes.len() {
            let pidx = PrefixIdx(pi as u32);
            let is_v6 = w.prefix(pidx).is_ipv6();
            let origin = w.origin_of(pidx);
            let tree = compute_tree(&w, &failed, origin);
            // Sample a handful of vantages.
            for v in (0..w.ases.len()).step_by(37) {
                if let Some(snap) = snapshot_route(&w, &failed, &tree, AsIdx(v as u32), is_v6) {
                    if is_v6 {
                        v6_total += 1;
                        v6_tagged += usize::from(!snap.communities.is_empty());
                    } else {
                        v4_total += 1;
                        v4_tagged += usize::from(!snap.communities.is_empty());
                    }
                }
            }
        }
        let v4_frac = v4_tagged as f64 / v4_total.max(1) as f64;
        let v6_frac = v6_tagged as f64 / v6_total.max(1) as f64;
        assert!(v4_frac > v6_frac, "v4 tagging ({v4_frac:.2}) should exceed v6 ({v6_frac:.2})");
    }

    #[test]
    fn instance_failover_changes_communities_not_path() {
        let w = world();
        let failed = FailedSet::default();
        // Find a multi-instance adjacency with differing near facilities,
        // fail the preferred instance's facility, and check the snapshot of
        // a route over it.
        for (adj_i, adj) in w.adjacencies.iter().enumerate() {
            if adj.instances.len() < 2 {
                continue;
            }
            let f0 = adj.instances[0].a_side.facility;
            let f1 = adj.instances[1].a_side.facility;
            if f0.is_none() || f0 == f1 {
                continue;
            }
            let mut failed2 = FailedSet::default();
            failed2.facilities.insert(f0.unwrap());
            if failed2.active_instance(&w, crate::world::AdjIdx(adj_i as u32)) == Some(1) {
                // Good candidate found; just verify selection moved.
                assert_eq!(failed.active_instance(&w, crate::world::AdjIdx(adj_i as u32)), Some(0));
                return;
            }
        }
    }
}

//! Failure state and physical instance selection.

use crate::world::{AdjIdx, AdjInstance, Adjacency, World};
use kepler_bgp::Asn;
use kepler_topology::{FacilityId, IxpId};
use std::collections::HashSet;

/// Everything currently broken, at physical granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailedSet {
    /// Fully failed facilities (power loss, fire, …).
    pub facilities: HashSet<FacilityId>,
    /// Partially failed facilities: specific member ports are dead.
    pub facility_ports: HashSet<(FacilityId, Asn)>,
    /// Fully failed IXP fabrics.
    pub ixps: HashSet<IxpId>,
    /// Partially failed IXPs: specific member ports are dead.
    pub ixp_ports: HashSet<(IxpId, Asn)>,
    /// Administratively killed adjacencies (de-peering).
    pub dead_adjacencies: HashSet<AdjIdx>,
    /// Terminated IXP memberships (AS left the exchange).
    pub dead_memberships: HashSet<(IxpId, Asn)>,
}

impl FailedSet {
    /// Whether nothing is failed.
    pub fn is_empty(&self) -> bool {
        self.facilities.is_empty()
            && self.facility_ports.is_empty()
            && self.ixps.is_empty()
            && self.ixp_ports.is_empty()
            && self.dead_adjacencies.is_empty()
            && self.dead_memberships.is_empty()
    }

    /// Whether one physical instance of `adj` is currently usable.
    pub fn instance_up(&self, world: &World, adj: &Adjacency, inst: &AdjInstance) -> bool {
        let sides = [(adj.a, &inst.a_side), (adj.b, &inst.b_side)];
        for (as_idx, side) in sides {
            let asn = world.ases[as_idx.0 as usize].asn;
            if let Some(f) = side.facility {
                if self.facilities.contains(&f) || self.facility_ports.contains(&(f, asn)) {
                    return false;
                }
            }
            if let Some(x) = side.ixp {
                if self.ixps.contains(&x)
                    || self.ixp_ports.contains(&(x, asn))
                    || self.dead_memberships.contains(&(x, asn))
                {
                    return false;
                }
            }
        }
        true
    }

    /// The preferred usable instance of an adjacency, if any.
    pub fn active_instance(&self, world: &World, adj_idx: AdjIdx) -> Option<usize> {
        if self.dead_adjacencies.contains(&adj_idx) {
            return None;
        }
        let adj = &world.adjacencies[adj_idx.0 as usize];
        adj.instances.iter().position(|inst| self.instance_up(world, adj, inst))
    }

    /// Whether the adjacency has any usable instance.
    pub fn adjacency_up(&self, world: &World, adj_idx: AdjIdx) -> bool {
        self.active_instance(world, adj_idx).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(31))
    }

    #[test]
    fn pristine_world_everything_up() {
        let w = world();
        let f = FailedSet::default();
        assert!(f.is_empty());
        for (i, _) in w.adjacencies.iter().enumerate() {
            assert!(f.adjacency_up(&w, AdjIdx(i as u32)), "adjacency {i} should be up");
        }
    }

    #[test]
    fn facility_failure_kills_pnis_there() {
        let w = world();
        // Find an adjacency whose first instance is a PNI.
        let (idx, adj) = w
            .adjacencies
            .iter()
            .enumerate()
            .find(|(_, a)| a.instances[0].a_side.ixp.is_none() && a.instances.len() == 1)
            .expect("single-instance PNI exists");
        let fac = adj.instances[0].a_side.facility.unwrap();
        let mut f = FailedSet::default();
        f.facilities.insert(fac);
        assert!(!f.adjacency_up(&w, AdjIdx(idx as u32)));
    }

    #[test]
    fn multi_instance_adjacency_survives_single_facility_failure() {
        let w = world();
        if let Some((idx, adj)) = w.adjacencies.iter().enumerate().find(|(_, a)| {
            a.instances.len() >= 2
                && a.instances[0].a_side.facility != a.instances[1].a_side.facility
                && a.instances[0].a_side.facility.is_some()
        }) {
            let fac = adj.instances[0].a_side.facility.unwrap();
            let mut f = FailedSet::default();
            f.facilities.insert(fac);
            assert!(f.adjacency_up(&w, AdjIdx(idx as u32)), "fails over to instance 2");
            assert_ne!(f.active_instance(&w, AdjIdx(idx as u32)), Some(0));
        }
    }

    #[test]
    fn ixp_failure_kills_public_instances() {
        let w = world();
        if let Some((idx, adj)) = w
            .adjacencies
            .iter()
            .enumerate()
            .find(|(_, a)| a.instances.iter().all(|i| i.a_side.ixp.is_some()))
        {
            let ixp = adj.instances[0].a_side.ixp.unwrap();
            let mut f = FailedSet::default();
            f.ixps.insert(ixp);
            let all_same = adj.instances.iter().all(|i| i.a_side.ixp == Some(ixp));
            if all_same {
                assert!(!f.adjacency_up(&w, AdjIdx(idx as u32)));
            }
        }
    }

    #[test]
    fn dead_adjacency_overrides_health() {
        let w = world();
        let mut f = FailedSet::default();
        f.dead_adjacencies.insert(AdjIdx(0));
        assert!(!f.adjacency_up(&w, AdjIdx(0)));
    }

    #[test]
    fn membership_termination_kills_only_that_member() {
        let w = world();
        if let Some((idx, adj)) = w
            .adjacencies
            .iter()
            .enumerate()
            .find(|(_, a)| a.instances.len() == 1 && a.instances[0].a_side.ixp.is_some())
        {
            let ixp = adj.instances[0].a_side.ixp.unwrap();
            let asn_a = w.ases[adj.a.0 as usize].asn;
            let mut f = FailedSet::default();
            f.dead_memberships.insert((ixp, asn_a));
            assert!(!f.adjacency_up(&w, AdjIdx(idx as u32)));
            // A partial port failure of an unrelated member does nothing.
            let mut g = FailedSet::default();
            g.ixp_ports.insert((ixp, Asn(4_000_000_000)));
            assert!(g.adjacency_up(&w, AdjIdx(idx as u32)));
        }
    }
}

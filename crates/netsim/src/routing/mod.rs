//! Policy routing over the generated world.
//!
//! * [`policy`] — which physical link instances are up given the current
//!   failure state, and which instance an adjacency actually uses.
//! * [`propagate`] — per-prefix Gao-Rexford route computation: every AS's
//!   best route to a prefix, as a routing tree with parent pointers.
//! * [`tag`] — extraction of the *observable* route at a vantage point:
//!   AS path, ingress/route-server communities, and the physical PoPs
//!   (facilities, IXPs) the route traverses.

pub mod policy;
pub mod propagate;
pub mod tag;

pub use policy::FailedSet;
pub use propagate::{compute_tree, PrefClass, RouteTree};
pub use tag::{snapshot_route, PopVisit, RouteSnapshot};

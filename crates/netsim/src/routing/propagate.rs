//! Per-prefix Gao-Rexford route propagation.
//!
//! For one origin, computes every AS's best route simultaneously as a
//! routing tree (the standard three-phase algorithm):
//!
//! 1. **Customer routes** climb provider chains from the origin — every AS
//!    on the way prefers them above all else and re-exports them to
//!    everyone.
//! 2. **Peer routes** hop exactly one settlement-free edge from an AS with
//!    a customer/origin route.
//! 3. **Provider routes** descend customer cones from any routed AS —
//!    customers receive everything and re-export what they learned from
//!    providers only further down.
//!
//! Selection inside a class is shortest AS path, then lowest neighbor ASN —
//! fully deterministic. Only adjacencies with a usable physical instance
//! (per [`FailedSet`]) participate, which is how physical outages reshape
//! control-plane paths.

use super::policy::FailedSet;
use crate::world::{AdjIdx, AsIdx, Rel, World};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Route preference class, higher is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PrefClass {
    /// Learned from a provider.
    Provider = 0,
    /// Learned from a settlement-free peer.
    Peer = 1,
    /// Learned from a customer.
    Customer = 2,
    /// Locally originated.
    Origin = 3,
}

/// One AS's best route to the tree's prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Preference class.
    pub pref: PrefClass,
    /// AS-path hop count to the origin.
    pub hops: u16,
    /// Next hop toward the origin and the adjacency used (None at origin).
    pub parent: Option<(AsIdx, AdjIdx)>,
}

/// The routing tree for one prefix.
#[derive(Debug, Clone)]
pub struct RouteTree {
    /// The origin AS.
    pub origin: AsIdx,
    /// Per-AS best route (indexed by `AsIdx`).
    pub routes: Vec<Option<RouteInfo>>,
}

impl RouteTree {
    /// The AS-level path from `vantage` to the origin, with the adjacency
    /// used at each step; `None` if the vantage has no route.
    pub fn path_from(&self, vantage: AsIdx) -> Option<Vec<(AsIdx, Option<AdjIdx>)>> {
        self.routes[vantage.0 as usize]?;
        let mut out = Vec::new();
        let mut cur = vantage;
        loop {
            let info = self.routes[cur.0 as usize].expect("parent chain is routed");
            match info.parent {
                Some((next, adj)) => {
                    out.push((cur, Some(adj)));
                    cur = next;
                }
                None => {
                    out.push((cur, None));
                    return Some(out);
                }
            }
        }
    }

    /// Number of ASes holding a route.
    pub fn routed_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

/// Export frontier ordered by (hops, parent ASN, node, parent, adjacency).
type ExportHeap = BinaryHeap<Reverse<(u16, u32, u32, u32, u32)>>;

/// Computes the routing tree for the prefix originated by `origin`.
pub fn compute_tree(world: &World, failed: &FailedSet, origin: AsIdx) -> RouteTree {
    let n = world.ases.len();
    let mut routes: Vec<Option<RouteInfo>> = vec![None; n];
    routes[origin.0 as usize] = Some(RouteInfo { pref: PrefClass::Origin, hops: 0, parent: None });

    // Phase 1: customer routes, Dijkstra by (hops, parent asn).
    let mut heap: ExportHeap = BinaryHeap::new();
    // tuple: (hops, parent_asn, node, parent, adj)
    let push_provider_exports =
        |heap: &mut ExportHeap, world: &World, failed: &FailedSet, u: AsIdx, hops: u16| {
            let u_node = &world.ases[u.0 as usize];
            for &(v, adj_idx) in &u_node.neighbors {
                let adj = &world.adjacencies[adj_idx.0 as usize];
                // u exports to its provider v.
                let u_is_customer = adj.rel == Rel::C2P && adj.a == u && adj.b == v;
                if !u_is_customer {
                    continue;
                }
                if failed.active_instance(world, adj_idx).is_none() {
                    continue;
                }
                heap.push(Reverse((hops + 1, u_node.asn.0, v.0, u.0, adj_idx.0)));
            }
        };
    push_provider_exports(&mut heap, world, failed, origin, 0);
    while let Some(Reverse((hops, _pasn, v, u, adj))) = heap.pop() {
        let v_idx = AsIdx(v);
        if routes[v as usize].is_some() {
            continue;
        }
        routes[v as usize] = Some(RouteInfo {
            pref: PrefClass::Customer,
            hops,
            parent: Some((AsIdx(u), AdjIdx(adj))),
        });
        push_provider_exports(&mut heap, world, failed, v_idx, hops);
    }

    // Phase 2: peer routes — one settlement-free hop off a customer/origin
    // route. Single pass over P2P adjacencies; best candidate per node.
    let mut peer_cand: Vec<Option<(u16, u32, u32, u32)>> = vec![None; n]; // (hops, src asn, src, adj)
    for (adj_i, adj) in world.adjacencies.iter().enumerate() {
        if adj.rel != Rel::P2P {
            continue;
        }
        if failed.active_instance(world, AdjIdx(adj_i as u32)).is_none() {
            continue;
        }
        for (u, v) in [(adj.a, adj.b), (adj.b, adj.a)] {
            let Some(u_route) = routes[u.0 as usize] else { continue };
            if !matches!(u_route.pref, PrefClass::Customer | PrefClass::Origin) {
                continue;
            }
            if routes[v.0 as usize].is_some() {
                continue; // customer/origin route always wins at v
            }
            let cand = (u_route.hops + 1, world.ases[u.0 as usize].asn.0, u.0, adj_i as u32);
            let better = match &peer_cand[v.0 as usize] {
                None => true,
                Some(existing) => cand < *existing,
            };
            if better {
                peer_cand[v.0 as usize] = Some(cand);
            }
        }
    }
    for (v, cand) in peer_cand.into_iter().enumerate() {
        if let Some((hops, _, u, adj)) = cand {
            routes[v] = Some(RouteInfo {
                pref: PrefClass::Peer,
                hops,
                parent: Some((AsIdx(u), AdjIdx(adj))),
            });
        }
    }

    // Phase 3: provider routes descend customer cones from every routed AS.
    let mut heap: ExportHeap = BinaryHeap::new();
    let push_customer_exports =
        |heap: &mut ExportHeap, world: &World, failed: &FailedSet, u: AsIdx, hops: u16| {
            let u_node = &world.ases[u.0 as usize];
            for &(v, adj_idx) in &u_node.neighbors {
                let adj = &world.adjacencies[adj_idx.0 as usize];
                // u exports to its customer v (u is the provider side).
                let u_is_provider = adj.rel == Rel::C2P && adj.b == u && adj.a == v;
                if !u_is_provider {
                    continue;
                }
                if failed.active_instance(world, adj_idx).is_none() {
                    continue;
                }
                heap.push(Reverse((hops + 1, u_node.asn.0, v.0, u.0, adj_idx.0)));
            }
        };
    for (u, route) in routes.iter().enumerate().take(n) {
        if let Some(r) = route {
            push_customer_exports(&mut heap, world, failed, AsIdx(u as u32), r.hops);
        }
    }
    while let Some(Reverse((hops, _pasn, v, u, adj))) = heap.pop() {
        if routes[v as usize].is_some() {
            continue;
        }
        routes[v as usize] = Some(RouteInfo {
            pref: PrefClass::Provider,
            hops,
            parent: Some((AsIdx(u), AdjIdx(adj))),
        });
        push_customer_exports(&mut heap, world, failed, AsIdx(v), hops);
    }

    RouteTree { origin, routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(41))
    }

    #[test]
    fn most_ases_reach_most_prefixes() {
        let w = world();
        let failed = FailedSet::default();
        let mut total_routed = 0usize;
        for (i, _) in w.prefixes.iter().enumerate().take(10) {
            let tree = compute_tree(&w, &failed, w.origin_of(crate::world::PrefixIdx(i as u32)));
            total_routed += tree.routed_count();
        }
        let expect = 10 * w.ases.len();
        assert!(
            total_routed as f64 > 0.9 * expect as f64,
            "connectivity too low: {total_routed}/{expect}"
        );
    }

    #[test]
    fn paths_are_valley_free() {
        let w = world();
        let failed = FailedSet::default();
        for pi in 0..w.prefixes.len().min(20) {
            let origin = w.origin_of(crate::world::PrefixIdx(pi as u32));
            let tree = compute_tree(&w, &failed, origin);
            for v in 0..w.ases.len() {
                let Some(path) = tree.path_from(AsIdx(v as u32)) else { continue };
                // Walking vantage -> origin, classify each step; valley-free
                // means: once we pass a peer or customer-side step (toward
                // origin it looks like provider->customer), we may not go
                // back up.
                // Reconstruct classes: step near -> far where far is parent.
                let mut seen_down = false; // "down" = far is customer of near
                let mut peer_steps = 0;
                for w2 in path.windows(2) {
                    let (near, adj_idx) = (w2[0].0, w2[0].1.unwrap());
                    let far = w2[1].0;
                    let adj = &w.adjacencies[adj_idx.0 as usize];
                    let class = if adj.rel == Rel::P2P {
                        peer_steps += 1;
                        "peer"
                    } else if adj.a == far && adj.b == near {
                        // far is customer of near: near learned from customer
                        "down"
                    } else {
                        assert!(adj.a == near && adj.b == far);
                        "up"
                    };
                    match class {
                        "down" => seen_down = true,
                        "up" | "peer" => {
                            assert!(!seen_down, "valley: up/peer after down at AS{v} prefix {pi}");
                        }
                        _ => unreachable!(),
                    }
                }
                assert!(peer_steps <= 1, "at most one peer edge per path");
            }
        }
    }

    #[test]
    fn origin_has_zero_hops_and_no_parent() {
        let w = world();
        let tree = compute_tree(&w, &FailedSet::default(), AsIdx(0));
        let r = tree.routes[0].unwrap();
        assert_eq!(r.pref, PrefClass::Origin);
        assert_eq!(r.hops, 0);
        assert!(r.parent.is_none());
        assert_eq!(tree.path_from(AsIdx(0)).unwrap().len(), 1);
    }

    #[test]
    fn path_hops_match_route_info() {
        let w = world();
        let tree = compute_tree(&w, &FailedSet::default(), AsIdx(0));
        for v in 0..w.ases.len() {
            if let Some(path) = tree.path_from(AsIdx(v as u32)) {
                let info = tree.routes[v].unwrap();
                assert_eq!(path.len() as u16, info.hops + 1, "AS index {v}");
            }
        }
    }

    #[test]
    fn failures_reroute_or_disconnect_deterministically() {
        let w = world();
        let origin = AsIdx(0);
        let base = compute_tree(&w, &FailedSet::default(), origin);
        // Fail every facility one at a time; trees must stay valid.
        for f in w.colo.facilities().iter().take(8) {
            let mut failed = FailedSet::default();
            failed.facilities.insert(f.id);
            let t1 = compute_tree(&w, &failed, origin);
            let t2 = compute_tree(&w, &failed, origin);
            for v in 0..w.ases.len() {
                assert_eq!(t1.routes[v], t2.routes[v], "determinism");
            }
            assert!(t1.routed_count() <= base.routed_count() + w.ases.len());
        }
    }
}

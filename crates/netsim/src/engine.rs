//! Discrete-event emission engine: applies scheduled events to the routing
//! state and synthesizes the multi-collector BGP update stream.
//!
//! Behavioral fidelity targets (from the paper's measurements):
//!
//! * updates arrive MRAI-paced with per-path jitter, not synchronized;
//! * an instance failover changes communities *without* changing the AS
//!   path (implicit withdrawal);
//! * after an outage is repaired, control-plane paths drift back slowly —
//!   ≈95% within hours, ≈5% stick to the backup path indefinitely
//!   (Figure 10a);
//! * collector-peer session flaps produce state messages and bulk table
//!   re-announcements that must *not* look like outages.

use crate::events::{partial_ports, EventKind, GroundTruthEvent, ScheduledEvent};
use crate::routing::policy::FailedSet;
use crate::routing::propagate::{compute_tree, RouteTree};
use crate::routing::tag::{snapshot_route, RouteSnapshot};
use crate::world::{AsIdx, PrefixIdx, World};
use kepler_bgp::{AsPath, Asn, BgpUpdate, PathAttributes, PeerState, StateChange};
use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload};
use kepler_topology::{FacilityId, IxpId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::net::IpAddr;

/// One collector peer: a real AS feeding one or more collectors.
#[derive(Debug, Clone)]
pub struct PeerSpec {
    /// The AS acting as vantage point.
    pub as_idx: AsIdx,
    /// Its session address (shared across its collectors).
    pub addr: IpAddr,
    /// The collectors it feeds.
    pub collectors: Vec<CollectorId>,
}

/// Collector topology for a simulation.
#[derive(Debug, Clone, Default)]
pub struct CollectorSetup {
    /// Collector names, index = `CollectorId`.
    pub names: Vec<String>,
    /// The peers.
    pub peers: Vec<PeerSpec>,
}

impl CollectorSetup {
    /// Builds a realistic default: every Tier-1, a third of Tier-2s, a
    /// quarter of content ASes and a tenth of eyeballs peer with
    /// `n_collectors` collectors round-robin (some dual-homed).
    pub fn default_for(world: &World, n_collectors: usize, max_peers: usize, seed: u64) -> Self {
        use kepler_topology::AsType;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC011EC7);
        let names: Vec<String> = (0..n_collectors)
            .map(|i| {
                if i % 2 == 0 {
                    format!("rrc{:02}", i / 2)
                } else {
                    format!("route-views{}", i / 2 + 2)
                }
            })
            .collect();
        let mut peers = Vec::new();
        for (i, node) in world.ases.iter().enumerate() {
            if peers.len() >= max_peers {
                break;
            }
            let take = match node.info.as_type {
                AsType::Tier1 => true,
                AsType::Tier2 => rng.gen_bool(0.34),
                AsType::Content => rng.gen_bool(0.25),
                AsType::Eyeball => rng.gen_bool(0.10),
                _ => false,
            };
            if !take {
                continue;
            }
            let slot = peers.len();
            let mut collectors = vec![CollectorId((slot % n_collectors) as u16)];
            if rng.gen_bool(0.2) && n_collectors > 1 {
                collectors.push(CollectorId(((slot + 1) % n_collectors) as u16));
            }
            peers.push(PeerSpec {
                as_idx: AsIdx(i as u32),
                addr: World::peer_addr(slot),
                collectors,
            });
        }
        CollectorSetup { names, peers }
    }
}

/// Everything a simulation run produces.
#[derive(Debug)]
pub struct SimOutput {
    /// The full update stream, time-sorted.
    pub records: Vec<BgpRecord>,
    /// Ground truth for evaluation.
    pub ground_truth: Vec<GroundTruthEvent>,
    /// Collector names.
    pub collector_names: Vec<String>,
    /// (ASN, address) per peer slot.
    pub peers: Vec<(Asn, IpAddr)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ElementKey {
    Fac(FacilityId),
    Ixp(IxpId),
    Adj(crate::world::AdjIdx),
}

fn elements_of(snap: &RouteSnapshot) -> HashSet<ElementKey> {
    let mut out = HashSet::new();
    for v in &snap.visits {
        if let Some(f) = v.near_fac {
            out.insert(ElementKey::Fac(f));
        }
        if let Some(f) = v.far_fac {
            out.insert(ElementKey::Fac(f));
        }
        if let Some(x) = v.ixp {
            out.insert(ElementKey::Ixp(x));
        }
        out.insert(ElementKey::Adj(v.adj));
    }
    out
}

#[derive(Debug)]
enum Action {
    Fail(usize),
    Restore(usize),
    Return { peer: u32, prefix: u32, generation: u64 },
}

/// The emission engine.
pub struct Simulation<'w> {
    world: &'w World,
    setup: CollectorSetup,
    start: u64,
    rng: StdRng,
    failed: FailedSet,
    /// What BGP currently shows per (peer slot, prefix).
    visible: HashMap<(u32, u32), RouteSnapshot>,
    /// Per-prefix union of elements across peers' visible routes.
    prefix_elements: Vec<HashSet<ElementKey>>,
    usage: HashMap<ElementKey, HashSet<u32>>,
    generations: HashMap<(u32, u32), u64>,
    records: Vec<BgpRecord>,
    /// Tree cache, valid for the current failure epoch only.
    epoch: u64,
    tree_cache: HashMap<u32, (u64, RouteTree)>,
}

impl<'w> Simulation<'w> {
    /// Prepares a simulation (computes the initial full table and emits it
    /// as the first records at `start`).
    pub fn new(world: &'w World, setup: CollectorSetup, start: u64, seed: u64) -> Self {
        let mut sim = Simulation {
            world,
            setup,
            start,
            rng: StdRng::seed_from_u64(seed ^ 0x51A1_0E17),
            failed: FailedSet::default(),
            visible: HashMap::new(),
            prefix_elements: vec![HashSet::new(); world.prefixes.len()],
            usage: HashMap::new(),
            generations: HashMap::new(),
            records: Vec::new(),
            epoch: 0,
            tree_cache: HashMap::new(),
        };
        sim.emit_initial_table();
        sim
    }

    fn emit_initial_table(&mut self) {
        for p in 0..self.world.prefixes.len() {
            let pidx = PrefixIdx(p as u32);
            let origin = self.world.origin_of(pidx);
            let is_v6 = self.world.prefix(pidx).is_ipv6();
            let tree = compute_tree(self.world, &self.failed, origin);
            for slot in 0..self.setup.peers.len() {
                let vantage = self.setup.peers[slot].as_idx;
                if let Some(snap) = snapshot_route(self.world, &self.failed, &tree, vantage, is_v6)
                {
                    let t = self.start + self.rng.gen_range(0..120);
                    self.emit_announce(slot as u32, p as u32, &snap, t);
                    self.visible.insert((slot as u32, p as u32), snap);
                }
            }
            self.refresh_prefix_elements(p as u32);
        }
    }

    fn refresh_prefix_elements(&mut self, prefix: u32) {
        let mut new_set = HashSet::new();
        for slot in 0..self.setup.peers.len() {
            if let Some(snap) = self.visible.get(&(slot as u32, prefix)) {
                new_set.extend(elements_of(snap));
            }
        }
        let old = std::mem::replace(&mut self.prefix_elements[prefix as usize], new_set.clone());
        for k in old.difference(&new_set) {
            if let Some(s) = self.usage.get_mut(k) {
                s.remove(&prefix);
            }
        }
        for k in &new_set {
            self.usage.entry(*k).or_default().insert(prefix);
        }
    }

    fn tree_for(&mut self, prefix: u32) -> RouteTree {
        if let Some((epoch, tree)) = self.tree_cache.get(&prefix) {
            if *epoch == self.epoch {
                return tree.clone();
            }
        }
        let origin = self.world.origin_of(PrefixIdx(prefix));
        let tree = compute_tree(self.world, &self.failed, origin);
        if self.tree_cache.len() > 4096 {
            self.tree_cache.clear();
        }
        self.tree_cache.insert(prefix, (self.epoch, tree.clone()));
        tree
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn peer_id(&self, slot: u32) -> PeerId {
        let spec = &self.setup.peers[slot as usize];
        PeerId { asn: self.world.ases[spec.as_idx.0 as usize].asn, addr: spec.addr }
    }

    fn emit(&mut self, slot: u32, payload: RecordPayload, time: u64) {
        let peer = self.peer_id(slot);
        for &collector in &self.setup.peers[slot as usize].collectors.clone() {
            self.records.push(BgpRecord { time, collector, peer, payload: payload.clone() });
        }
    }

    fn attrs_for(&self, slot: u32, snap: &RouteSnapshot, is_v6: bool) -> PathAttributes {
        let next_hop: IpAddr = if is_v6 {
            let bits: u128 = (0x2001_07f8u128 << 96) | (slot as u128);
            IpAddr::V6(std::net::Ipv6Addr::from(bits))
        } else {
            self.setup.peers[slot as usize].addr
        };
        PathAttributes {
            as_path: AsPath::from_sequence(snap.as_path.iter().map(|a| a.0)),
            communities: snap.communities.clone(),
            next_hop,
            ..Default::default()
        }
    }

    fn emit_announce(&mut self, slot: u32, prefix: u32, snap: &RouteSnapshot, time: u64) {
        let p = self.world.prefix(PrefixIdx(prefix));
        let attrs = self.attrs_for(slot, snap, p.is_ipv6());
        self.emit(slot, RecordPayload::Update(BgpUpdate::announce(vec![p], attrs)), time);
    }

    fn emit_withdraw(&mut self, slot: u32, prefix: u32, time: u64) {
        let p = self.world.prefix(PrefixIdx(prefix));
        self.emit(slot, RecordPayload::Update(BgpUpdate::withdraw(vec![p])), time);
    }

    fn apply_kind(&mut self, id: usize, kind: &EventKind, on: bool) {
        match kind {
            EventKind::FacilityOutage { facility, affected_fraction }
            | EventKind::FiberCut { facility, affected_fraction } => {
                if *affected_fraction >= 1.0 {
                    if on {
                        self.failed.facilities.insert(*facility);
                    } else {
                        self.failed.facilities.remove(facility);
                    }
                } else {
                    let members: Vec<Asn> =
                        self.world.colo.members_of_facility(*facility).iter().copied().collect();
                    for asn in partial_ports(self.world, &members, *affected_fraction, id as u64) {
                        if on {
                            self.failed.facility_ports.insert((*facility, asn));
                        } else {
                            self.failed.facility_ports.remove(&(*facility, asn));
                        }
                    }
                }
            }
            EventKind::IxpOutage { ixp, affected_fraction } => {
                if *affected_fraction >= 1.0 {
                    if on {
                        self.failed.ixps.insert(*ixp);
                    } else {
                        self.failed.ixps.remove(ixp);
                    }
                } else {
                    let members: Vec<Asn> =
                        self.world.colo.members_of_ixp(*ixp).iter().copied().collect();
                    for asn in partial_ports(self.world, &members, *affected_fraction, id as u64) {
                        if on {
                            self.failed.ixp_ports.insert((*ixp, asn));
                        } else {
                            self.failed.ixp_ports.remove(&(*ixp, asn));
                        }
                    }
                }
            }
            EventKind::Depeering { a, b } => {
                let (Some(&ia), Some(&ib)) =
                    (self.world.asn_to_idx.get(a), self.world.asn_to_idx.get(b))
                else {
                    return;
                };
                let k = if ia.0 <= ib.0 { (ia, ib) } else { (ib, ia) };
                if let Some(&adj) = self.world.adj_of.get(&k) {
                    if on {
                        self.failed.dead_adjacencies.insert(adj);
                    } else {
                        self.failed.dead_adjacencies.remove(&adj);
                    }
                }
            }
            EventKind::IxpMemberLeave { asn, ixp } => {
                if on {
                    self.failed.dead_memberships.insert((*ixp, *asn));
                } else {
                    self.failed.dead_memberships.remove(&(*ixp, *asn));
                }
            }
            EventKind::OperatorWithdraw { asns, facility } => {
                for asn in asns {
                    if on {
                        self.failed.facility_ports.insert((*facility, *asn));
                    } else {
                        self.failed.facility_ports.remove(&(*facility, *asn));
                    }
                }
            }
            EventKind::CollectorFlap { .. } => {}
            // Pure data-plane event: routing state is untouched, the
            // dataplane backend reads the surge off the timeline.
            EventKind::LatencySurge { .. } => {}
        }
        self.bump_epoch();
    }

    fn keys_of(&self, kind: &EventKind) -> Vec<ElementKey> {
        match kind {
            EventKind::FacilityOutage { facility, .. }
            | EventKind::FiberCut { facility, .. }
            | EventKind::OperatorWithdraw { facility, .. } => vec![ElementKey::Fac(*facility)],
            EventKind::IxpOutage { ixp, .. } | EventKind::IxpMemberLeave { ixp, .. } => {
                vec![ElementKey::Ixp(*ixp)]
            }
            EventKind::Depeering { a, b } => {
                let (Some(&ia), Some(&ib)) =
                    (self.world.asn_to_idx.get(a), self.world.asn_to_idx.get(b))
                else {
                    return vec![];
                };
                let k = if ia.0 <= ib.0 { (ia, ib) } else { (ib, ia) };
                self.world.adj_of.get(&k).map(|&adj| vec![ElementKey::Adj(adj)]).unwrap_or_default()
            }
            EventKind::CollectorFlap { .. } | EventKind::LatencySurge { .. } => vec![],
        }
    }

    fn affected_prefixes(&self, keys: &[ElementKey]) -> HashSet<u32> {
        let mut out = HashSet::new();
        for k in keys {
            if let Some(s) = self.usage.get(k) {
                out.extend(s.iter().copied());
            }
        }
        out
    }

    /// Recomputes truth for `prefixes` and emits the differences at `time`
    /// (+ jitter). Returns the set actually changed.
    fn reconverge(&mut self, prefixes: &HashSet<u32>, time: u64) -> HashSet<u32> {
        let mut changed = HashSet::new();
        let mut sorted: Vec<u32> = prefixes.iter().copied().collect();
        sorted.sort_unstable();
        for prefix in sorted {
            let tree = self.tree_for(prefix);
            let is_v6 = self.world.prefix(PrefixIdx(prefix)).is_ipv6();
            for slot in 0..self.setup.peers.len() as u32 {
                let vantage = self.setup.peers[slot as usize].as_idx;
                let truth = snapshot_route(self.world, &self.failed, &tree, vantage, is_v6);
                let current = self.visible.get(&(slot, prefix));
                if truth.as_ref() == current {
                    continue;
                }
                changed.insert(prefix);
                let t = time + self.rng.gen_range(5..90);
                *self.generations.entry((slot, prefix)).or_insert(0) += 1;
                match truth {
                    Some(snap) => {
                        self.emit_announce(slot, prefix, &snap, t);
                        self.visible.insert((slot, prefix), snap);
                    }
                    None => {
                        self.emit_withdraw(slot, prefix, t);
                        self.visible.remove(&(slot, prefix));
                    }
                }
            }
            self.refresh_prefix_elements(prefix);
        }
        changed
    }

    /// Runs the timeline and returns the stream plus ground truth.
    pub fn run(mut self, timeline: &[ScheduledEvent], end: u64) -> SimOutput {
        let mut actions: Vec<Action> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let push = |actions: &mut Vec<Action>,
                    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                    t: u64,
                    a: Action| {
            let idx = actions.len() as u64;
            actions.push(a);
            heap.push(Reverse((t, idx)));
        };
        for (i, ev) in timeline.iter().enumerate() {
            if ev.start > end {
                continue;
            }
            push(&mut actions, &mut heap, ev.start, Action::Fail(i));
            if ev.end() <= end {
                push(&mut actions, &mut heap, ev.end(), Action::Restore(i));
            }
        }
        let mut event_scope: HashMap<usize, HashSet<u32>> = HashMap::new();
        let mut ground_truth: Vec<GroundTruthEvent> = Vec::new();

        while let Some(Reverse((t, aidx))) = heap.pop() {
            // Actions may enqueue Returns; take them by index.
            let action = std::mem::replace(&mut actions[aidx as usize], Action::Fail(usize::MAX));
            match action {
                Action::Fail(i) => {
                    let ev = &timeline[i];
                    if let EventKind::CollectorFlap { peer_slot } = ev.kind {
                        if peer_slot < self.setup.peers.len() {
                            self.emit(
                                peer_slot as u32,
                                RecordPayload::State(StateChange {
                                    old: PeerState::Established,
                                    new: PeerState::Idle,
                                }),
                                t,
                            );
                        }
                        ground_truth.push(GroundTruthEvent {
                            id: i,
                            start: ev.start,
                            duration: ev.duration.min(end.saturating_sub(ev.start)),
                            kind: ev.kind.clone(),
                            affected_members: 0,
                        });
                        continue;
                    }
                    self.apply_kind(i, &ev.kind, true);
                    let keys = self.keys_of(&ev.kind);
                    let affected = self.affected_prefixes(&keys);
                    let changed = self.reconverge(&affected, t);
                    event_scope.insert(i, changed);
                    let affected_members = self.count_affected_members(i, &ev.kind);
                    ground_truth.push(GroundTruthEvent {
                        id: i,
                        start: ev.start,
                        duration: ev.duration.min(end.saturating_sub(ev.start)),
                        kind: ev.kind.clone(),
                        affected_members,
                    });
                }
                Action::Restore(i) => {
                    let ev = &timeline[i];
                    if let EventKind::CollectorFlap { peer_slot } = ev.kind {
                        if peer_slot < self.setup.peers.len() {
                            let slot = peer_slot as u32;
                            self.emit(
                                slot,
                                RecordPayload::State(StateChange {
                                    old: PeerState::Idle,
                                    new: PeerState::Established,
                                }),
                                t,
                            );
                            // Bulk table re-announcement after session
                            // re-establishment.
                            let mine: Vec<(u32, RouteSnapshot)> = self
                                .visible
                                .iter()
                                .filter(|((s, _), _)| *s == slot)
                                .map(|((_, p), snap)| (*p, snap.clone()))
                                .collect();
                            for (p, snap) in mine {
                                let tt = t + self.rng.gen_range(1..120);
                                self.emit_announce(slot, p, &snap, tt);
                            }
                        }
                        continue;
                    }
                    self.apply_kind(i, &ev.kind, false);
                    let mut affected = event_scope.remove(&i).unwrap_or_default();
                    affected.extend(self.affected_prefixes(&self.keys_of(&ev.kind)));
                    // Schedule slow returns instead of instant reconvergence.
                    let mut sorted: Vec<u32> = affected.into_iter().collect();
                    sorted.sort_unstable();
                    for prefix in sorted {
                        let tree = self.tree_for(prefix);
                        let is_v6 = self.world.prefix(PrefixIdx(prefix)).is_ipv6();
                        for slot in 0..self.setup.peers.len() as u32 {
                            let vantage = self.setup.peers[slot as usize].as_idx;
                            let truth =
                                snapshot_route(self.world, &self.failed, &tree, vantage, is_v6);
                            if truth.as_ref() == self.visible.get(&(slot, prefix)) {
                                continue;
                            }
                            // ~5% of paths never return (BGP stickiness /
                            // operator pinning).
                            if self.rng.gen_bool(0.05) {
                                continue;
                            }
                            let delay = self.return_delay();
                            let generation = *self.generations.entry((slot, prefix)).or_insert(0);
                            let idx = actions.len() as u64;
                            actions.push(Action::Return { peer: slot, prefix, generation });
                            heap.push(Reverse((t + delay, idx)));
                        }
                    }
                }
                Action::Return { peer, prefix, generation } => {
                    let cur_gen = *self.generations.entry((peer, prefix)).or_insert(0);
                    if cur_gen != generation {
                        continue; // superseded by a newer event
                    }
                    let tree = self.tree_for(prefix);
                    let is_v6 = self.world.prefix(PrefixIdx(prefix)).is_ipv6();
                    let vantage = self.setup.peers[peer as usize].as_idx;
                    let truth = snapshot_route(self.world, &self.failed, &tree, vantage, is_v6);
                    if truth.as_ref() == self.visible.get(&(peer, prefix)) {
                        continue;
                    }
                    match truth {
                        Some(snap) => {
                            self.emit_announce(peer, prefix, &snap, t);
                            self.visible.insert((peer, prefix), snap);
                        }
                        None => {
                            self.emit_withdraw(peer, prefix, t);
                            self.visible.remove(&(peer, prefix));
                        }
                    }
                    self.refresh_prefix_elements(prefix);
                }
            }
        }

        let mut records = std::mem::take(&mut self.records);
        records.sort_by_key(|r| r.time);
        ground_truth.sort_by_key(|g| (g.start, g.id));
        SimOutput {
            records,
            ground_truth,
            collector_names: self.setup.names.clone(),
            peers: self
                .setup
                .peers
                .iter()
                .map(|p| (self.world.ases[p.as_idx.0 as usize].asn, p.addr))
                .collect(),
        }
    }

    /// Control-plane return delay after restoration: median ≈8 min with a
    /// tail to 4 h (Figure 10a's reconvergence shape: most paths return
    /// quickly, the stragglers take hours).
    fn return_delay(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let secs = -(1.0 - u).ln() * 700.0;
        (secs as u64).clamp(60, 4 * 3600)
    }

    fn count_affected_members(&self, id: usize, kind: &EventKind) -> usize {
        match kind {
            EventKind::FacilityOutage { facility, affected_fraction }
            | EventKind::FiberCut { facility, affected_fraction } => {
                let members: Vec<Asn> =
                    self.world.colo.members_of_facility(*facility).iter().copied().collect();
                partial_ports(self.world, &members, *affected_fraction, id as u64).len()
            }
            EventKind::IxpOutage { ixp, affected_fraction } => {
                let members: Vec<Asn> =
                    self.world.colo.members_of_ixp(*ixp).iter().copied().collect();
                partial_ports(self.world, &members, *affected_fraction, id as u64).len()
            }
            EventKind::Depeering { .. } => 2,
            EventKind::IxpMemberLeave { .. } => 1,
            EventKind::OperatorWithdraw { asns, .. } => asns.len(),
            EventKind::CollectorFlap { .. } => 0,
            EventKind::LatencySurge { facility, .. } => {
                self.world.colo.members_of_facility(*facility).len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    const T0: u64 = 1_400_000_000;

    fn setup(world: &World) -> CollectorSetup {
        CollectorSetup::default_for(world, 2, 12, 5)
    }

    fn busiest_facility(world: &World) -> FacilityId {
        world
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| world.colo.members_of_facility(f.id).len())
            .unwrap()
            .id
    }

    #[test]
    fn initial_table_is_emitted_for_all_peers() {
        let w = World::generate(WorldConfig::tiny(81));
        let s = setup(&w);
        let n_peers = s.peers.len();
        assert!(n_peers >= 3);
        let sim = Simulation::new(&w, s, T0, 1);
        let out = sim.run(&[], T0 + 3600);
        assert!(!out.records.is_empty());
        // All records are initial announcements within the first 2 minutes.
        assert!(out.records.iter().all(|r| r.time < T0 + 121));
        assert!(out
            .records
            .iter()
            .all(|r| matches!(&r.payload, RecordPayload::Update(u) if !u.announced.is_empty())));
    }

    #[test]
    fn facility_outage_changes_routes_and_restores() {
        let w = World::generate(WorldConfig::tiny(83));
        let fac = busiest_facility(&w);
        let s = setup(&w);
        let sim = Simulation::new(&w, s, T0, 2);
        let timeline = vec![ScheduledEvent {
            start: T0 + 2 * 86_400,
            duration: 1800,
            kind: EventKind::FacilityOutage { facility: fac, affected_fraction: 1.0 },
        }];
        let out = sim.run(&timeline, T0 + 4 * 86_400);
        let outage_window = (T0 + 2 * 86_400)..(T0 + 2 * 86_400 + 1800 + 120);
        let during: Vec<_> =
            out.records.iter().filter(|r| outage_window.contains(&r.time)).collect();
        assert!(!during.is_empty(), "outage must cause visible updates");
        let after: Vec<_> = out.records.iter().filter(|r| r.time >= outage_window.end).collect();
        assert!(!after.is_empty(), "restoration must cause returns");
        assert_eq!(out.ground_truth.len(), 1);
        assert_eq!(out.ground_truth[0].duration, 1800);
        assert!(out.ground_truth[0].affected_members > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let w = World::generate(WorldConfig::tiny(85));
        let fac = busiest_facility(&w);
        let timeline = vec![ScheduledEvent {
            start: T0 + 200_000,
            duration: 900,
            kind: EventKind::FacilityOutage { facility: fac, affected_fraction: 1.0 },
        }];
        let out1 = Simulation::new(&w, setup(&w), T0, 3).run(&timeline, T0 + 300_000);
        let out2 = Simulation::new(&w, setup(&w), T0, 3).run(&timeline, T0 + 300_000);
        assert_eq!(out1.records.len(), out2.records.len());
        for (a, b) in out1.records.iter().zip(out2.records.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn collector_flap_emits_state_and_readvertisement() {
        let w = World::generate(WorldConfig::tiny(87));
        let s = setup(&w);
        let sim = Simulation::new(&w, s, T0, 4);
        let timeline = vec![ScheduledEvent {
            start: T0 + 200_000,
            duration: 600,
            kind: EventKind::CollectorFlap { peer_slot: 0 },
        }];
        let out = sim.run(&timeline, T0 + 300_000);
        let states: Vec<_> =
            out.records.iter().filter(|r| matches!(r.payload, RecordPayload::State(_))).collect();
        assert_eq!(states.len(), states.len().max(2), "down + up states");
        assert!(states.len() >= 2);
        let reann = out
            .records
            .iter()
            .filter(|r| {
                r.time > T0 + 200_000 + 600 && matches!(r.payload, RecordPayload::Update(_))
            })
            .count();
        assert!(reann > 0, "bulk re-announcement after session up");
    }

    #[test]
    fn depeering_only_touches_prefixes_that_crossed_the_link() {
        let w = World::generate(WorldConfig::tiny(89));
        // Pick a P2P adjacency to tear down.
        let adj =
            w.adjacencies.iter().find(|a| a.rel == crate::world::Rel::P2P).expect("peering exists");
        let (a, b) = (w.ases[adj.a.0 as usize].asn, w.ases[adj.b.0 as usize].asn);
        let out_link = Simulation::new(&w, setup(&w), T0, 6).run(
            &[ScheduledEvent {
                start: T0 + 200_000,
                duration: 1800,
                kind: EventKind::Depeering { a, b },
            }],
            T0 + 260_000,
        );
        // Every post-event announcement must avoid the torn-down link while
        // it is dead (no path may contain ...a b... or ...b a...).
        let window = (T0 + 200_000)..(T0 + 201_800);
        for r in out_link.records.iter().filter(|r| window.contains(&r.time)) {
            if let RecordPayload::Update(u) = &r.payload {
                if let Some(attrs) = &u.attrs {
                    let hops = attrs.as_path.hops();
                    for w2 in hops.windows(2) {
                        assert!(
                            !((w2[0] == a && w2[1] == b) || (w2[0] == b && w2[1] == a)),
                            "dead link {a}-{b} reappeared in {}",
                            attrs.as_path
                        );
                    }
                }
            }
        }
        // The affected prefix set must be a strict subset of all prefixes.
        let touched: std::collections::HashSet<_> = out_link
            .records
            .iter()
            .filter(|r| r.time >= T0 + 200_000)
            .filter_map(|r| match &r.payload {
                RecordPayload::Update(u) => u.announced.first().or(u.withdrawn.first()).copied(),
                _ => None,
            })
            .collect();
        assert!(touched.len() < w.prefixes.len(), "link event must be localized");
    }
}

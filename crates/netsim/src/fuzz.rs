//! Seeded scenario-diversity engine: generated worlds × generated failures.
//!
//! The packaged studies in [`crate::scenario`] each freeze one
//! interesting topology. This module is the opposite bet: **hundreds of
//! small random worlds**, each paired with a random failure script —
//! clean single outages, partial-port outages, flapping facilities with
//! configurable duty cycles, correlated multi-building cascades inside
//! one metro, and fabrics whose member lists are padded with
//! remote-peering resellers. CI sweeps a seed range per run; any world
//! that violates a detector invariant is serialized (a failing seed plus
//! its [`ScenarioScript`]) so the exact scenario replays locally with
//! one command.
//!
//! Design rules:
//!
//! * **The script is the artifact.** [`ScenarioScript`] embeds the full
//!   [`WorldConfig`] *and* the concrete stage (facility ids, timings)
//!   chosen at generation time, and round-trips through a line-oriented
//!   text form ([`ScenarioScript::render`] / [`ScenarioScript::parse`]).
//!   Replaying a parsed script rebuilds the identical world — and a
//!   hand-edited script is a first-class way to author a regression
//!   case.
//! * **Generation never sees the detector.** This module only builds
//!   worlds and streams (netsim does not depend on `kepler-core`); the
//!   invariant checker lives in the root crate's fuzz harness.
//! * **Safety over liveness.** Scripts are free to generate outages too
//!   small to detect — the harness checks that the detector never blames
//!   a bystander, never closes early, never confirms an up facility; it
//!   only demands detection where the script guarantees visibility.

use crate::engine::{CollectorSetup, Simulation};
use crate::events::{EventKind, ScheduledEvent};
use crate::scenario::twin::DAY_ONE;
use crate::scenario::Scenario;
use crate::world::{World, WorldConfig};
use kepler_bgp::Asn;
use kepler_topology::{CityId, FacilityId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Header line of the serialized script format.
const HEADER: &str = "kepler-fuzz-script v1";

/// The failure archetypes the fuzzer composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// One facility, full outage.
    Single,
    /// One facility, a fraction of its ports.
    Partial,
    /// One facility going down and up repeatedly.
    Flapping,
    /// Several facilities in one metro failing in a stagger.
    Cascade,
    /// A fabric-hosting facility fails; the exchange's member list is
    /// padded with remote peers whose home metros must not be blamed.
    Remote,
    /// A facility drains member by member, each withdrawal spaced wider
    /// than a bin: the deviation test dismisses every step as AS-level
    /// churn, only the aggregate presence decline gives it away.
    SlowDrain,
    /// A repeating daily maintenance dip — the same members withdraw at
    /// the same hour every day. Pure seasonality, nothing to detect; the
    /// forecast detector's negative control.
    Seasonal,
    /// A congestion brownout: RTTs through a facility surge while
    /// routing is untouched. Invisible to BGP; only the delay detector
    /// can see it.
    DelaySurge,
}

impl FailureKind {
    /// Stable script-format name of the archetype.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Single => "single",
            FailureKind::Partial => "partial",
            FailureKind::Flapping => "flapping",
            FailureKind::Cascade => "cascade",
            FailureKind::Remote => "remote",
            FailureKind::SlowDrain => "slow-drain",
            FailureKind::Seasonal => "seasonal",
            FailureKind::DelaySurge => "delay-surge",
        }
    }
}

/// A concrete failure plan: facilities and timings fixed at generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureScript {
    /// Full single-facility outage.
    Single {
        /// The building that fails.
        facility: FacilityId,
        /// Outage start (epoch seconds).
        start: u64,
        /// Outage duration in seconds.
        duration: u64,
    },
    /// Partial outage: only a fraction of the building's ports die.
    Partial {
        /// The building that fails.
        facility: FacilityId,
        /// Outage start (epoch seconds).
        start: u64,
        /// Outage duration in seconds.
        duration: u64,
        /// Affected port fraction in percent (integer so the script
        /// text round-trips exactly).
        percent: u8,
    },
    /// A facility flapping with a fixed duty cycle.
    Flapping {
        /// The building that flaps.
        facility: FacilityId,
        /// First down-phase start (epoch seconds).
        start: u64,
        /// Down-phase length in seconds.
        down_secs: u64,
        /// Up-phase length in seconds.
        up_secs: u64,
        /// Number of down phases.
        cycles: u32,
    },
    /// Correlated cascade: same-metro facilities failing in a stagger.
    Cascade {
        /// The buildings that fail, in failure order.
        facilities: Vec<FacilityId>,
        /// First outage start (epoch seconds).
        start: u64,
        /// Delay between consecutive facility failures, seconds.
        stagger_secs: u64,
        /// Per-facility outage duration in seconds.
        duration: u64,
    },
    /// Full outage of a fabric-hosting facility in a world generated
    /// with a high remote-peering rate.
    Remote {
        /// The fabric-hosting building that fails.
        facility: FacilityId,
        /// Outage start (epoch seconds).
        start: u64,
        /// Outage duration in seconds.
        duration: u64,
    },
    /// Staggered per-member withdrawal draining a facility. Each step
    /// deviates a single near-AS — below the localization quorum — so
    /// the deviation test stays silent while the facility's presence
    /// drains to nothing.
    SlowDrain {
        /// The draining building.
        facility: FacilityId,
        /// Members withdrawn, in withdrawal order.
        members: Vec<Asn>,
        /// First withdrawal (epoch seconds).
        start: u64,
        /// Seconds between consecutive withdrawals (kept wider than a
        /// monitor bin so no bin sees two deviating members).
        stagger_secs: u64,
        /// How long the fully-drained state lasts before the members
        /// return.
        hold_secs: u64,
    },
    /// A repeating daily maintenance dip: the same members withdraw at
    /// the same time every day. There is no outage; a seasonal-naive
    /// forecaster must predict the dip after one period and raise
    /// nothing.
    Seasonal {
        /// The building with the maintenance window.
        facility: FacilityId,
        /// Members withdrawn during each dip.
        members: Vec<Asn>,
        /// First dip start (epoch seconds).
        start: u64,
        /// Dip length per day, seconds.
        dip_secs: u64,
        /// Number of daily cycles.
        days: u32,
    },
    /// A congestion brownout raising RTTs through one facility, with the
    /// control plane untouched.
    DelaySurge {
        /// The congested building.
        facility: FacilityId,
        /// Surge start (epoch seconds).
        start: u64,
        /// Surge duration in seconds.
        duration: u64,
        /// Extra milliseconds on every hop entering the building
        /// (integer so the script text round-trips exactly).
        extra_ms: u32,
    },
}

impl FailureScript {
    /// Which archetype this plan is.
    pub fn kind(&self) -> FailureKind {
        match self {
            FailureScript::Single { .. } => FailureKind::Single,
            FailureScript::Partial { .. } => FailureKind::Partial,
            FailureScript::Flapping { .. } => FailureKind::Flapping,
            FailureScript::Cascade { .. } => FailureKind::Cascade,
            FailureScript::Remote { .. } => FailureKind::Remote,
            FailureScript::SlowDrain { .. } => FailureKind::SlowDrain,
            FailureScript::Seasonal { .. } => FailureKind::Seasonal,
            FailureScript::DelaySurge { .. } => FailureKind::DelaySurge,
        }
    }

    /// The facilities this plan takes down, in failure order.
    pub fn epicenters(&self) -> Vec<FacilityId> {
        match self {
            FailureScript::Single { facility, .. }
            | FailureScript::Partial { facility, .. }
            | FailureScript::Flapping { facility, .. }
            | FailureScript::Remote { facility, .. }
            | FailureScript::SlowDrain { facility, .. }
            | FailureScript::Seasonal { facility, .. }
            | FailureScript::DelaySurge { facility, .. } => vec![*facility],
            FailureScript::Cascade { facilities, .. } => facilities.clone(),
        }
    }

    /// (first failure start, last restoration) of the plan.
    pub fn window(&self) -> (u64, u64) {
        match *self {
            FailureScript::Single { start, duration, .. }
            | FailureScript::Partial { start, duration, .. }
            | FailureScript::Remote { start, duration, .. }
            | FailureScript::DelaySurge { start, duration, .. } => (start, start + duration),
            FailureScript::Flapping { start, down_secs, up_secs, cycles, .. } => {
                let period = down_secs + up_secs;
                (start, start + u64::from(cycles.saturating_sub(1)) * period + down_secs)
            }
            FailureScript::Cascade { ref facilities, start, stagger_secs, duration } => {
                let last = start + facilities.len().saturating_sub(1) as u64 * stagger_secs;
                (start, last + duration)
            }
            FailureScript::SlowDrain { ref members, start, stagger_secs, hold_secs, .. } => {
                let last = start + members.len().saturating_sub(1) as u64 * stagger_secs;
                (start, last + hold_secs)
            }
            FailureScript::Seasonal { start, dip_secs, days, .. } => {
                (start, start + u64::from(days.saturating_sub(1)) * 86_400 + dip_secs)
            }
        }
    }

    /// Expands the plan into engine events.
    pub fn events(&self) -> Vec<ScheduledEvent> {
        let full = |facility, start, duration| ScheduledEvent {
            start,
            duration,
            kind: EventKind::FacilityOutage { facility, affected_fraction: 1.0 },
        };
        match *self {
            FailureScript::Single { facility, start, duration }
            | FailureScript::Remote { facility, start, duration } => {
                vec![full(facility, start, duration)]
            }
            FailureScript::Partial { facility, start, duration, percent } => {
                vec![ScheduledEvent {
                    start,
                    duration,
                    kind: EventKind::FacilityOutage {
                        facility,
                        affected_fraction: f64::from(percent) / 100.0,
                    },
                }]
            }
            FailureScript::Flapping { facility, start, down_secs, up_secs, cycles } => (0..cycles)
                .map(|k| full(facility, start + u64::from(k) * (down_secs + up_secs), down_secs))
                .collect(),
            FailureScript::Cascade { ref facilities, start, stagger_secs, duration } => facilities
                .iter()
                .enumerate()
                .map(|(i, &f)| full(f, start + i as u64 * stagger_secs, duration))
                .collect(),
            // Every withdrawal runs until the common restoration instant,
            // so the facility darkens monotonically, one member per step.
            FailureScript::SlowDrain { facility, ref members, start, stagger_secs, hold_secs } => {
                let (_, drain_end) = self.window();
                members
                    .iter()
                    .enumerate()
                    .map(|(i, &asn)| {
                        let at = start + i as u64 * stagger_secs;
                        ScheduledEvent {
                            start: at,
                            duration: drain_end.saturating_sub(at).max(hold_secs),
                            kind: EventKind::OperatorWithdraw { asns: vec![asn], facility },
                        }
                    })
                    .collect()
            }
            FailureScript::Seasonal { facility, ref members, start, dip_secs, days } => (0..days)
                .map(|k| ScheduledEvent {
                    start: start + u64::from(k) * 86_400,
                    duration: dip_secs,
                    kind: EventKind::OperatorWithdraw { asns: members.clone(), facility },
                })
                .collect(),
            FailureScript::DelaySurge { facility, start, duration, extra_ms } => {
                vec![ScheduledEvent {
                    start,
                    duration,
                    kind: EventKind::LatencySurge { facility, extra_ms: f64::from(extra_ms) },
                }]
            }
        }
    }
}

/// A fully-specified generated scenario: world recipe + failure plan +
/// the detector knobs the harness must replay it with.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScript {
    /// The fuzzer seed this script was generated from.
    pub seed: u64,
    /// The world recipe (regenerating it is deterministic).
    pub world: WorldConfig,
    /// Collector count for the vantage setup.
    pub collectors: usize,
    /// Peer cap per collector.
    pub max_peers: usize,
    /// Opening hysteresis the harness must run the tracker with.
    pub open_after: usize,
    /// Closing hysteresis the harness must run the tracker with.
    pub close_after: usize,
    /// The failure plan.
    pub script: FailureScript,
}

/// A built fuzz world, ready for the detector harness.
pub struct FuzzWorld {
    /// The script that produced it.
    pub script: ScenarioScript,
    /// The simulated scenario (world + update stream + timeline).
    pub scenario: Scenario,
    /// The metro of the first epicenter.
    pub city: CityId,
}

impl ScenarioScript {
    /// Generates the script for a fuzzer seed: a random small world and
    /// a random failure archetype staged on its best-instrumented
    /// facilities.
    pub fn generate(seed: u64) -> ScenarioScript {
        ScenarioScript::generate_kind(seed, None)
    }

    /// [`generate`](Self::generate), with the archetype forced.
    pub fn generate_kind(seed: u64, force: Option<FailureKind>) -> ScenarioScript {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA57_F00D);
        let kind = force.unwrap_or_else(|| match rng.gen_range(0..5u32) {
            0 => FailureKind::Single,
            1 => FailureKind::Partial,
            2 => FailureKind::Flapping,
            3 => FailureKind::Cascade,
            _ => FailureKind::Remote,
        });

        // World recipe: jitter every knob around the `tiny` preset so no
        // two seeds share a topology, but stay small enough that a full
        // world + simulation runs in well under a second.
        let mut wc = WorldConfig::tiny(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        wc.n_tier1 = rng.gen_range(3..=5);
        wc.n_tier2 = rng.gen_range(10..=16);
        wc.n_content = rng.gen_range(8..=14);
        wc.n_eyeball = rng.gen_range(14..=26);
        wc.n_stub = rng.gen_range(20..=40);
        wc.facilities_per_continent = [
            rng.gen_range(14..=24),
            rng.gen_range(8..=14),
            rng.gen_range(3..=7),
            rng.gen_range(1..=3),
            1,
        ];
        wc.n_ixps = rng.gen_range(4..=9);
        wc.max_ixp_facilities = rng.gen_range(2..=4);
        wc.ixp_peers_per_member = rng.gen_range(3..=6);
        wc.pni_rate = f64::from(rng.gen_range(30..=60u32)) / 100.0;
        wc.documentation_rate = f64::from(rng.gen_range(85..=96u32)) / 100.0;
        wc.v6_tagging_rate = f64::from(rng.gen_range(40..=80u32)) / 100.0;
        // Remote worlds need enough reseller members for the remoteness
        // invariant to bite; elsewhere keep the preset's background rate.
        wc.remote_peering_rate = if kind == FailureKind::Remote {
            f64::from(rng.gen_range(35..=55u32)) / 100.0
        } else {
            f64::from(rng.gen_range(8..=25u32)) / 100.0
        };

        let world = World::generate(wc.clone());
        let stage = stage_for(&world, kind, &mut rng);

        // Timings. The warmup must exceed the detector's 2-day
        // stable-path horizon; the hour-of-day offset varies per seed.
        let start =
            DAY_ONE + 2 * 86_400 + rng.gen_range(2..=8u64) * 3600 + rng.gen_range(0..60u64) * 60;
        let script = match kind {
            FailureKind::Single => FailureScript::Single {
                facility: stage[0],
                start,
                duration: rng.gen_range(1..=3u64) * 3600,
            },
            FailureKind::Partial => FailureScript::Partial {
                facility: stage[0],
                start,
                duration: rng.gen_range(1..=3u64) * 3600,
                percent: rng.gen_range(50..=90u8),
            },
            FailureKind::Flapping => FailureScript::Flapping {
                facility: stage[0],
                start,
                down_secs: rng.gen_range(25..=45u64) * 60,
                up_secs: rng.gen_range(8..=18u64) * 60,
                cycles: rng.gen_range(3..=5u32),
            },
            FailureKind::Cascade => FailureScript::Cascade {
                facilities: stage,
                start,
                stagger_secs: rng.gen_range(10..=30u64) * 60,
                duration: rng.gen_range(2..=3u64) * 3600,
            },
            FailureKind::Remote => FailureScript::Remote {
                facility: stage[0],
                start,
                duration: rng.gen_range(1..=3u64) * 3600,
            },
            FailureKind::SlowDrain => FailureScript::SlowDrain {
                facility: stage[0],
                // Every tenant leaves — the locatable ones drain the
                // presence counter, the rest darken the data plane so a
                // validation campaign can confirm the husk.
                members: facility_members(&world, stage[0], false, usize::MAX),
                start,
                // Wider than a 60 s bin: no bin ever sees two deviating
                // members, so the deviation test dismisses every step.
                stagger_secs: rng.gen_range(3..=6u64) * 60,
                hold_secs: rng.gen_range(2..=3u64) * 3600,
            },
            FailureKind::Seasonal => FailureScript::Seasonal {
                facility: stage[0],
                // Two members stay below the ≥3 disjoint-near-AS quorum.
                members: facility_members(&world, stage[0], true, 2),
                // The first dip lands inside the forecaster's first
                // season (stream day one), so only *predicted* dips fall
                // on warmed ring slots.
                start: DAY_ONE + rng.gen_range(4..=10u64) * 3600,
                dip_secs: rng.gen_range(30..=60u64) * 60,
                days: 4,
            },
            FailureKind::DelaySurge => FailureScript::DelaySurge {
                facility: stage[0],
                start,
                duration: rng.gen_range(1..=2u64) * 3600,
                extra_ms: rng.gen_range(40..=80u32),
            },
        };

        // Detector knobs. Opening hysteresis is mostly 1 (the paper's
        // immediate-open behavior) with a deferred-open minority; closing
        // hysteresis for flapping worlds must outlast the up phase so the
        // incident rides the flap as one Open↔Recovering lifecycle.
        let open_after = if rng.gen_range(0..4u32) == 0 { 2 } else { 1 };
        let close_after = match script {
            FailureScript::Flapping { up_secs, .. } => (up_secs / 60) as usize + 8,
            _ => rng.gen_range(1..=2usize),
        };

        ScenarioScript {
            seed,
            world: wc,
            collectors: rng.gen_range(4..=6),
            max_peers: rng.gen_range(40..=72),
            open_after,
            close_after,
            script,
        }
    }

    /// End of the simulation window: last restoration plus a six-hour
    /// tail for restoration detection and lifecycle close.
    pub fn sim_end(&self) -> u64 {
        self.script.window().1 + 6 * 3600
    }

    /// Regenerates the world and runs the failure plan through the
    /// engine. Deterministic: the same script always builds the same
    /// stream.
    pub fn build(&self) -> FuzzWorld {
        let world = World::generate(self.world.clone());
        let timeline = self.script.events();
        let start = DAY_ONE;
        let end = self.sim_end();
        let setup = CollectorSetup::default_for(&world, self.collectors, self.max_peers, self.seed);
        let output = Simulation::new(&world, setup, start, self.seed).run(&timeline, end);
        let city = world
            .colo
            .facility(self.script.epicenters()[0])
            .map(|f| f.city)
            .expect("script epicenter must exist in its own world");
        FuzzWorld {
            script: self.clone(),
            scenario: Scenario { world, output, timeline, start, end, seed: self.seed },
            city,
        }
    }

    /// Serializes the script as line-oriented `key = value` text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        let w = &self.world;
        kv("seed", self.seed.to_string());
        kv("kind", self.script.kind().name().to_string());
        kv("collectors", self.collectors.to_string());
        kv("max_peers", self.max_peers.to_string());
        kv("open_after", self.open_after.to_string());
        kv("close_after", self.close_after.to_string());
        kv("world.seed", w.seed.to_string());
        kv("world.n_tier1", w.n_tier1.to_string());
        kv("world.n_tier2", w.n_tier2.to_string());
        kv("world.n_content", w.n_content.to_string());
        kv("world.n_eyeball", w.n_eyeball.to_string());
        kv("world.n_stub", w.n_stub.to_string());
        kv(
            "world.facilities_per_continent",
            w.facilities_per_continent.map(|n| n.to_string()).join(","),
        );
        kv("world.n_ixps", w.n_ixps.to_string());
        kv("world.max_ixp_facilities", w.max_ixp_facilities.to_string());
        kv("world.ixp_peers_per_member", w.ixp_peers_per_member.to_string());
        kv("world.pni_rate", w.pni_rate.to_string());
        kv("world.remote_peering_rate", w.remote_peering_rate.to_string());
        kv("world.documentation_rate", w.documentation_rate.to_string());
        kv("world.v6_tagging_rate", w.v6_tagging_rate.to_string());
        match &self.script {
            FailureScript::Single { facility, start, duration }
            | FailureScript::Remote { facility, start, duration } => {
                kv("facility", facility.0.to_string());
                kv("start", start.to_string());
                kv("duration", duration.to_string());
            }
            FailureScript::Partial { facility, start, duration, percent } => {
                kv("facility", facility.0.to_string());
                kv("start", start.to_string());
                kv("duration", duration.to_string());
                kv("percent", percent.to_string());
            }
            FailureScript::Flapping { facility, start, down_secs, up_secs, cycles } => {
                kv("facility", facility.0.to_string());
                kv("start", start.to_string());
                kv("down_secs", down_secs.to_string());
                kv("up_secs", up_secs.to_string());
                kv("cycles", cycles.to_string());
            }
            FailureScript::Cascade { facilities, start, stagger_secs, duration } => {
                kv(
                    "facilities",
                    facilities.iter().map(|f| f.0.to_string()).collect::<Vec<_>>().join(","),
                );
                kv("start", start.to_string());
                kv("stagger_secs", stagger_secs.to_string());
                kv("duration", duration.to_string());
            }
            FailureScript::SlowDrain { facility, members, start, stagger_secs, hold_secs } => {
                kv("facility", facility.0.to_string());
                kv(
                    "members",
                    members.iter().map(|a| a.0.to_string()).collect::<Vec<_>>().join(","),
                );
                kv("start", start.to_string());
                kv("stagger_secs", stagger_secs.to_string());
                kv("hold_secs", hold_secs.to_string());
            }
            FailureScript::Seasonal { facility, members, start, dip_secs, days } => {
                kv("facility", facility.0.to_string());
                kv(
                    "members",
                    members.iter().map(|a| a.0.to_string()).collect::<Vec<_>>().join(","),
                );
                kv("start", start.to_string());
                kv("dip_secs", dip_secs.to_string());
                kv("days", days.to_string());
            }
            FailureScript::DelaySurge { facility, start, duration, extra_ms } => {
                kv("facility", facility.0.to_string());
                kv("start", start.to_string());
                kv("duration", duration.to_string());
                kv("extra_ms", extra_ms.to_string());
            }
        }
        format!("{HEADER}\n{out}")
    }

    /// Parses text produced by [`render`](Self::render) — or written by
    /// hand to author a regression case.
    pub fn parse(text: &str) -> Result<ScenarioScript, String> {
        let mut lines =
            text.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(HEADER) {
            return Err(format!("missing header line `{HEADER}`"));
        }
        let mut map: BTreeMap<&str, &str> = BTreeMap::new();
        for line in lines {
            let (k, v) =
                line.split_once('=').ok_or_else(|| format!("not a `key = value` line: {line}"))?;
            map.insert(k.trim(), v.trim());
        }
        fn field<T: std::str::FromStr>(map: &BTreeMap<&str, &str>, key: &str) -> Result<T, String> {
            map.get(key)
                .ok_or_else(|| format!("missing key `{key}`"))?
                .parse()
                .map_err(|_| format!("bad value for `{key}`"))
        }
        fn list(map: &BTreeMap<&str, &str>, key: &str) -> Result<Vec<u64>, String> {
            map.get(key)
                .ok_or_else(|| format!("missing key `{key}`"))?
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| format!("bad value for `{key}`")))
                .collect()
        }

        let mut world = WorldConfig::tiny(field(&map, "world.seed")?);
        world.n_tier1 = field(&map, "world.n_tier1")?;
        world.n_tier2 = field(&map, "world.n_tier2")?;
        world.n_content = field(&map, "world.n_content")?;
        world.n_eyeball = field(&map, "world.n_eyeball")?;
        world.n_stub = field(&map, "world.n_stub")?;
        let facs = list(&map, "world.facilities_per_continent")?;
        if facs.len() != 5 {
            return Err("world.facilities_per_continent needs 5 entries".into());
        }
        for (slot, v) in world.facilities_per_continent.iter_mut().zip(&facs) {
            *slot = *v as usize;
        }
        world.n_ixps = field(&map, "world.n_ixps")?;
        world.max_ixp_facilities = field(&map, "world.max_ixp_facilities")?;
        world.ixp_peers_per_member = field(&map, "world.ixp_peers_per_member")?;
        world.pni_rate = field(&map, "world.pni_rate")?;
        world.remote_peering_rate = field(&map, "world.remote_peering_rate")?;
        world.documentation_rate = field(&map, "world.documentation_rate")?;
        world.v6_tagging_rate = field(&map, "world.v6_tagging_rate")?;

        let fac = |m: &BTreeMap<&str, &str>| -> Result<FacilityId, String> {
            Ok(FacilityId(field(m, "facility")?))
        };
        let script = match *map.get("kind").ok_or("missing key `kind`")? {
            "single" => FailureScript::Single {
                facility: fac(&map)?,
                start: field(&map, "start")?,
                duration: field(&map, "duration")?,
            },
            "remote" => FailureScript::Remote {
                facility: fac(&map)?,
                start: field(&map, "start")?,
                duration: field(&map, "duration")?,
            },
            "partial" => FailureScript::Partial {
                facility: fac(&map)?,
                start: field(&map, "start")?,
                duration: field(&map, "duration")?,
                percent: field(&map, "percent")?,
            },
            "flapping" => FailureScript::Flapping {
                facility: fac(&map)?,
                start: field(&map, "start")?,
                down_secs: field(&map, "down_secs")?,
                up_secs: field(&map, "up_secs")?,
                cycles: field(&map, "cycles")?,
            },
            "cascade" => FailureScript::Cascade {
                facilities: list(&map, "facilities")?
                    .into_iter()
                    .map(|f| FacilityId(f as u32))
                    .collect(),
                start: field(&map, "start")?,
                stagger_secs: field(&map, "stagger_secs")?,
                duration: field(&map, "duration")?,
            },
            "slow-drain" => FailureScript::SlowDrain {
                facility: fac(&map)?,
                members: list(&map, "members")?.into_iter().map(|a| Asn(a as u32)).collect(),
                start: field(&map, "start")?,
                stagger_secs: field(&map, "stagger_secs")?,
                hold_secs: field(&map, "hold_secs")?,
            },
            "seasonal" => FailureScript::Seasonal {
                facility: fac(&map)?,
                members: list(&map, "members")?.into_iter().map(|a| Asn(a as u32)).collect(),
                start: field(&map, "start")?,
                dip_secs: field(&map, "dip_secs")?,
                days: field(&map, "days")?,
            },
            "delay-surge" => FailureScript::DelaySurge {
                facility: fac(&map)?,
                start: field(&map, "start")?,
                duration: field(&map, "duration")?,
                extra_ms: field(&map, "extra_ms")?,
            },
            other => return Err(format!("unknown kind `{other}`")),
        };

        Ok(ScenarioScript {
            seed: field(&map, "seed")?,
            world,
            collectors: field(&map, "collectors")?,
            max_peers: field(&map, "max_peers")?,
            open_after: field(&map, "open_after")?,
            close_after: field(&map, "close_after")?,
            script,
        })
    }
}

impl FuzzWorld {
    /// ASes peering *remotely* at an exchange whose fabric sits in a
    /// failed facility, with their home metros. The harness asserts the
    /// detector never localizes the outage to any of those distant
    /// metros — the reseller port died, not a building the member
    /// inhabits.
    pub fn remote_victims(&self) -> Vec<(Asn, CityId)> {
        let world = &self.scenario.world;
        let mut fabrics: BTreeSet<kepler_topology::IxpId> = BTreeSet::new();
        for f in self.script.script.epicenters() {
            fabrics.extend(world.colo.ixps_at_facility(f).iter().copied());
        }
        world
            .ases
            .iter()
            .filter(|n| n.remote_ixps.iter().any(|x| fabrics.contains(x)))
            .map(|n| (n.info.asn, n.info.home_city))
            .collect()
    }
}

/// Members of a facility, sorted for determinism; `locatable_only`
/// keeps the 16-bit, community-tagged members whose routes the detector
/// can actually place at the building.
fn facility_members(world: &World, f: FacilityId, locatable_only: bool, cap: usize) -> Vec<Asn> {
    let mut ms: Vec<Asn> = world
        .colo
        .members_of_facility(f)
        .iter()
        .copied()
        .filter(|a| {
            !locatable_only
                || (a.is_16bit() && world.node(*a).map(|n| n.scheme.is_some()).unwrap_or(false))
        })
        .collect();
    ms.sort();
    ms.truncate(cap);
    ms
}

/// Picks the stage facilities for an archetype: the best-instrumented
/// candidates, by count of *locatable* tenants (16-bit ASNs running a
/// community scheme — the members whose deviations the detector sees).
fn stage_for(world: &World, kind: FailureKind, rng: &mut StdRng) -> Vec<FacilityId> {
    let locatable = |f: FacilityId| {
        world
            .colo
            .members_of_facility(f)
            .iter()
            .filter(|a| {
                a.is_16bit() && world.node(**a).map(|n| n.scheme.is_some()).unwrap_or(false)
            })
            .count()
    };
    let mut ranked: Vec<(usize, FacilityId)> =
        world.colo.facilities().iter().map(|f| (locatable(f.id), f.id)).collect();
    ranked.sort_by_key(|(n, f)| (std::cmp::Reverse(*n), f.0));

    match kind {
        FailureKind::Single | FailureKind::Partial | FailureKind::Flapping => {
            // One of the top candidates, not always the same one.
            let pool = ranked.iter().take_while(|(n, _)| *n >= 2).count().clamp(1, 4);
            vec![ranked[rng.gen_range(0..pool)].1]
        }
        // The fused-signal archetypes need depth: presence drains and
        // canary panels only bite at the best-instrumented building.
        FailureKind::SlowDrain | FailureKind::Seasonal | FailureKind::DelaySurge => {
            vec![ranked[0].1]
        }
        FailureKind::Remote => {
            // The fabric-hosting facility exposing the most remote
            // members; fall back to the best-populated facility when the
            // world grew no usable reseller circuit.
            let exposure = |f: FacilityId| {
                let fabrics = world.colo.ixps_at_facility(f);
                if fabrics.is_empty() {
                    return 0;
                }
                world
                    .ases
                    .iter()
                    .filter(|n| n.remote_ixps.iter().any(|x| fabrics.contains(x)))
                    .count()
            };
            let best = ranked
                .iter()
                .map(|&(_, f)| (exposure(f), f))
                .max_by_key(|&(n, f)| (n, std::cmp::Reverse(f.0)))
                .expect("worlds always have facilities");
            vec![if best.0 > 0 { best.1 } else { ranked[0].1 }]
        }
        FailureKind::Cascade => {
            // The metro whose top facilities carry the most locatable
            // tenants; fail its best two or three buildings.
            let cities: BTreeSet<CityId> = world.colo.facilities().iter().map(|f| f.city).collect();
            let mut best: Option<(usize, Vec<FacilityId>)> = None;
            let depth = rng.gen_range(2..=3usize);
            for city in cities {
                let mut facs: Vec<(usize, FacilityId)> = world
                    .colo
                    .facilities_in_city(city)
                    .into_iter()
                    .map(|f| (locatable(f), f))
                    .collect();
                facs.sort_by_key(|(n, f)| (std::cmp::Reverse(*n), f.0));
                if facs.len() < 2 {
                    continue;
                }
                let take = depth.min(facs.len());
                let score: usize = facs[..take].iter().map(|(n, _)| n).sum();
                if best.as_ref().map(|(s, _)| score > *s).unwrap_or(true) {
                    best = Some((score, facs[..take].iter().map(|(_, f)| *f).collect()));
                }
            }
            best.map(|(_, fs)| fs).unwrap_or_else(|| vec![ranked[0].1])
        }
    }
}

/// Builds a world staged for remote-peering mislocalization.
pub fn remote_peering(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::Remote)).build()
}

/// Builds a world with a flapping facility.
pub fn flapping(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::Flapping)).build()
}

/// Builds a world with a correlated same-metro cascade.
pub fn cascade(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::Cascade)).build()
}

/// Builds a world whose best-instrumented facility drains member by
/// member, below the deviation test's localization quorum.
pub fn slow_drain(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::SlowDrain)).build()
}

/// Builds a world with a pure daily maintenance pattern and no outage
/// (forecast negative control).
pub fn pure_seasonal(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::Seasonal)).build()
}

/// Builds a world with a routing-invisible congestion brownout.
pub fn delay_surge(seed: u64) -> FuzzWorld {
    ScenarioScript::generate_kind(seed, Some(FailureKind::DelaySurge)).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_diverse() {
        let mut kinds = BTreeSet::new();
        for seed in 0..16u64 {
            let a = ScenarioScript::generate(seed);
            let b = ScenarioScript::generate(seed);
            assert_eq!(a, b, "seed {seed} must generate reproducibly");
            kinds.insert(a.script.kind().name());
        }
        assert!(kinds.len() >= 3, "16 seeds should cover several archetypes, got {kinds:?}");
    }

    #[test]
    fn every_archetype_renders_and_round_trips() {
        for kind in [
            FailureKind::Single,
            FailureKind::Partial,
            FailureKind::Flapping,
            FailureKind::Cascade,
            FailureKind::Remote,
            FailureKind::SlowDrain,
            FailureKind::Seasonal,
            FailureKind::DelaySurge,
        ] {
            let script = ScenarioScript::generate_kind(7, Some(kind));
            let text = script.render();
            let back = ScenarioScript::parse(&text)
                .unwrap_or_else(|e| panic!("{kind:?} round-trip: {e}\n{text}"));
            assert_eq!(back, script);
            assert!(!script.script.epicenters().is_empty());
            let (a, b) = script.script.window();
            assert!(a < b && script.sim_end() > b);
        }
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert!(ScenarioScript::parse("").is_err());
        assert!(ScenarioScript::parse("kepler-fuzz-script v1\nseed = 1\n").is_err());
        let good = ScenarioScript::generate(3).render();
        assert!(ScenarioScript::parse(&good.replace("kind = ", "kind = warp-core-")).is_err());
        // Comment lines (artifact annotations) are ignored.
        let annotated = format!("{good}# violation: something\n  # indented note\n");
        assert!(ScenarioScript::parse(&annotated).is_ok());
    }

    #[test]
    fn flapping_scripts_expand_to_one_event_per_cycle() {
        let script = ScenarioScript::generate_kind(11, Some(FailureKind::Flapping));
        let FailureScript::Flapping { cycles, down_secs, up_secs, start, facility } = script.script
        else {
            panic!("forced kind");
        };
        let events = script.script.events();
        assert_eq!(events.len(), cycles as usize);
        for (k, e) in events.iter().enumerate() {
            assert_eq!(e.start, start + k as u64 * (down_secs + up_secs));
            assert_eq!(e.duration, down_secs);
            assert!(
                matches!(e.kind, EventKind::FacilityOutage { facility: f, .. } if f == facility)
            );
        }
        // The closing hysteresis must outlast the up phase (in 60 s
        // restoration-check bins), or the incident would close mid-flap.
        assert!(script.close_after as u64 > up_secs / 60);
    }

    #[test]
    fn cascades_stay_inside_one_metro() {
        let built = cascade(5);
        let FailureScript::Cascade { ref facilities, .. } = built.script.script else {
            panic!("forced kind");
        };
        assert!(facilities.len() >= 2);
        let world = &built.scenario.world;
        for f in facilities {
            assert_eq!(world.colo.facility(*f).unwrap().city, built.city);
        }
        assert_eq!(built.scenario.output.ground_truth.len(), facilities.len());
    }

    #[test]
    fn slow_drain_withdraws_one_member_per_step_until_a_common_end() {
        let script = ScenarioScript::generate_kind(13, Some(FailureKind::SlowDrain));
        let FailureScript::SlowDrain { facility, ref members, start, stagger_secs, .. } =
            script.script
        else {
            panic!("forced kind");
        };
        assert!(members.len() >= 3, "the staged facility must have members to drain");
        assert!(stagger_secs > 60, "steps must be spaced wider than a monitor bin");
        let events = script.script.events();
        assert_eq!(events.len(), members.len());
        let (_, drain_end) = script.script.window();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.start, start + i as u64 * stagger_secs);
            assert_eq!(e.end(), drain_end, "all withdrawals restore together");
            let EventKind::OperatorWithdraw { ref asns, facility: f } = e.kind else {
                panic!("drain steps are operator withdrawals");
            };
            assert_eq!(f, facility);
            assert_eq!(asns, &vec![members[i]], "exactly one member per step");
        }
    }

    #[test]
    fn seasonal_scripts_repeat_daily_and_delay_surges_stay_off_the_control_plane() {
        let seasonal = ScenarioScript::generate_kind(17, Some(FailureKind::Seasonal));
        let FailureScript::Seasonal { days, dip_secs, start, .. } = seasonal.script else {
            panic!("forced kind");
        };
        let events = seasonal.script.events();
        assert_eq!(events.len(), days as usize);
        for (k, e) in events.iter().enumerate() {
            assert_eq!(e.start, start + k as u64 * 86_400, "dips recur at the same hour");
            assert_eq!(e.duration, dip_secs);
        }
        assert!(
            start < DAY_ONE + 86_400,
            "the first dip must land inside the forecaster's first season"
        );

        let surge = ScenarioScript::generate_kind(17, Some(FailureKind::DelaySurge));
        let events = surge.script.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::LatencySurge { .. }));
        assert!(!events[0].kind.is_infrastructure_outage());
    }

    #[test]
    fn remote_worlds_expose_reseller_victims() {
        let built = remote_peering(2);
        let victims = built.remote_victims();
        assert!(
            !victims.is_empty(),
            "the remote archetype must stage a fabric with remote members"
        );
        // Victims are *remote*: they peer at the fabric but are not
        // tenants of the failed building.
        let epicenter = built.script.script.epicenters()[0];
        let world = &built.scenario.world;
        for (asn, _) in &victims {
            assert!(
                !world.colo.members_of_facility(epicenter).contains(asn),
                "remote member {asn:?} must not be a tenant of the failed fabric building"
            );
        }
        assert!(!built.scenario.output.records.is_empty());
    }
}

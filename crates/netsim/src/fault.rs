//! Fault injection for the measurement path.
//!
//! The simulator's data plane answers every trace; real measurement
//! platforms do not. [`FaultyBackend`] wraps any synchronous
//! [`TraceBackend`] and presents the async lifecycle contract with
//! realistic failure modes layered on top, all **deterministic pure
//! functions of the measurement identity** (seeded hashes — no RNG
//! state), so every chaotic run replays bit-identically:
//!
//! * **drops** — the measurement never answers (the driver times out and
//!   retries; a retry is a new attempt and re-rolls its fate);
//! * **delays past deadline** — the answer exists but materializes only
//!   after the per-attempt deadline, indistinguishable from a drop to
//!   the driver;
//! * **truncated hop lists** — the probe dies mid-path: hops are cut
//!   *and the destination is unreached*, so a truncated trace can never
//!   masquerade as a detour (which would falsely confirm a facility);
//! * **duplicated hops** — measurement artifacts repeating an interface;
//! * **vantage churn** — whole vantage points vanish for hashed windows
//!   (submissions rejected);
//! * **scripted brownouts** — wall-to-wall submission rejection during
//!   configured windows, driving the backend-health machine to OFFLINE.

use kepler_bgpstream::Timestamp;
use kepler_probe::lifecycle::{AsyncTraceBackend, Measurement, MeasurementState, SubmitResult};
use kepler_probe::{splitmix64, TraceBackend};

/// Fault rates and windows. All rates are probabilities in `[0, 1]`
/// evaluated independently per measurement attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed decorrelating this backend's faults from every other one.
    pub seed: u64,
    /// Probability an attempt never answers.
    pub drop_rate: f64,
    /// Probability an attempt answers only after `delay_secs`.
    pub delay_rate: f64,
    /// How late a delayed answer materializes (choose larger than the
    /// lifecycle deadline to model a deadline blowout).
    pub delay_secs: u64,
    /// Probability a returned hop list is truncated (and the destination
    /// marked unreached — the probe died mid-path).
    pub truncate_rate: f64,
    /// Probability one hop is duplicated in a returned trace.
    pub duplicate_rate: f64,
    /// Fraction of vantage points offline during any given churn window.
    pub churn_rate: f64,
    /// Vantage availability re-rolls every this many seconds.
    pub churn_window_secs: u64,
    /// Scripted brownouts: submissions inside any `[start, end)` window
    /// are rejected outright.
    pub brownouts: Vec<(Timestamp, Timestamp)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay_secs: 86_400,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            churn_rate: 0.0,
            churn_window_secs: 3_600,
            brownouts: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// The chaos-suite profile: 30% probe loss, deadline blowouts,
    /// measurement artifacts and vantage churn (no brownout — script one
    /// with [`FaultConfig::with_brownout`] where the test wants it).
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_rate: 0.30,
            delay_rate: 0.10,
            truncate_rate: 0.10,
            duplicate_rate: 0.05,
            churn_rate: 0.20,
            ..FaultConfig::default()
        }
    }

    /// Adds a scripted brownout window.
    pub fn with_brownout(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.brownouts.push((from, to));
        self
    }
}

// Distinct salts keep the per-fault hash streams independent.
const SALT_DROP: u64 = 0xD809_0A0B_0C0D_0E0F;
const SALT_DELAY: u64 = 0xDE1A_5EED_0123_4567;
const SALT_TRUNC: u64 = 0x0071_21C0_FFEE_0001 ^ 0xA5A5_A5A5_A5A5_A5A5;
const SALT_DUP: u64 = 0xD0BB_1E00_89AB_CDEF;
const SALT_CHURN: u64 = 0xC401_0000_FEED_F00D;

/// A uniform draw in `[0, 1)` from a seeded hash of `key`.
fn roll(seed: u64, salt: u64, key: u64) -> f64 {
    (splitmix64(seed ^ salt ^ key) >> 11) as f64 / (1u64 << 53) as f64
}

/// The fault-injecting wrapper. Generic over any synchronous backend
/// (the netsim data plane, scripted test backends).
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    config: FaultConfig,
}

impl<B: TraceBackend> FaultyBackend<B> {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: B, config: FaultConfig) -> Self {
        FaultyBackend { inner, config }
    }

    /// The fault profile in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }
}

impl<B: TraceBackend> AsyncTraceBackend for FaultyBackend<B> {
    fn submit(&mut self, m: &Measurement) -> SubmitResult {
        let cfg = &self.config;
        if cfg.brownouts.iter().any(|&(from, to)| m.submitted >= from && m.submitted < to) {
            return SubmitResult::Rejected;
        }
        // Vantage churn: the vantage point is offline for whole hashed
        // windows, not per-probe — losing a host takes out every campaign
        // that selected it until the window rolls over.
        let window = m.submitted / cfg.churn_window_secs.max(1);
        let vantage_key = splitmix64(((m.vantage.0 as u64) << 32) ^ window);
        if roll(cfg.seed, SALT_CHURN, vantage_key) < cfg.churn_rate {
            return SubmitResult::Rejected;
        }
        SubmitResult::Accepted
    }

    fn poll(&mut self, m: &Measurement, now: Timestamp) -> MeasurementState {
        let cfg = &self.config;
        let key = m.key();
        if roll(cfg.seed, SALT_DROP, key) < cfg.drop_rate {
            return MeasurementState::Pending; // never answers
        }
        if roll(cfg.seed, SALT_DELAY, key) < cfg.delay_rate {
            let ready_at = m.submitted.saturating_add(cfg.delay_secs);
            if now < ready_at {
                return MeasurementState::Pending;
            }
        }
        let mut trace = self.inner.trace(m.vantage, m.target, m.at);
        if !trace.hops.is_empty() && roll(cfg.seed, SALT_TRUNC, key) < cfg.truncate_rate {
            let keep = splitmix64(key ^ SALT_TRUNC) as usize % trace.hops.len();
            trace.hops.truncate(keep);
            // A probe that died mid-path did not reach its destination; a
            // truncated-but-"reached" trace would read as a detour and
            // could falsely confirm a healthy facility.
            trace.reached = false;
        }
        if !trace.hops.is_empty() && roll(cfg.seed, SALT_DUP, key) < cfg.duplicate_rate {
            let i = splitmix64(key ^ SALT_DUP) as usize % trace.hops.len();
            let dup = trace.hops[i];
            trace.hops.insert(i, dup);
        }
        MeasurementState::Ready(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Asn;
    use kepler_probe::lifecycle::{drive, LifecycleConfig};
    use kepler_probe::{IfaceOwner, Trace, TraceHop};
    use kepler_topology::FacilityId;
    use std::net::{IpAddr, Ipv4Addr};

    struct Clean;
    impl TraceBackend for Clean {
        fn trace(&self, _v: Asn, target: Asn, _t: Timestamp) -> Trace {
            let hops = (0..4)
                .map(|i| TraceHop {
                    addr: IpAddr::V4(Ipv4Addr::new(11, i, (target.0 % 250) as u8, 1)),
                    owner: IfaceOwner::FacilityPort {
                        asn: Asn(100 + i as u32),
                        facility: FacilityId(i as u32),
                    },
                    rtt_ms: 1.0 + i as f64,
                })
                .collect();
            Trace { hops, reached: true }
        }
    }

    fn outcomes(cfg: FaultConfig, n: u32) -> Vec<Option<usize>> {
        let lc = LifecycleConfig { max_attempts: 1, ..LifecycleConfig::default() };
        let mut b = FaultyBackend::new(Clean, cfg);
        (0..n)
            .map(|i| {
                drive(&mut b, Asn(900 + i % 7), Asn(i), 1_000, 50_000, &lc)
                    .trace
                    .map(|t| t.hops.len())
            })
            .collect()
    }

    #[test]
    fn no_faults_means_no_change() {
        let got = outcomes(FaultConfig::default(), 50);
        assert!(got.iter().all(|o| *o == Some(4)));
    }

    #[test]
    fn drop_rate_loses_roughly_that_fraction() {
        let got = outcomes(FaultConfig { drop_rate: 0.3, ..FaultConfig::default() }, 400);
        let lost = got.iter().filter(|o| o.is_none()).count();
        assert!((60..=180).contains(&lost), "~30% of 400 lost, got {lost}");
    }

    #[test]
    fn faults_are_deterministic() {
        let a = outcomes(FaultConfig::chaos(7), 100);
        let b = outcomes(FaultConfig::chaos(7), 100);
        assert_eq!(a, b);
        let c = outcomes(FaultConfig::chaos(8), 100);
        assert_ne!(a, c, "different seeds draw different faults");
    }

    #[test]
    fn truncation_unsets_reached() {
        let lc = LifecycleConfig { max_attempts: 1, ..LifecycleConfig::default() };
        let mut b =
            FaultyBackend::new(Clean, FaultConfig { truncate_rate: 1.0, ..FaultConfig::default() });
        for i in 0..20 {
            let out = drive(&mut b, Asn(900), Asn(i), 1_000, 50_000, &lc);
            let t = out.trace.expect("truncation still answers");
            assert!(!t.reached, "a truncated trace must not look like a detour");
            assert!(t.hops.len() < 4);
        }
    }

    #[test]
    fn duplication_repeats_a_hop() {
        let lc = LifecycleConfig { max_attempts: 1, ..LifecycleConfig::default() };
        let mut b = FaultyBackend::new(
            Clean,
            FaultConfig { duplicate_rate: 1.0, ..FaultConfig::default() },
        );
        let t = drive(&mut b, Asn(900), Asn(1), 1_000, 50_000, &lc).trace.expect("answers");
        assert_eq!(t.hops.len(), 5);
        assert!(t.reached);
        assert!(t.hops.windows(2).any(|w| w[0] == w[1]), "adjacent duplicate");
    }

    #[test]
    fn delay_blows_the_deadline_but_retries_can_recover() {
        // Delay every attempt beyond the 60s deadline: with one attempt
        // the measurement is lost; the delay re-rolls per attempt, so this
        // is equivalent to a drop from the driver's perspective.
        let lc = LifecycleConfig { max_attempts: 1, ..LifecycleConfig::default() };
        let mut b = FaultyBackend::new(
            Clean,
            FaultConfig { delay_rate: 1.0, delay_secs: 3_600, ..FaultConfig::default() },
        );
        let out = drive(&mut b, Asn(900), Asn(1), 1_000, 50_000, &lc);
        assert!(out.trace.is_none());
        assert_eq!(out.timeouts, 1);
    }

    #[test]
    fn brownout_rejects_all_submissions_inside_the_window() {
        let lc = LifecycleConfig::default();
        let cfg = FaultConfig::default().with_brownout(40_000, 60_000);
        let mut b = FaultyBackend::new(Clean, cfg);
        let during = drive(&mut b, Asn(900), Asn(1), 1_000, 41_000, &lc);
        assert!(during.trace.is_none());
        assert!(during.rejections >= 1);
        let after = drive(&mut b, Asn(900), Asn(1), 1_000, 61_000, &lc);
        assert!(after.trace.is_some());
    }

    #[test]
    fn vantage_churn_is_whole_host_per_window() {
        let cfg = FaultConfig { churn_rate: 0.5, ..FaultConfig::default() };
        let mut b = FaultyBackend::new(Clean, cfg);
        // Within one window a vantage is either fully up or fully down.
        for v in 0..20u32 {
            let states: Vec<SubmitResult> = (0..5)
                .map(|i| {
                    b.submit(&Measurement {
                        vantage: Asn(v),
                        target: Asn(i),
                        at: 1_000,
                        attempt: 0,
                        submitted: 10_000 + i as u64,
                    })
                })
                .collect();
            assert!(
                states.iter().all(|s| *s == states[0]),
                "vantage {v} flapped within a window: {states:?}"
            );
        }
    }
}

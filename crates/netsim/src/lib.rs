//! Seeded Internet simulator for Kepler.
//!
//! The paper evaluates Kepler on five years of RouteViews/RIPE RIS archives,
//! RIPE Atlas/Ark/iPlane traceroutes, and an IPFIX feed from a large
//! European IXP. None of those are available offline, so this crate builds
//! the closest synthetic equivalent end-to-end:
//!
//! * [`world`] — the generated ground truth: cities, ~1.7k facilities with
//!   realistic member skew, IXPs whose fabrics span multiple buildings,
//!   ASes with Gao-Rexford business relationships, PNI / public / remote
//!   peering instantiations, per-operator BGP community schemes, and the
//!   two noisy colocation-source snapshots.
//! * [`routing`] — per-prefix policy routing (customer > peer > provider,
//!   valley-free exports) with *physical* instance selection per AS-level
//!   link, ingress-community tagging, and route-server redistribution
//!   communities.
//! * [`events`] — the outage vocabulary: full/partial facility and IXP
//!   outages, de-peerings, IXP membership terminations, operator
//!   maintenance and fiber cuts, each with ground-truth metadata.
//! * [`engine`] — discrete-event emission: applies events to the routing
//!   state and synthesizes the multi-collector BGP update stream with
//!   MRAI-paced jitter, sticky backup paths (≈5% of reroutes never return)
//!   and slow reconvergence after restoration.
//! * [`dataplane`] — the traceroute substitute: interface-level paths over
//!   the same physical topology, haversine-propagation RTTs, archived
//!   weekly dumps and targeted campaigns. Campaigns are **batched**: one
//!   routing tree per (origin, failure-state) is computed and shared
//!   across all traces through a [`dataplane::TreeCache`] (bit-identical
//!   to per-trace computation, ~20x cheaper per probe request).
//! * [`traffic`] — the IPFIX substitute: sampled traffic series at a
//!   remote IXP, with asymmetric-routing members that lose traffic during
//!   outages elsewhere.
//! * [`report`] — the public-reporting model (mailing lists / news sites)
//!   that under-reports outages the way the paper measures (≈24%).
//! * [`scenario`] — packaged experiments: the five-year study, the AMS-IX
//!   2015 case study, and the London dual-facility disambiguation case.
//! * [`fuzz`] — the scenario-diversity engine: seeded random worlds ×
//!   random failure scripts (single / partial / flapping / cascade /
//!   remote-peering archetypes), each serializable as a replayable
//!   [`fuzz::ScenarioScript`] for CI sweeps and regression cases.
//!
//! # Key types
//!
//! [`World`] (generated ground truth), [`ScheduledEvent`]/[`EventKind`]
//! (the outage vocabulary), [`Simulation`] (stream emission),
//! [`dataplane::DataplaneSim`] (traceroutes), [`scenario::Scenario`]
//! (packaged studies).
//!
//! # Invariants
//!
//! * **Everything is deterministic in the scenario seed** — world
//!   generation, routing tie-breaks, update jitter, probe RTTs; there is
//!   no wall clock or global RNG anywhere.
//! * **Control and data plane share one physical truth.** BGP streams and
//!   traceroutes are derived from the same topology and failure state, so
//!   control-plane inferences can be validated against an
//!   independent-looking data-plane view (the paper's §4.4).
//! * **The detector sees only what a real deployment would**: noisy
//!   colocation snapshots, mined (not ground-truth) dictionaries, and
//!   collector vantage points — never the generator's internals.

pub mod dataplane;
pub mod engine;
pub mod events;
pub mod fault;
pub mod fuzz;
pub mod report;
pub mod routing;
pub mod scenario;
pub mod traffic;
pub mod world;

pub use engine::Simulation;
pub use events::{EventKind, GroundTruthEvent, ScheduledEvent};
pub use fault::{FaultConfig, FaultyBackend};
pub use world::{World, WorldConfig};

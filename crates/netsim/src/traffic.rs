//! IXP traffic substitute (Figure 10d).
//!
//! Stands in for the IPFIX feed of the paper's "EU-IXP": per-member-pair
//! traffic volumes with a diurnal baseline, sampled at 1/10K. The
//! counter-intuitive phenomenon it reproduces: when a *different* IXP
//! hundreds of kilometers away fails, members whose forward/reverse paths
//! are split across the two fabrics (asymmetric routing) lose traffic
//! *here* — and a catch-up overshoot follows restoration.

use crate::world::World;
use kepler_bgp::Asn;
use kepler_topology::IxpId;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One point of the exported traffic series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficPoint {
    /// Timestamp (Unix seconds).
    pub time: u64,
    /// IPv4 traffic in Gbps, after IPFIX sampling.
    pub gbps: f64,
}

/// Per-member traffic delta across an outage window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberDelta {
    /// The member.
    pub asn: Asn,
    /// Mean Gbps before the outage.
    pub before: f64,
    /// Mean Gbps during the outage.
    pub during: f64,
}

impl MemberDelta {
    /// Traffic change (negative = loss).
    pub fn delta(&self) -> f64 {
        self.during - self.before
    }
}

/// Traffic simulator for one observation IXP.
pub struct TrafficSim<'w> {
    world: &'w World,
    /// The IXP whose fabric we observe (the "EU-IXP").
    pub observed: IxpId,
    /// The remote IXP whose outage we study.
    pub remote: IxpId,
    seed: u64,
}

impl<'w> TrafficSim<'w> {
    /// Builds a simulator observing `observed` while `remote` fails.
    pub fn new(world: &'w World, observed: IxpId, remote: IxpId, seed: u64) -> Self {
        TrafficSim { world, observed, remote, seed }
    }

    /// Member base volume in Gbps: heavy-tailed across members.
    fn member_volume(&self, asn: Asn) -> f64 {
        let h = splitmix(self.seed ^ asn.0 as u64);
        let rank = (h % 1000) as f64 / 1000.0;
        // Pareto-ish: a few members carry tens of Gbps, most < 1.

        0.2 + 24.0 * (1.0 - rank).powi(4)
    }

    /// Whether this member's paths through the observed IXP are asymmetric
    /// with the remote IXP (forward here, reverse there). Only members of
    /// both exchanges qualify; ≈40% of those are flagged (the first
    /// dual-member always is — large content networks split paths across
    /// fabrics), yielding ≈10% of (src, dst) combinations overall, as the
    /// paper measures.
    fn is_asymmetric(&self, asn: Asn) -> bool {
        let obs = self.world.colo.members_of_ixp(self.observed);
        let rem = self.world.colo.members_of_ixp(self.remote);
        if !(obs.contains(&asn) && rem.contains(&asn)) {
            return false;
        }
        let first_dual = obs.intersection(rem).next();
        first_dual == Some(&asn) || splitmix(self.seed ^ 0xA5 ^ asn.0 as u64) % 10 < 4
    }

    /// Diurnal multiplier: traffic rises through the (UTC) morning.
    fn diurnal(&self, t: u64) -> f64 {
        let day_frac = (t % 86_400) as f64 / 86_400.0;
        1.0 + 0.08 * (std::f64::consts::TAU * (day_frac - 0.3)).sin()
    }

    /// The exported series over `[start, end)` at `step` seconds, given the
    /// remote IXP is down during `[outage_start, outage_end)`.
    pub fn series(
        &self,
        start: u64,
        end: u64,
        step: u64,
        outage_start: u64,
        outage_end: u64,
    ) -> Vec<TrafficPoint> {
        let members: Vec<Asn> =
            self.world.colo.members_of_ixp(self.observed).iter().copied().collect();
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let mut gbps = 0.0;
            for &m in &members {
                let v = self.member_volume(m) * self.diurnal(t);
                let lost = self.is_asymmetric(m);
                let in_outage = t >= outage_start && t < outage_end;
                let in_overshoot = t >= outage_end && t < outage_end + 900;
                let f = if lost && in_outage {
                    0.12 // asymmetric traffic collapses
                } else if lost && in_overshoot {
                    1.45 // catch-up burst
                } else if in_overshoot {
                    1.03
                } else {
                    1.0
                };
                gbps += v * f;
            }
            // IPFIX 1/10K sampling noise: ~0.4% relative.
            let h = splitmix(self.seed ^ t) % 1000;
            let noise = 1.0 + ((h as f64 / 1000.0) - 0.5) * 0.008;
            out.push(TrafficPoint { time: t, gbps: gbps * noise });
            t += step;
        }
        out
    }

    /// Per-member before/during deltas for the outage window.
    pub fn member_deltas(&self, outage_start: u64, outage_end: u64) -> Vec<MemberDelta> {
        let members: Vec<Asn> =
            self.world.colo.members_of_ixp(self.observed).iter().copied().collect();
        let mut out = Vec::new();
        for m in members {
            let before = self.member_volume(m) * self.diurnal(outage_start.saturating_sub(1200));
            let mid = (outage_start + outage_end) / 2;
            let during = {
                let v = self.member_volume(m) * self.diurnal(mid);
                if self.is_asymmetric(m) {
                    v * 0.12
                } else {
                    v
                }
            };
            out.push(MemberDelta { asn: m, before, during });
        }
        out.sort_by(|a, b| a.delta().partial_cmp(&b.delta()).expect("finite"));
        out
    }

    /// Summary of an outage's remote traffic impact.
    pub fn impact_summary(&self, outage_start: u64, outage_end: u64) -> TrafficImpact {
        let deltas = self.member_deltas(outage_start, outage_end);
        let losers: Vec<&MemberDelta> = deltas.iter().filter(|d| d.delta() < -0.05).collect();
        let total_loss: f64 = losers.iter().map(|d| -d.delta()).sum();
        let top25: f64 = losers.iter().take(25).map(|d| -d.delta()).sum();
        TrafficImpact {
            members: deltas.len(),
            members_losing: losers.len(),
            total_loss_gbps: total_loss,
            top25_share: if total_loss > 0.0 { top25 / total_loss } else { 0.0 },
        }
    }
}

/// Aggregate remote-impact statistics (paper: 136/533 members lost traffic;
/// the top-25 losers account for 83% of the loss).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficImpact {
    /// Total members at the observed IXP.
    pub members: usize,
    /// Members with significant traffic loss.
    pub members_losing: usize,
    /// Aggregate loss in Gbps.
    pub total_loss_gbps: f64,
    /// Share of the loss carried by the 25 biggest losers.
    pub top25_share: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    const T0: u64 = 1_431_497_700; // 2015-05-13 ~09:35 UTC

    fn biggest_two_ixps(w: &World) -> (IxpId, IxpId) {
        let mut by_size: Vec<(usize, IxpId)> =
            w.colo.ixps().iter().map(|x| (w.colo.members_of_ixp(x.id).len(), x.id)).collect();
        by_size.sort_by_key(|(n, id)| (std::cmp::Reverse(*n), id.0));
        (by_size[0].1, by_size[1].1)
    }

    /// Seeds for the property sweeps. Formerly these tests were pinned to
    /// single hand-recalibrated seeds (offline `rand` stub ≠ upstream
    /// `StdRng`, see ROADMAP "recalibrated seeds"); the outage-response
    /// properties must instead hold across every seeded world — with the
    /// dip/concentration checks conditioned on the structural
    /// precondition (the two exchanges share members), which a majority
    /// of seeds must satisfy.
    const SEEDS: [u64; 11] = [100, 101, 102, 103, 104, 105, 106, 107, 108, 109, 110];

    #[test]
    fn outage_dips_then_overshoots_vs_counterfactual_across_seeds() {
        let mut seeds_with_overlap = 0usize;
        for &seed in &SEEDS {
            let w = World::generate(WorldConfig::small(seed));
            let (remote, observed) = biggest_two_ixps(&w);
            let overlap =
                w.colo.members_of_ixp(observed).intersection(w.colo.members_of_ixp(remote)).count();
            let ts = TrafficSim::new(&w, observed, remote, seed ^ 0x5);
            let (os, oe) = (T0 + 1800, T0 + 1800 + 600);
            let with_outage = ts.series(T0, T0 + 5400, 60, os, oe);
            // Counterfactual: same window, outage pushed out of range.
            let baseline = ts.series(T0, T0 + 5400, 60, T0 + 999_999, T0 + 999_999);
            let pair = |t: u64| {
                let i = with_outage.iter().position(|p| p.time >= t).expect("point");
                (with_outage[i].gbps, baseline[i].gbps)
            };
            // Universal properties: post-restore overshoot, then settling
            // back onto the counterfactual.
            let (o_out, o_base) = pair(oe + 300);
            assert!(o_out > o_base, "seed {seed}: overshoot: {o_out} > {o_base}");
            let (a_out, a_base) = pair(oe + 1800);
            assert!((a_out / a_base - 1.0).abs() < 0.02, "seed {seed}: returns to baseline");
            // The dip needs shared members between the exchanges.
            if overlap > 0 {
                seeds_with_overlap += 1;
                let (d_out, d_base) = pair(os + 300);
                assert!(d_out < d_base, "seed {seed}: dip vs counterfactual: {d_out} < {d_base}");
            }
        }
        assert!(
            seeds_with_overlap >= SEEDS.len() / 2,
            "only {seeds_with_overlap}/{} seeds had members on both exchanges",
            SEEDS.len()
        );
    }

    #[test]
    fn loss_concentrated_in_few_members_across_seeds() {
        let mut seeds_with_losers = 0usize;
        for &seed in &SEEDS {
            let w = World::generate(WorldConfig::small(seed));
            let (remote, observed) = biggest_two_ixps(&w);
            let ts = TrafficSim::new(&w, observed, remote, seed ^ 0x7);
            let impact = ts.impact_summary(T0, T0 + 600);
            assert!(impact.members > 0, "seed {seed}");
            if impact.members_losing > 0 {
                seeds_with_losers += 1;
                assert!(impact.members_losing < impact.members, "seed {seed}: only a subset loses");
                assert!(impact.top25_share > 0.5, "seed {seed}: top-25 dominate losses");
            }
        }
        assert!(
            seeds_with_losers >= SEEDS.len() / 3,
            "only {seeds_with_losers}/{} seeds saw member losses",
            SEEDS.len()
        );
    }

    #[test]
    fn series_is_deterministic_across_seeds() {
        for &seed in &SEEDS[..8] {
            let w = World::generate(WorldConfig::tiny(seed));
            let (remote, observed) = biggest_two_ixps(&w);
            let ts = TrafficSim::new(&w, observed, remote, seed ^ 0xB);
            let a = ts.series(T0, T0 + 1200, 60, T0 + 300, T0 + 600);
            let b = ts.series(T0, T0 + 1200, 60, T0 + 300, T0 + 600);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}

//! The AMS-IX case study (paper §6.2/§6.3, Figures 8c and 10a–d).
//!
//! On 2015-05-13 a switching-fabric loop during planned maintenance took
//! AMS-IX down for ≈10 minutes; the IXP lost almost all routes and >90% of
//! its traffic, BGP took ≈4 hours to 95%-reconverge, and a remote European
//! IXP 360 km away lost ≈10% of its IPv4 traffic while it lasted.
//!
//! This scenario reproduces the setup: the largest IXP of the generated
//! world plays AMS-IX, fails fully for 10 minutes after a two-day stable
//! warm-up, and the second-largest plays the remote "EU-IXP" observer.

use super::Scenario;
use crate::engine::{CollectorSetup, Simulation};
use crate::events::{EventKind, ScheduledEvent};
use crate::world::{World, WorldConfig};
use kepler_topology::{FacilityId, IxpId};

/// 2015-05-13 00:00:00 UTC.
pub const OUTAGE_DAY: u64 = 1_431_475_200;
/// Outage start: 09:22 UTC (approximately the real incident window).
pub const OUTAGE_START: u64 = OUTAGE_DAY + 9 * 3600 + 22 * 60;
/// Outage duration: 10 minutes.
pub const OUTAGE_DURATION: u64 = 600;

/// Builder for the AMS-IX scenario.
pub struct AmsIxScenario {
    seed: u64,
    config: WorldConfig,
}

/// The built scenario plus the cast of entities the figures reference.
pub struct AmsIxStudy {
    /// The underlying scenario.
    pub scenario: Scenario,
    /// The failed exchange ("AMS-IX").
    pub amsix: IxpId,
    /// A fabric facility of the failed exchange ("SARA").
    pub sara_facility: FacilityId,
    /// The remote observer exchange ("EU-IXP").
    pub eu_ixp: IxpId,
}

impl AmsIxScenario {
    /// A scenario with the default mid-size world.
    pub fn new(seed: u64) -> Self {
        AmsIxScenario { seed, config: WorldConfig::small(seed) }
    }

    /// Overrides the world configuration.
    pub fn with_config(mut self, config: WorldConfig) -> Self {
        self.config = config;
        self
    }

    /// Generates the world, runs the simulation, returns the study.
    pub fn build(self) -> AmsIxStudy {
        let world = World::generate(self.config);
        let mut by_size: Vec<(usize, IxpId)> = world
            .colo
            .ixps()
            .iter()
            .map(|x| (world.colo.members_of_ixp(x.id).len(), x.id))
            .collect();
        by_size.sort_by_key(|(n, id)| (std::cmp::Reverse(*n), id.0));
        let amsix = by_size[0].1;
        let eu_ixp = by_size.get(1).map(|(_, id)| *id).unwrap_or(amsix);
        let sara_facility =
            world.colo.facilities_of_ixp(amsix).iter().next().copied().unwrap_or(FacilityId(0));

        // Warm-up starts 2.5 days before the outage so the stable baseline
        // exists; the stream runs one day past the outage to observe the
        // slow reconvergence of Figure 10a.
        let start = OUTAGE_START - 2 * 86_400 - 12 * 3600;
        let end = OUTAGE_START + 86_400;
        let timeline = vec![ScheduledEvent {
            start: OUTAGE_START,
            duration: OUTAGE_DURATION,
            kind: EventKind::IxpOutage { ixp: amsix, affected_fraction: 1.0 },
        }];
        let setup = CollectorSetup::default_for(&world, 4, 40, self.seed);
        let output = {
            let sim = Simulation::new(&world, setup, start, self.seed);
            sim.run(&timeline, end)
        };
        AmsIxStudy {
            scenario: Scenario { world, output, timeline, start, end, seed: self.seed },
            amsix,
            sara_facility,
            eu_ixp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgpstream::RecordPayload;

    #[test]
    fn study_builds_with_distinct_cast() {
        let study = AmsIxScenario::new(7).with_config(WorldConfig::tiny(7)).build();
        assert_ne!(study.amsix, study.eu_ixp);
        assert!(!study.scenario.output.records.is_empty());
        assert_eq!(study.scenario.output.ground_truth.len(), 1);
        assert_eq!(study.scenario.output.ground_truth[0].duration, OUTAGE_DURATION);
    }

    #[test]
    fn outage_window_has_update_burst() {
        let study = AmsIxScenario::new(9).with_config(WorldConfig::tiny(9)).build();
        let recs = &study.scenario.output.records;
        let in_window = |t: u64, a: u64, b: u64| t >= a && t < b;
        let burst = recs
            .iter()
            .filter(|r| {
                in_window(r.time, OUTAGE_START, OUTAGE_START + OUTAGE_DURATION + 120)
                    && matches!(r.payload, RecordPayload::Update(_))
            })
            .count();
        // Quiet reference window of the same length one hour earlier.
        let quiet = recs
            .iter()
            .filter(|r| in_window(r.time, OUTAGE_START - 3600, OUTAGE_START - 3600 + 720))
            .count();
        assert!(burst > quiet, "outage burst {burst} vs quiet {quiet}");
    }

    #[test]
    fn mined_dictionary_is_nonempty_and_consistent() {
        let study = AmsIxScenario::new(11).with_config(WorldConfig::tiny(11)).build();
        let dict = study.scenario.mined_dictionary();
        assert!(!dict.is_empty());
        let truth = study.scenario.truth_dictionary();
        // Every mined entry matches ground truth (precision 1.0 at tiny
        // scale where all names are unambiguous).
        let report = kepler_docmine::dictionary::validate(&dict, &study.scenario.world.schemes);
        assert_eq!(report.wrong_tag, 0, "no mis-tagged communities");
        assert!(truth.len() >= dict.len());
    }
}

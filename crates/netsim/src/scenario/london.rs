//! The London dual-outage disambiguation case (paper §6.2, Figures 9a–c).
//!
//! On July 20–21 2016 two *different* London facilities (Telecity HEX 8/9
//! and Telehouse North) failed a day apart. Both outages were visible
//! through the Telehouse East facility tag and through LINX — the naive
//! inference would blame the near-end facility or the exchange. Kepler
//! disambiguates by checking which facility's co-located far-end ASes were
//! wiped out, and identifies both true epicenters; an unrelated Tier-1
//! re-routing between the two events (time "B") must classify as AS-level,
//! not PoP-level.

use super::Scenario;
use crate::engine::{CollectorSetup, Simulation};
use crate::events::{EventKind, ScheduledEvent};
use crate::world::{AsIdx, World, WorldConfig};
use kepler_topology::{CityId, FacilityId, IxpId};

/// 2016-07-20 00:00:00 UTC.
pub const DAY_ONE: u64 = 1_468_972_800;

/// The built study with its cast.
pub struct LondonStudy {
    /// The underlying scenario.
    pub scenario: Scenario,
    /// The city hosting everything ("London").
    pub city: CityId,
    /// First epicenter ("TC HEX 8/9"), fails on day one.
    pub tc_hex: FacilityId,
    /// Second epicenter ("TH North"), fails on day two.
    pub th_north: FacilityId,
    /// The bystander facility whose tag sees both outages ("TH East").
    pub th_east: FacilityId,
    /// The co-located exchange ("LINX").
    pub linx: IxpId,
    /// The AS behind the time-"B" AS-level signal.
    pub rerouting_as: kepler_bgp::Asn,
    /// Start of the first outage (time "A").
    pub time_a: u64,
    /// The AS-level event between the outages (time "B").
    pub time_b: u64,
    /// Start of the second outage (time "C").
    pub time_c: u64,
}

/// Builder.
pub struct LondonScenario {
    seed: u64,
    config: WorldConfig,
}

impl LondonScenario {
    /// A scenario with the default mid-size world.
    pub fn new(seed: u64) -> Self {
        LondonScenario { seed, config: WorldConfig::small(seed) }
    }

    /// Overrides the world configuration.
    pub fn with_config(mut self, config: WorldConfig) -> Self {
        self.config = config;
        self
    }

    /// Generates the world, runs the simulation, returns the study.
    pub fn build(self) -> LondonStudy {
        let world = World::generate(self.config);
        // The stage: the city with the most facilities that also hosts an
        // IXP whose fabric spans ≥2 of them.
        let mut cities: Vec<(usize, CityId)> = Vec::new();
        for ixp in world.colo.ixps() {
            let span = world.colo.facilities_of_ixp(ixp.id).len();
            if span >= 2 {
                cities.push((world.colo.members_of_ixp(ixp.id).len(), ixp.city));
            }
        }
        cities.sort_by_key(|(n, c)| (std::cmp::Reverse(*n), c.0));
        let city = cities.first().map(|(_, c)| *c).unwrap_or(CityId(0));
        let linx = world
            .colo
            .ixps()
            .iter()
            .filter(|x| x.city == city)
            .max_by_key(|x| world.colo.members_of_ixp(x.id).len())
            .map(|x| x.id)
            .expect("city chosen for its IXP");
        // Rank the city's facilities by member count: the two biggest are
        // the epicenters, the third is the bystander.
        let mut facs: Vec<(usize, FacilityId)> = world
            .colo
            .facilities_in_city(city)
            .into_iter()
            .map(|f| (world.colo.members_of_facility(f).len(), f))
            .collect();
        facs.sort_by_key(|(n, f)| (std::cmp::Reverse(*n), f.0));
        let tc_hex = facs[0].1;
        let th_north = facs.get(1).map(|(_, f)| *f).unwrap_or(tc_hex);
        let th_east = facs.get(2).map(|(_, f)| *f).unwrap_or(th_north);

        // The time-B actor: a Tier-1-ish member of the exchange.
        let rerouting_as = world
            .colo
            .members_of_ixp(linx)
            .iter()
            .copied()
            .max_by_key(|a| {
                world
                    .asn_to_idx
                    .get(a)
                    .map(|&AsIdx(i)| world.ases[i as usize].neighbors.len())
                    .unwrap_or(0)
            })
            .unwrap_or(kepler_bgp::Asn(0));

        let time_a = DAY_ONE + 2 * 3600 + 13 * 60; // 02:13 day one
        let time_b = DAY_ONE + 14 * 3600; // 14:00 day one
        let time_c = DAY_ONE + 86_400 + 9 * 3600 + 40 * 60; // 09:40 day two
        let timeline = vec![
            ScheduledEvent {
                start: time_a,
                duration: 2 * 3600,
                kind: EventKind::FacilityOutage { facility: tc_hex, affected_fraction: 1.0 },
            },
            ScheduledEvent {
                start: time_b,
                duration: 3 * 3600,
                kind: EventKind::IxpMemberLeave { asn: rerouting_as, ixp: linx },
            },
            ScheduledEvent {
                start: time_c,
                duration: 90 * 60,
                kind: EventKind::FacilityOutage { facility: th_north, affected_fraction: 1.0 },
            },
        ];
        let start = time_a - 2 * 86_400 - 6 * 3600;
        let end = time_c + 86_400;
        let setup = CollectorSetup::default_for(&world, 4, 40, self.seed);
        let output = {
            let sim = Simulation::new(&world, setup, start, self.seed);
            sim.run(&timeline, end)
        };
        LondonStudy {
            scenario: Scenario { world, output, timeline, start, end, seed: self.seed },
            city,
            tc_hex,
            th_north,
            th_east,
            linx,
            rerouting_as,
            time_a,
            time_b,
            time_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_is_coherent() {
        let study = LondonScenario::new(3).with_config(WorldConfig::small(3)).build();
        assert_ne!(study.tc_hex, study.th_north);
        // All facilities in the same city.
        let w = &study.scenario.world;
        for f in [study.tc_hex, study.th_north, study.th_east] {
            assert_eq!(w.colo.facility(f).unwrap().city, study.city);
        }
        assert_eq!(w.colo.ixp(study.linx).unwrap().city, study.city);
        assert!(study.time_a < study.time_b && study.time_b < study.time_c);
        assert_eq!(study.scenario.output.ground_truth.len(), 3);
    }

    #[test]
    fn both_outage_windows_emit() {
        let study = LondonScenario::new(5).with_config(WorldConfig::small(5)).build();
        let recs = &study.scenario.output.records;
        for (t, label) in [(study.time_a, "A"), (study.time_c, "C")] {
            let n = recs.iter().filter(|r| r.time >= t && r.time < t + 300).count();
            assert!(n > 0, "window {label} must emit updates");
        }
    }
}

//! The 2012–2016 historical study (paper §6.1, Figure 1, Figure 8b,
//! Table 1, §5.3 validation).
//!
//! Over five years the real Kepler detected 159 infrastructure outages —
//! 103 at 87 facilities and 56 at 41 IXPs — four times more than the
//! mailing lists reported, with a median duration of 17 minutes, 40%
//! exceeding one hour, IXP outages outlasting facility outages, and a
//! Hurricane-Sandy cluster in late 2012. This scenario schedules a
//! ground-truth timeline with those statistics over the generated world,
//! buries it in a much larger stream of link- and AS-level churn (plus
//! fiber cuts and collector session flaps), and lets the detector prove it
//! can dig the real outages back out.

use super::Scenario;
use crate::engine::{CollectorSetup, Simulation};
use crate::events::{EventKind, ScheduledEvent};
use crate::world::{World, WorldConfig};
use kepler_topology::{FacilityId, IxpId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// 2012-01-01 00:00:00 UTC.
pub const STUDY_START: u64 = 1_325_376_000;
/// 2016-12-31 00:00:00 UTC.
pub const STUDY_END: u64 = 1_483_142_400;

/// Sizing knobs for the five-year timeline.
#[derive(Debug, Clone)]
pub struct FiveYearConfig {
    /// Seed for world + timeline.
    pub seed: u64,
    /// World size.
    pub world: WorldConfig,
    /// Facility outages to schedule (paper: 103).
    pub facility_outages: usize,
    /// IXP outages to schedule (paper: 56).
    pub ixp_outages: usize,
    /// Extra facility outages clustered in Oct–Nov 2012 (Hurricane Sandy).
    pub sandy_cluster: usize,
    /// Background de-peering events.
    pub depeerings: usize,
    /// Background IXP membership terminations.
    pub member_leaves: usize,
    /// Operator-level sibling withdrawals.
    pub operator_events: usize,
    /// Metro fiber cuts (false-positive bait).
    pub fiber_cuts: usize,
    /// Collector session flaps (feed-gap bait).
    pub collector_flaps: usize,
}

impl FiveYearConfig {
    /// Paper-shaped counts over the mid-size world — the default for the
    /// figure harness.
    pub fn standard(seed: u64) -> Self {
        FiveYearConfig {
            seed,
            world: WorldConfig::small(seed),
            facility_outages: 103,
            ixp_outages: 56,
            sandy_cluster: 10,
            depeerings: 400,
            member_leaves: 250,
            operator_events: 25,
            fiber_cuts: 6,
            collector_flaps: 12,
        }
    }

    /// Scaled-down variant for tests.
    pub fn compact(seed: u64) -> Self {
        FiveYearConfig {
            seed,
            world: WorldConfig::tiny(seed),
            facility_outages: 12,
            ixp_outages: 5,
            sandy_cluster: 2,
            depeerings: 25,
            member_leaves: 15,
            operator_events: 3,
            fiber_cuts: 1,
            collector_flaps: 2,
        }
    }
}

/// Draws an outage duration with the paper's Figure 8b shape: median
/// ≈17 min, ≈40% over an hour, a multi-day tail. Implemented as a
/// piecewise log-linear quantile function; `scale` stretches IXP outages
/// (software/config failures take longer to fix than power restoration).
fn outage_duration(rng: &mut StdRng, scale: f64) -> u64 {
    let q: f64 = rng.gen_range(0.0..1.0);
    let lerp = |a: f64, b: f64, t: f64| (a.ln() + (b.ln() - a.ln()) * t).exp();
    let secs = if q < 0.5 {
        lerp(120.0, 1020.0, q / 0.5)
    } else if q < 0.6 {
        lerp(1020.0, 3600.0, (q - 0.5) / 0.1)
    } else {
        lerp(3600.0, 172_800.0, (q - 0.6) / 0.4)
    };
    ((secs * scale) as u64).clamp(120, 5 * 86_400)
}

/// Builds the five-year study.
pub fn build(config: FiveYearConfig) -> Scenario {
    let world = World::generate(config.world.clone());
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EA2);
    let mut timeline: Vec<ScheduledEvent> = Vec::new();

    // Candidate facilities weighted toward well-populated ones (outages at
    // empty buildings are invisible and uninteresting).
    let mut facilities: Vec<FacilityId> = world
        .colo
        .facilities()
        .iter()
        .filter(|f| world.colo.members_of_facility(f.id).len() >= 2)
        .map(|f| f.id)
        .collect();
    facilities.shuffle(&mut rng);
    let mut ixps: Vec<IxpId> = world
        .colo
        .ixps()
        .iter()
        .filter(|x| world.colo.members_of_ixp(x.id).len() >= 2)
        .map(|x| x.id)
        .collect();
    ixps.shuffle(&mut rng);

    let active_span = STUDY_END - STUDY_START - 4 * 86_400;
    let draw_time = |rng: &mut StdRng| STUDY_START + 3 * 86_400 + rng.gen_range(0..active_span);

    for i in 0..config.facility_outages {
        if facilities.is_empty() {
            break;
        }
        // ~85 distinct facilities for 103 outages: some repeat offenders.
        let fac = facilities[i % (facilities.len().min(config.facility_outages * 87 / 103 + 1))];
        let partial = rng.gen_bool(0.25);
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: outage_duration(&mut rng, 1.0),
            kind: EventKind::FacilityOutage {
                facility: fac,
                affected_fraction: if partial { rng.gen_range(0.4..0.9) } else { 1.0 },
            },
        });
    }
    for i in 0..config.ixp_outages {
        if ixps.is_empty() {
            break;
        }
        let ixp = ixps[i % (ixps.len().min(config.ixp_outages * 41 / 56 + 1))];
        let partial = rng.gen_bool(0.2);
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: outage_duration(&mut rng, 1.8),
            kind: EventKind::IxpOutage {
                ixp,
                affected_fraction: if partial { rng.gen_range(0.4..0.9) } else { 1.0 },
            },
        });
    }
    // Hurricane-Sandy cluster: North-American facilities, late Oct 2012.
    let sandy_start = 1_351_468_800; // 2012-10-29
    let na_facs: Vec<FacilityId> = world
        .colo
        .facilities()
        .iter()
        .filter(|f| {
            f.continent == kepler_topology::Continent::NorthAmerica
                && world.colo.members_of_facility(f.id).len() >= 2
        })
        .map(|f| f.id)
        .collect();
    for i in 0..config.sandy_cluster {
        if na_facs.is_empty() {
            break;
        }
        timeline.push(ScheduledEvent {
            start: sandy_start + rng.gen_range(0..5 * 86_400),
            duration: outage_duration(&mut rng, 6.0),
            kind: EventKind::FacilityOutage {
                facility: na_facs[i % na_facs.len()],
                affected_fraction: 1.0,
            },
        });
    }
    // Background churn.
    for _ in 0..config.depeerings {
        let adj = &world.adjacencies[rng.gen_range(0..world.adjacencies.len())];
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: rng.gen_range(1800..14 * 86_400),
            kind: EventKind::Depeering {
                a: world.ases[adj.a.0 as usize].asn,
                b: world.ases[adj.b.0 as usize].asn,
            },
        });
    }
    for _ in 0..config.member_leaves {
        if ixps.is_empty() {
            break;
        }
        let ixp = ixps[rng.gen_range(0..ixps.len())];
        let members: Vec<_> = world.colo.members_of_ixp(ixp).iter().copied().collect();
        if members.is_empty() {
            continue;
        }
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: rng.gen_range(86_400..60 * 86_400),
            kind: EventKind::IxpMemberLeave { asn: members[rng.gen_range(0..members.len())], ixp },
        });
    }
    for _ in 0..config.operator_events {
        if facilities.is_empty() {
            break;
        }
        let fac = facilities[rng.gen_range(0..facilities.len())];
        let members: Vec<_> = world.colo.members_of_facility(fac).iter().copied().collect();
        if members.len() < 2 {
            continue;
        }
        let k = rng.gen_range(2..=members.len().min(3));
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: rng.gen_range(3600..30 * 86_400),
            kind: EventKind::OperatorWithdraw { asns: members[..k].to_vec(), facility: fac },
        });
    }
    for _ in 0..config.fiber_cuts {
        if facilities.is_empty() {
            break;
        }
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: rng.gen_range(1800..8 * 3600),
            kind: EventKind::FiberCut {
                facility: facilities[rng.gen_range(0..facilities.len())],
                affected_fraction: rng.gen_range(0.9..1.0),
            },
        });
    }
    for i in 0..config.collector_flaps {
        timeline.push(ScheduledEvent {
            start: draw_time(&mut rng),
            duration: rng.gen_range(300..7200),
            kind: EventKind::CollectorFlap { peer_slot: i },
        });
    }
    timeline.sort_by_key(|e| e.start);

    let setup = CollectorSetup::default_for(&world, 6, 48, config.seed);
    let output = {
        let sim = Simulation::new(&world, setup, STUDY_START, config.seed);
        sim.run(&timeline, STUDY_END)
    };
    Scenario { world, output, timeline, start: STUDY_START, end: STUDY_END, seed: config.seed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_study_builds_with_expected_truth() {
        let cfg = FiveYearConfig::compact(1);
        let expected_infra = cfg.facility_outages + cfg.ixp_outages + cfg.sandy_cluster;
        let scenario = build(cfg);
        let infra = scenario
            .output
            .ground_truth
            .iter()
            .filter(|g| g.kind.is_infrastructure_outage())
            .count();
        assert_eq!(infra, expected_infra);
        assert!(!scenario.output.records.is_empty());
        // Reported subset exists and is a strict minority.
        let reported = scenario.reported();
        assert!(reported.len() < infra);
    }

    #[test]
    fn durations_have_paper_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        let durations: Vec<u64> = (0..4000).map(|_| outage_duration(&mut rng, 1.0)).collect();
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!((600..=2400).contains(&median), "median ≈17 min, got {median}s");
        let over_hour =
            durations.iter().filter(|&&d| d > 3600).count() as f64 / durations.len() as f64;
        assert!((0.25..=0.55).contains(&over_hour), "≈40% over an hour, got {over_hour:.2}");
    }

    #[test]
    fn ixp_outages_last_longer_on_average() {
        let mut rng = StdRng::seed_from_u64(43);
        let fac: f64 =
            (0..2000).map(|_| outage_duration(&mut rng, 1.0) as f64).sum::<f64>() / 2000.0;
        let ixp: f64 =
            (0..2000).map(|_| outage_duration(&mut rng, 1.8) as f64).sum::<f64>() / 2000.0;
        assert!(ixp > fac);
    }
}

//! Packaged experiments.
//!
//! A [`Scenario`] bundles everything one of the paper's studies needs: the
//! generated world, the emitted BGP stream, the ground-truth event
//! timeline, and constructors for the detector's inputs (mined community
//! dictionary, merged colocation map, organization map).
//!
//! * [`five_year`] — the 2012–2016 historical study behind Figure 1,
//!   Figure 8b, Table 1 and the §5.3 validation.
//! * [`amsix`] — the AMS-IX May 2015 case study (Figures 8c, 10a–d).
//! * [`london`] — the July 2016 London dual-facility disambiguation case
//!   (Figures 9a–c).
//! * [`twin`] — the colocation-twin case: two buildings with identical
//!   membership records and city-granularity tags, where only targeted
//!   data-plane probes can name the failed building.

pub mod amsix;
pub mod five_year;
pub mod london;
pub mod twin;

use crate::dataplane::DataplaneSim;
use crate::engine::SimOutput;
use crate::events::ScheduledEvent;
use crate::report::{reported_subset, ReportedOutage};
use crate::world::World;
use kepler_bgpstream::BgpRecord;
use kepler_docmine::corpus::render_corpus;
use kepler_docmine::dictionary::{dictionary_from_schemes, DictionaryMiner};
use kepler_docmine::CommunityDictionary;
use kepler_topology::ColocationMap;

/// A fully materialized experiment.
pub struct Scenario {
    /// The generated ground-truth world.
    pub world: World,
    /// Simulation output: records, ground truth, collectors.
    pub output: SimOutput,
    /// The event timeline that produced it.
    pub timeline: Vec<ScheduledEvent>,
    /// Stream start (warm-up included).
    pub start: u64,
    /// Stream end.
    pub end: u64,
    /// Scenario seed.
    pub seed: u64,
}

impl Scenario {
    /// The BGP record stream (already time-sorted).
    pub fn records(&self) -> Vec<BgpRecord> {
        self.output.records.clone()
    }

    /// The colocation map a detector would merge from public snapshots.
    pub fn detector_colo(&self) -> ColocationMap {
        self.world.detector_colomap()
    }

    /// The community dictionary *mined* from generated operator
    /// documentation (what Kepler actually runs on).
    pub fn mined_dictionary(&self) -> CommunityDictionary {
        let corpus = render_corpus(&self.world.schemes, self.seed ^ 0xD1C7);
        let colo = self.detector_colo();
        let miner = DictionaryMiner::new(&colo, &self.world.gazetteer);
        let (mut dict, _) = miner.mine(&corpus);
        dict.add_route_servers_from(&colo);
        dict
    }

    /// The perfect-knowledge dictionary (for ablations).
    pub fn truth_dictionary(&self) -> CommunityDictionary {
        let mut dict = dictionary_from_schemes(&self.world.schemes, true);
        dict.add_route_servers_from(&self.world.colo);
        dict
    }

    /// The publicly-reported subset of ground-truth outages.
    pub fn reported(&self) -> Vec<ReportedOutage> {
        reported_subset(&self.world, &self.output.ground_truth, self.seed ^ 0x9E75)
    }

    /// A data-plane simulator over the same timeline.
    pub fn dataplane(&self) -> DataplaneSim<'_> {
        DataplaneSim::new(&self.world, &self.timeline, self.seed ^ 0xDA7A)
    }
}

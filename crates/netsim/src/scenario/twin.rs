//! The colocation-twin disambiguation case: the scenario the probe
//! subsystem exists for.
//!
//! Two facilities in one metro host (as far as any public colocation
//! source can tell) the *same* tenant set — think adjacent buildings of
//! one campus, listed interchangeably by PeeringDB and DataCenterMap —
//! and the operators housed there publish only *city*-granularity
//! communities. When one building goes dark, passive inference gets
//! stuck: the affected far-ends are contained in both candidate
//! facilities, neither clears the 95% co-location rule (the healthy
//! twin's live ports dilute every denominator), and the signal bottoms
//! out at a city-level verdict. Only the data plane can tell the
//! buildings apart, because traceroute interfaces resolve to the *ports
//! that actually forward*: baseline paths through the dark building
//! vanish while the twin keeps answering.
//!
//! [`TwinFacilityScenario`] engineers exactly that world: it twins the
//! colocation records of the two best-populated facilities of a hub city
//! (ground truth *and* the published snapshots — the ports themselves
//! stay where the generator placed them), coarsens every community
//! scheme entry naming either building to a city entry, and fails one of
//! the twins.

use super::Scenario;
use crate::engine::{CollectorSetup, Simulation};
use crate::events::{EventKind, ScheduledEvent};
use crate::world::{World, WorldConfig};
use kepler_docmine::scheme::{SchemeEntry, SchemeTarget};
use kepler_topology::{CityId, FacilityId};
use std::collections::BTreeSet;

/// 2017-06-05 00:00:00 UTC — an arbitrary quiet Monday.
pub const DAY_ONE: u64 = 1_496_620_800;

/// The built study with its cast.
pub struct TwinStudy {
    /// The underlying scenario.
    pub scenario: Scenario,
    /// The metro hosting the twins.
    pub city: CityId,
    /// The building that actually fails.
    pub down: FacilityId,
    /// Its colocation twin — identical membership records, stays up.
    pub twin: FacilityId,
    /// Outage start.
    pub outage_start: u64,
    /// Outage duration in seconds.
    pub outage_duration: u64,
}

/// Builder.
pub struct TwinFacilityScenario {
    seed: u64,
    config: WorldConfig,
}

impl TwinFacilityScenario {
    /// A scenario with the default mid-size world.
    pub fn new(seed: u64) -> Self {
        TwinFacilityScenario { seed, config: WorldConfig::small(seed) }
    }

    /// Overrides the world configuration.
    pub fn with_config(mut self, config: WorldConfig) -> Self {
        self.config = config;
        self
    }

    /// Generates the world, twins the stage facilities, runs the
    /// simulation, returns the study.
    pub fn build(self) -> TwinStudy {
        let mut world = World::generate(self.config);
        // The stage: the city whose two best-populated facilities carry
        // the most *locatable* tenants (16-bit ASNs running a community
        // scheme — the members whose deviations the detector can see).
        // Pairs hosting an IXP fabric are deprioritized: a fabric wholly
        // inside the dark building gives passive inference a legitimate
        // exchange-level verdict, which is not the ambiguity under study.
        let locatable = |world: &World, f: FacilityId| {
            world
                .colo
                .members_of_facility(f)
                .iter()
                .filter(|a| {
                    a.is_16bit() && world.node(**a).map(|n| n.scheme.is_some()).unwrap_or(false)
                })
                .count()
        };
        let mut best: Option<(usize, CityId, FacilityId, FacilityId)> = None;
        let cities: BTreeSet<CityId> = world.colo.facilities().iter().map(|f| f.city).collect();
        for city in cities {
            let mut facs: Vec<(usize, FacilityId)> = world
                .colo
                .facilities_in_city(city)
                .into_iter()
                .map(|f| (locatable(&world, f), f))
                .collect();
            facs.sort_by_key(|(n, f)| (std::cmp::Reverse(*n), f.0));
            if facs.len() < 2 || facs[1].0 < 3 {
                continue;
            }
            let hosts_ixp =
                [facs[0].1, facs[1].1].iter().any(|f| !world.colo.ixps_at_facility(*f).is_empty());
            let score = (facs[0].0 + facs[1].0) * if hosts_ixp { 1 } else { 2 };
            if best.map(|(s, ..)| score > s).unwrap_or(true) {
                best = Some((score, city, facs[0].1, facs[1].1));
            }
        }
        let (_, city, down, twin) = best.expect("world must contain a two-facility city");

        // Twin the *records*: both buildings list the union tenant set in
        // ground truth and in every published snapshot. Physical ports are
        // untouched — the generator already placed every session.
        let union: BTreeSet<kepler_bgp::Asn> = world
            .colo
            .members_of_facility(down)
            .iter()
            .chain(world.colo.members_of_facility(twin).iter())
            .copied()
            .collect();
        for &asn in &union {
            world.colo.add_fac_member(down, asn);
            world.colo.add_fac_member(twin, asn);
        }
        let tenant_list: Vec<kepler_bgp::Asn> = union.iter().copied().collect();
        for fac in [down, twin] {
            let (address, name) = {
                let f = world.colo.facility(fac).expect("stage facility");
                (f.address.clone(), f.name.clone())
            };
            for snap in &mut world.snapshots {
                for sf in &mut snap.facilities {
                    // Snapshot B renames facilities; the address survives.
                    if sf.name == name || sf.address == address {
                        sf.tenants = tenant_list.clone();
                    }
                }
            }
        }

        // Coarsen the community vocabulary: any scheme entry naming either
        // twin becomes a city entry — the paper's common case of operators
        // tagging at metro granularity. (Facility entries for *other*
        // buildings stay sharp; they provide the bystander tags.)
        let city_name = world.gazetteer.cities()[city.0 as usize].name.to_string();
        for node in &mut world.ases {
            let Some(scheme) = &mut node.scheme else { continue };
            let mut has_city_entry = scheme
                .entries
                .iter()
                .any(|e| matches!(&e.target, SchemeTarget::City { city: c, .. } if *c == city));
            let mut entries: Vec<SchemeEntry> = Vec::with_capacity(scheme.entries.len());
            for e in scheme.entries.drain(..) {
                match &e.target {
                    SchemeTarget::Facility { id, .. } if *id == down || *id == twin => {
                        if !has_city_entry {
                            has_city_entry = true;
                            entries.push(SchemeEntry {
                                value: e.value,
                                target: SchemeTarget::City { ident: city_name.clone(), city },
                            });
                        }
                        // Further twin entries fold into the city entry.
                    }
                    _ => entries.push(e),
                }
            }
            scheme.entries = entries;
        }
        world.schemes = world.ases.iter().filter_map(|a| a.scheme.clone()).collect();

        let outage_start = DAY_ONE + 2 * 86_400 + 6 * 3600 + 9 * 3600 + 40 * 60;
        let outage_duration = 2 * 3600;
        let timeline = vec![ScheduledEvent {
            start: outage_start,
            duration: outage_duration,
            kind: EventKind::FacilityOutage { facility: down, affected_fraction: 1.0 },
        }];
        let start = DAY_ONE;
        let end = outage_start + outage_duration + 86_400;
        // A wider vantage base than the historical studies: colocation
        // twins only produce the studied ambiguity when enough distinct
        // near-ends are observed deviating through the coarse city tag.
        let setup = CollectorSetup::default_for(&world, 6, 72, self.seed);
        let output = {
            let sim = Simulation::new(&world, setup, start, self.seed);
            sim.run(&timeline, end)
        };
        TwinStudy {
            scenario: Scenario { world, output, timeline, start, end, seed: self.seed },
            city,
            down,
            twin,
            outage_start,
            outage_duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twins_share_membership_and_tags_are_coarse() {
        let study = TwinFacilityScenario::new(3).build();
        let w = &study.scenario.world;
        assert_ne!(study.down, study.twin);
        assert_eq!(w.colo.facility(study.down).unwrap().city, study.city);
        assert_eq!(w.colo.facility(study.twin).unwrap().city, study.city);
        // Ground truth twinned.
        assert_eq!(
            w.colo.members_of_facility(study.down),
            w.colo.members_of_facility(study.twin),
            "twins must list identical members"
        );
        // The detector-visible (merged-snapshot) map is twinned too.
        let det = w.detector_colomap();
        assert_eq!(det.members_of_facility(study.down), det.members_of_facility(study.twin),);
        // No scheme names either twin at facility granularity anymore.
        for s in &w.schemes {
            for e in &s.entries {
                if let SchemeTarget::Facility { id, .. } = &e.target {
                    assert!(*id != study.down && *id != study.twin, "twin tags must be coarse");
                }
            }
        }
        assert_eq!(study.scenario.output.ground_truth.len(), 1);
    }

    #[test]
    fn outage_window_emits_and_dataplane_discriminates() {
        let study = TwinFacilityScenario::new(5).build();
        let recs = &study.scenario.output.records;
        let n = recs
            .iter()
            .filter(|r| r.time >= study.outage_start && r.time < study.outage_start + 300)
            .count();
        assert!(n > 0, "outage window must emit updates");
        // The data plane can tell the twins apart even though the
        // colocation records cannot: paths stop crossing the dark
        // building but keep crossing the healthy twin.
        let dp = study.scenario.dataplane();
        let pairs = dp.default_pairs(200);
        let during = study.outage_start + 600;
        let crossing =
            |fac, t: u64| dp.campaign(&pairs, t).iter().filter(|p| p.crosses_facility(fac)).count();
        assert_eq!(crossing(study.down, during), 0, "no path crosses the dark building");
        assert!(
            crossing(study.twin, during) > 0,
            "the healthy twin keeps forwarding (seed must provide coverage)"
        );
    }
}

//! The outage vocabulary and ground-truth records.

use crate::world::World;
use kepler_bgp::Asn;
use kepler_topology::{FacilityId, IxpId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// What happens in an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A facility loses power/cooling/fiber. `affected_fraction` < 1.0
    /// models partial outages (one power feed, one room).
    FacilityOutage {
        /// The building.
        facility: FacilityId,
        /// Fraction of member ports taken down (1.0 = full).
        affected_fraction: f64,
    },
    /// An IXP fabric fails (switch loop, config error).
    IxpOutage {
        /// The exchange.
        ixp: IxpId,
        /// Fraction of member ports taken down (1.0 = full).
        affected_fraction: f64,
    },
    /// Two ASes tear down their interconnection entirely (link-level).
    Depeering {
        /// One endpoint.
        a: Asn,
        /// The other endpoint.
        b: Asn,
    },
    /// An AS terminates its IXP membership (AS-level: all its public
    /// sessions at the exchange go away at once).
    IxpMemberLeave {
        /// The leaving member.
        asn: Asn,
        /// The exchange.
        ixp: IxpId,
    },
    /// An operator moves all its sibling ASes out of a facility
    /// (operator-level signal).
    OperatorWithdraw {
        /// The sibling ASNs.
        asns: Vec<Asn>,
        /// The facility they leave.
        facility: FacilityId,
    },
    /// A metro fiber cut takes down most member ports of a facility. To
    /// the control plane this is indistinguishable from a facility outage
    /// — the paper's six false positives were exactly this.
    FiberCut {
        /// The facility whose ports die.
        facility: FacilityId,
        /// Fraction of member ports affected.
        affected_fraction: f64,
    },
    /// A collector-peer BGP session flaps (feed gap, not an outage).
    CollectorFlap {
        /// Index into the simulation's collector-peer table.
        peer_slot: usize,
    },
    /// A facility's fabric congests (brownout): every route keeps
    /// crossing it — no BGP signal at all — while RTTs through its ports
    /// surge. Only the data plane can see this; it is the delay
    /// detector's target and invisible to the deviation test by
    /// construction.
    LatencySurge {
        /// The congested building.
        facility: FacilityId,
        /// Extra milliseconds added to every hop entering it.
        extra_ms: f64,
    },
}

impl EventKind {
    /// Whether ground truth considers this a *peering infrastructure
    /// outage* (the class Kepler is built to detect).
    pub fn is_infrastructure_outage(&self) -> bool {
        matches!(self, EventKind::FacilityOutage { .. } | EventKind::IxpOutage { .. })
    }

    /// The facility/IXP epicenter, if the event has one.
    pub fn epicenter(&self) -> Option<Epicenter> {
        match self {
            EventKind::FacilityOutage { facility, .. } | EventKind::FiberCut { facility, .. } => {
                Some(Epicenter::Facility(*facility))
            }
            EventKind::OperatorWithdraw { facility, .. } => Some(Epicenter::Facility(*facility)),
            EventKind::LatencySurge { facility, .. } => Some(Epicenter::Facility(*facility)),
            EventKind::IxpOutage { ixp, .. } => Some(Epicenter::Ixp(*ixp)),
            _ => None,
        }
    }
}

/// Physical epicenter of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Epicenter {
    /// A building.
    Facility(FacilityId),
    /// An exchange fabric.
    Ixp(IxpId),
}

/// An event placed on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// Start time (Unix seconds).
    pub start: u64,
    /// Duration in seconds.
    pub duration: u64,
    /// What happens.
    pub kind: EventKind,
}

impl ScheduledEvent {
    /// End time.
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }
}

/// Ground truth for evaluation: what actually happened, when, where.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthEvent {
    /// Stable event id (index into the scenario's timeline).
    pub id: usize,
    /// Start time.
    pub start: u64,
    /// Duration in seconds.
    pub duration: u64,
    /// The event.
    pub kind: EventKind,
    /// Member ASes directly affected (ports down), for the report model.
    pub affected_members: usize,
}

/// Resolves the member ports a partial event takes down, deterministically
/// from the event identity.
pub fn partial_ports(world: &World, members: &[Asn], fraction: f64, salt: u64) -> Vec<Asn> {
    if fraction >= 1.0 {
        return members.to_vec();
    }
    let k = ((members.len() as f64) * fraction).ceil() as usize;
    let mut sorted: Vec<Asn> = members.to_vec();
    sorted.sort();
    let mut rng = StdRng::seed_from_u64(salt ^ world.config.seed);
    sorted.shuffle(&mut rng);
    sorted.truncate(k.min(members.len()));
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn classification_helpers() {
        let f = EventKind::FacilityOutage { facility: FacilityId(1), affected_fraction: 1.0 };
        assert!(f.is_infrastructure_outage());
        assert_eq!(f.epicenter(), Some(Epicenter::Facility(FacilityId(1))));
        let d = EventKind::Depeering { a: Asn(1), b: Asn(2) };
        assert!(!d.is_infrastructure_outage());
        assert_eq!(d.epicenter(), None);
        let fc = EventKind::FiberCut { facility: FacilityId(2), affected_fraction: 0.9 };
        assert!(!fc.is_infrastructure_outage(), "fiber cuts are not facility outages");
        assert!(fc.epicenter().is_some(), "but they have a facility epicenter");
    }

    #[test]
    fn partial_ports_deterministic_and_sized() {
        let w = World::generate(WorldConfig::tiny(71));
        let members: Vec<Asn> = (1..=10).map(Asn).collect();
        let a = partial_ports(&w, &members, 0.5, 99);
        let b = partial_ports(&w, &members, 0.5, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let full = partial_ports(&w, &members, 1.0, 99);
        assert_eq!(full.len(), 10);
        let other = partial_ports(&w, &members, 0.5, 100);
        // Different salt usually picks a different subset; both valid sizes.
        assert_eq!(other.len(), 5);
    }

    use crate::world::World;
}

//! Public-reporting model.
//!
//! Stands in for the NANOG / Outages mailing lists and the data-center
//! news sites the paper scraped for validation. Reporting is biased the
//! way the paper observes: incidents in the US and UK are far more likely
//! to be written up, large incidents more than small ones, and overall
//! only ≈24% of real infrastructure outages surface anywhere public.

use crate::events::{Epicenter, EventKind, GroundTruthEvent};
use crate::world::World;
use kepler_topology::Continent;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A public mention of an outage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedOutage {
    /// Ground-truth event id.
    pub event_id: usize,
    /// Where it was mentioned.
    pub venue: &'static str,
}

/// Where the epicenter sits and whether the country is US/GB.
fn epicenter_region(world: &World, kind: &EventKind) -> Option<(Continent, bool)> {
    let epi = kind.epicenter()?;
    match epi {
        Epicenter::Facility(f) => {
            let fac = world.colo.facility(f)?;
            Some((fac.continent, fac.country == "US" || fac.country == "GB"))
        }
        Epicenter::Ixp(x) => {
            let ixp = world.colo.ixp(x)?;
            let city = world.gazetteer.by_index(ixp.city.0 as usize)?;
            Some((ixp.continent, city.country == "US" || city.country == "GB"))
        }
    }
}

/// Computes the publicly reported subset of ground-truth infrastructure
/// outages, deterministically from `seed`.
pub fn reported_subset(
    world: &World,
    truth: &[GroundTruthEvent],
    seed: u64,
) -> Vec<ReportedOutage> {
    let mut out = Vec::new();
    for gt in truth {
        if !gt.kind.is_infrastructure_outage() {
            continue;
        }
        let Some((continent, anglophone)) = epicenter_region(world, &gt.kind) else { continue };
        let base = if anglophone {
            0.60
        } else {
            match continent {
                Continent::Europe => 0.28,
                Continent::NorthAmerica => 0.45,
                _ => 0.12,
            }
        };
        // Size factor: a 40+-member incident is big news.
        let size_factor = (gt.affected_members as f64 / 40.0).clamp(0.25, 1.0);
        // Duration factor: sub-10-minute blips rarely get posted.
        let dur_factor = if gt.duration < 600 { 0.4 } else { 1.0 };
        let p = (base * size_factor * dur_factor).min(0.95);
        let h = (splitmix(seed ^ gt.id as u64) % 10_000) as f64 / 10_000.0;
        if h < p {
            let venue = match splitmix(seed ^ 0xBEEF ^ gt.id as u64) % 4 {
                0 => "nanog",
                1 => "outages-list",
                2 => "datacenter-dynamics",
                _ => "datacenter-knowledge",
            };
            out.push(ReportedOutage { event_id: gt.id, venue });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use kepler_topology::FacilityId;

    fn truth_for(world: &World, n: usize) -> Vec<GroundTruthEvent> {
        // Synthesize ground truth over the world's facilities.
        (0..n)
            .map(|i| {
                let fac = world.colo.facilities()[i % world.colo.facilities().len()].id;
                GroundTruthEvent {
                    id: i,
                    start: 1_400_000_000 + i as u64 * 86_400,
                    duration: if i % 3 == 0 { 300 } else { 5400 },
                    kind: EventKind::FacilityOutage {
                        facility: FacilityId(fac.0),
                        affected_fraction: 1.0,
                    },
                    affected_members: world.colo.members_of_facility(fac).len(),
                }
            })
            .collect()
    }

    #[test]
    fn reporting_is_partial_and_deterministic() {
        let w = World::generate(WorldConfig::small(111));
        let truth = truth_for(&w, 200);
        let a = reported_subset(&w, &truth, 3);
        let b = reported_subset(&w, &truth, 3);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "some outages get reported");
        assert!(
            a.len() < truth.len() / 2,
            "most outages go unreported: {}/{}",
            a.len(),
            truth.len()
        );
    }

    #[test]
    fn non_infrastructure_events_never_reported() {
        let w = World::generate(WorldConfig::tiny(113));
        let truth = vec![GroundTruthEvent {
            id: 0,
            start: 0,
            duration: 100_000,
            kind: EventKind::Depeering { a: kepler_bgp::Asn(1), b: kepler_bgp::Asn(2) },
            affected_members: 1000,
        }];
        assert!(reported_subset(&w, &truth, 1).is_empty());
    }
}
